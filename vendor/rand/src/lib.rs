//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of `rand`'s API it actually uses: `StdRng` (here a
//! xoshiro256++ generator seeded via SplitMix64), the `Rng`/`SeedableRng`
//! traits, uniform range sampling, and slice shuffling. The streams are
//! deterministic per seed, which is all the workspace requires — every
//! consumer goes through [`edgelet_util::rng::DetRng`]-style seeded
//! generators and only relies on reproducibility, not on matching the
//! upstream `rand` bit streams.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable from the "standard" distribution of their type.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (panics on an empty range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place slice randomization.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = distributions::uniform::sample_index(rng, i + 1);
            self.swap(i, j);
        }
    }
}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_are_bounded_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f: f64 = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
        let one: u32 = rng.gen_range(4u32..5);
        assert_eq!(one, 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
