//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step: expands a 64-bit seed into an arbitrary-length key
/// schedule. Standard initializer for xoshiro-family generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++.
///
/// Not the upstream `rand::rngs::StdRng` algorithm (ChaCha12) — only the
/// determinism contract matters here, not stream compatibility.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4} (reference implementation).
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first, vec![41943041, 58720359, 3588806011781223]);
    }

    #[test]
    fn seeding_avoids_zero_state() {
        let rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4]);
    }
}
