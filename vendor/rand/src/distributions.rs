//! Uniform range sampling, mirroring `rand::distributions::uniform`.

/// Uniform sampling over ranges.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Draws a uniform index in `0..n` (used by shuffling; `n > 0`).
    pub fn sample_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift: maps 64 random bits onto 0..n with negligible
        // bias for the range sizes used here.
        ((u128::from(rng.next_u64()) * n as u128) >> 64) as usize
    }

    /// Types that can be sampled uniformly from a bounded interval.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)` (or `[low, high]` when
        /// `inclusive`). Callers guarantee a non-empty interval.
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    /// Range forms accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range, panicking if it is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_between(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_between(rng, low, high, true)
        }
    }

    macro_rules! impl_sample_uniform_int {
        ($($ty:ty),*) => {$(
            impl SampleUniform for $ty {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (high as i128 - low as i128
                        + if inclusive { 1 } else { 0 }) as u128;
                    let offset = (u128::from(rng.next_u64()) * span) >> 64;
                    (low as i128 + offset as i128) as $ty
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            _inclusive: bool,
        ) -> Self {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            low + u * (high - low)
        }
    }

    impl SampleUniform for f32 {
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            _inclusive: bool,
        ) -> Self {
            let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            low + u * (high - low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::{SampleRange, SampleUniform};
    use crate::prelude::*;

    #[test]
    fn full_width_spans_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = u64::sample_between(&mut rng, 0, u64::MAX, true);
            let _ = v; // any value is in range by construction
            let s: i64 = (i64::MIN..i64::MAX).sample_single(&mut rng);
            assert!(s < i64::MAX);
        }
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v: i64 = (-10i64..10).sample_single(&mut rng);
            assert!((-10..10).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }
}
