//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion's API its benches use: `Criterion`,
//! benchmark groups with throughput annotation, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Differences from upstream, by design: no statistical analysis (a
//! median over fixed-size samples instead of bootstrap confidence
//! intervals), no HTML reports, and plain-text output only. The `--test`
//! CLI flag is honored: each benchmark body runs exactly once, which is
//! what the CI bench smoke job relies on.

pub use std::hint::black_box;

use std::time::Instant;

/// How throughput is derived from elapsed time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched` (ignored: every batch is one
/// routine call here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup before every routine call.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.test_mode, name.as_ref(), None, 10, f);
        self
    }
}

/// A named group sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to scale reported times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(
            self.criterion.test_mode,
            &full,
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(
    test_mode: bool,
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher {
            test_mode: true,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        println!("{name:<56} ok (test mode: one iteration)");
        return;
    }
    let mut b = Bencher {
        test_mode: false,
        samples_ns: Vec::new(),
    };
    // Warm-up sample, then the measured samples.
    f(&mut b);
    b.samples_ns.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples_ns
        .sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = b
        .samples_ns
        .get(b.samples_ns.len() / 2)
        .copied()
        .unwrap_or(0.0);
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!(
                "  thrpt: {:>12} elem/s",
                group_digits(n as f64 / (median * 1e-9))
            )
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(
                "  thrpt: {:>9.2} MiB/s",
                n as f64 / (median * 1e-9) / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{name:<56} time: {:>14} ns/iter{thrpt}",
        group_digits(median)
    );
}

fn group_digits(v: f64) -> String {
    let raw = format!("{v:.0}");
    let mut out = String::new();
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i) % 3 == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, called in a loop.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate the inner iteration count so one sample spans at
        // least ~5ms, amortizing timer overhead.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let iters = ((5e-3 / once) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples_ns
            .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let mut total = 0.0f64;
        let mut iters = 0u64;
        // One sample: accumulate routine-only time until ~5ms is spent.
        while total < 5e-3 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_secs_f64();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.samples_ns.push(total * 1e9 / iters.max(1) as f64);
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_and_plain_iter_produce_samples() {
        let mut b = Bencher {
            test_mode: false,
            samples_ns: Vec::new(),
        };
        b.iter(|| 1 + 1);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples_ns.len(), 2);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(1234567.0), "1_234_567");
        assert_eq!(group_digits(12.0), "12");
    }
}
