//! Deterministic case generation.

/// Generated cases per property test.
pub const CASES: u32 = 64;

/// A small, fast generator seeded from the test identity and case index,
/// so every run of a given test replays the same input stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 2],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Derives the generator for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next 64 uniformly random bits (xoroshiro128++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, mut s1] = self.s;
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.s[0] = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
        self.s[1] = s1.rotate_left(28);
        result
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_case("mod::t", 3);
        let mut b = TestRng::for_case("mod::t", 3);
        let mut c = TestRng::for_case("mod::t", 4);
        let mut d = TestRng::for_case("mod::u", 3);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, (0..8).map(|_| c.next_u64()).collect::<Vec<u64>>());
        assert_ne!(vb, (0..8).map(|_| d.next_u64()).collect::<Vec<u64>>());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
