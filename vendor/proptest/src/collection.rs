//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// Generates vectors whose length falls in `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        // Bias toward the shortest allowed length (usually empty): edge
        // cases around zero-length inputs are where decoders break.
        let n = match rng.below(8) {
            0 => self.len.start,
            _ => self.len.start + rng.below(self.len.end - self.len.start),
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = TestRng::for_case("collection::lens", 0);
        let strat = vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn nested_strategies_compose() {
        let mut rng = TestRng::for_case("collection::nested", 0);
        let strat = vec((0usize..10, 0usize..10), 0..20);
        let v = strat.generate(&mut rng);
        assert!(v.len() < 20);
        assert!(v.iter().all(|&(a, b)| a < 10 && b < 10));
    }
}
