//! Sampling helpers (`prop::sample::Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A position-independent index: generated once, projected onto any
/// collection length via [`Index::index`].
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Maps this index onto `0..len` (`len` must be non-zero).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((u128::from(self.0) * len as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_are_bounded_and_monotone_in_len() {
        let mut rng = TestRng::for_case("sample::index", 0);
        for _ in 0..200 {
            let ix = Index::arbitrary(&mut rng);
            for len in [1usize, 2, 7, 100] {
                assert!(ix.index(len) < len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn zero_length_panics() {
        Index(0).index(0);
    }
}
