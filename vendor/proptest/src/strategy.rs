//! The `Strategy` trait and the built-in range/tuple/string strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value from the deterministic case stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// Strategies are generated through shared references inside `proptest!`,
// so a reference to a strategy is itself a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Bias toward the endpoints now and then: boundary values
                // find off-by-one bugs that uniform sampling misses.
                let offset = match rng.below(16) {
                    0 => 0,
                    1 => (span - 1) as u128,
                    _ => (u128::from(rng.next_u64()) * span) >> 64,
                };
                (self.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// A `&str` strategy generates arbitrary strings (the pattern itself is
/// ignored; see the crate docs).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Mix ASCII with multi-byte scalars so UTF-8 boundary handling
        // gets exercised.
        const EXOTIC: &[char] = &['é', 'Δ', '—', '中', '🦀', '\u{0}', 'ß', '\n'];
        let len = rng.below(24);
        let mut out = String::new();
        for _ in 0..len {
            if rng.below(4) == 0 {
                out.push(EXOTIC[rng.below(EXOTIC.len())]);
            } else {
                out.push((b' ' + rng.below(95) as u8) as char);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::ranges", 0);
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn boundary_bias_hits_endpoints() {
        let mut rng = TestRng::for_case("strategy::bias", 0);
        let vs: Vec<u64> = (0..200).map(|_| (0u64..100).generate(&mut rng)).collect();
        assert!(vs.contains(&0));
        assert!(vs.contains(&99));
    }

    #[test]
    fn string_strategy_is_valid_utf8_of_mixed_width() {
        let mut rng = TestRng::for_case("strategy::string", 0);
        let mut saw_multibyte = false;
        for _ in 0..100 {
            let s = ".*".generate(&mut rng);
            saw_multibyte |= s.chars().any(|c| c.len_utf8() > 1);
        }
        assert!(saw_multibyte);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_case("strategy::tuple", 0);
        let (a, b) = (0usize..10, 0usize..10).generate(&mut rng);
        assert!(a < 10 && b < 10);
    }
}
