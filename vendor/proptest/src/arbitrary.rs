//! `any::<T>()` and the `Arbitrary` trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Over-represent boundary values; uniform bits otherwise.
                match rng.below(16) {
                    0 => 0,
                    1 => <$ty>::MAX,
                    2 => <$ty>::MIN,
                    3 => 1,
                    _ => rng.next_u64() as $ty,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Arbitrary bit patterns: exercises subnormals, infinities, NaN.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_hit_boundaries() {
        let mut rng = TestRng::for_case("arbitrary::ints", 0);
        let vs: Vec<u8> = (0..300).map(|_| u8::arbitrary(&mut rng)).collect();
        assert!(vs.contains(&0));
        assert!(vs.contains(&255));
    }

    #[test]
    fn arrays_fill_every_byte() {
        let mut rng = TestRng::for_case("arbitrary::arrays", 0);
        // With 300 samples each byte position is zero in all of them with
        // probability ~(1/256)^300: a stuck byte would be a codec bug.
        let mut union = [0u8; 12];
        for _ in 0..300 {
            let a = <[u8; 12]>::arbitrary(&mut rng);
            for (u, b) in union.iter_mut().zip(a) {
                *u |= b;
            }
        }
        assert!(union.iter().all(|&b| b != 0), "{union:?}");
    }
}
