//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of `bytes` it uses: a growable byte buffer
//! (`BytesMut`) and the `BufMut` append trait, both backed by a plain
//! `Vec<u8>`.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Sink for appending raw bytes.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

/// A growable, contiguous byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with the given capacity pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Appends `src` to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Self {
        buf.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut b = BytesMut::with_capacity(8);
        assert!(b.is_empty());
        b.put_slice(b"abc");
        b.put_u8(b'd');
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], b"abcd");
        assert_eq!(b.to_vec(), b"abcd".to_vec());
        assert_eq!(Vec::<u8>::from(b), b"abcd".to_vec());
    }
}
