//! A textual rendition of the EDBT demonstration itself (§3.2): Part 1
//! configures a QEP interactively; Part 2 executes it step by step with
//! the event trace standing in for the GUI, including the "power off a
//! device at will" moment.
//!
//! ```sh
//! cargo run --example demo_walkthrough
//! ```

use edgelet_core::exec::driver::{enroll_crowd, execute_plan};
use edgelet_core::exec::ExecConfig;
use edgelet_core::prelude::*;
use edgelet_core::query::plan::build_plan;
use edgelet_core::query::{estimate, render, OperatorRole};
use edgelet_core::sim::{
    DeviceConfig, Duration, NetworkModel, SimConfig, SimTime, Simulation, TraceEvent,
};
use edgelet_core::store::synth::health_schema;
use edgelet_core::tee::Directory;
use edgelet_core::util::rng::DetRng;
use std::collections::BTreeMap;

fn main() {
    println!("=== Part 1: QEP configuration ===\n");

    // The crowd: 1500 home boxes with one record each, 150 volunteers.
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::lossy(
                Duration::from_millis(20),
                Duration::from_millis(120),
                0.05,
            ),
            trace_capacity: 100_000,
            ..SimConfig::default()
        },
        2023,
    );
    let mut directory = Directory::new();
    let mut rng = DetRng::new(2023);
    let (stores, _) = enroll_crowd(
        &mut directory,
        &mut sim,
        1_500,
        150,
        DeviceClass::SgxPc,
        1,
        &mut rng,
    );
    let querier = sim.add_device(DeviceConfig::default());

    // The demo's Grouping Sets query with the privacy knobs turned.
    let spec = QuerySpec {
        id: QueryId::new(1),
        filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        snapshot_cardinality: 300,
        kind: QueryKind::GroupingSets(edgelet_core::ml::grouping::GroupingQuery::new(
            &[&["sex"], &["gir"], &[]],
            vec![
                AggSpec::count_star(),
                AggSpec::over(AggKind::Avg, "bmi"),
                AggSpec::over(AggKind::Avg, "systolic_bp"),
            ],
        )),
        deadline_secs: 600.0,
    };
    let privacy = PrivacyConfig::none()
        .with_max_tuples(75)
        .separate("bmi", "systolic_bp");
    let resilience = ResilienceConfig {
        strategy: Strategy::Overcollection,
        failure_probability: 0.15,
        target_validity: 0.99,
        ..ResilienceConfig::default()
    };
    let plan = build_plan(
        &spec,
        &health_schema(),
        &privacy,
        &resilience,
        &directory,
        querier,
        &mut rng,
    )
    .expect("plan");
    println!("{}", render::render_ascii(&plan));
    let cost = estimate(&plan);
    println!(
        "predicted cost: <= {} messages ({} contribution round trips)\n",
        cost.total_messages_max(),
        cost.contribute_requests
    );

    println!("=== Part 2: execution, with a device powered off mid-run ===\n");
    // The presenter pulls the plug on one Computer.
    let victim = plan
        .operators
        .iter()
        .find(|o| matches!(o.role, OperatorRole::Computer { .. }))
        .expect("plan has computers")
        .device;
    sim.crash_at(victim, SimTime::from_micros(50_000));
    println!("(powering off {victim} at t=0.05s — watch partition 0 vanish)\n");

    let report = execute_plan(
        &plan,
        &health_schema(),
        &stores,
        &BTreeMap::new(),
        &mut sim,
        &ExecConfig::fast(),
        [42u8; 32],
    )
    .expect("execute");

    // Replay the trace as phases, the way the GUI animates them.
    let mut collection_msgs = 0u64;
    let mut crashes: Vec<String> = Vec::new();
    let mut drops = 0u64;
    for rec in sim.trace().records() {
        match &rec.event {
            TraceEvent::Sent { .. } => collection_msgs += 1,
            TraceEvent::Dropped { .. } => drops += 1,
            TraceEvent::Crashed { device, .. } => crashes.push(format!("{} at {}", device, rec.at)),
            _ => {}
        }
    }
    println!(
        "trace: {} sends, {} lost in transit",
        collection_msgs, drops
    );
    println!("crashes observed: [{}]", crashes.join(", "));
    println!(
        "victim {}'s last activity: {} trace records\n",
        victim,
        sim.trace().for_device(victim).len()
    );

    println!(
        "result: completed={} valid={} | {} of {} partitions merged ({} complete)",
        report.completed,
        report.valid,
        report.partitions_merged,
        plan.total_partitions(),
        report.partitions_complete,
    );
    if let Some(QueryOutcome::Grouping(table)) = &report.outcome {
        println!("\n{table}");
    }
    println!(
        "The powered-off Computer killed its partition; the overcollected\n\
         spares (m = {}) covered it and the query stayed valid — the demo's\n\
         closing argument.",
        plan.m
    );
}
