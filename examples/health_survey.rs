//! Data altruism: Santé-Publique-France-style health survey over
//! DomYcile home boxes connected opportunistically (§1, §3.2).
//!
//! A Grouping-Sets query crosses several statistics over one snapshot,
//! with vertical partitioning separating the two medical measures so no
//! single Computer sees both, and a comparison against the centralized
//! reference.
//!
//! ```sh
//! cargo run --example health_survey
//! ```

use edgelet_core::prelude::*;

fn main() {
    // The opportunistic scenario: home boxes, caregiver-borne messages
    // with minutes-to-hours delays, devices offline for hours.
    let mut platform = Platform::build(Scenario::DataAltruism.config(2024));

    // GROUP BY GROUPING SETS ((sex), (gir), ()) with three statistics.
    let spec = platform.grouping_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        400,
        &[&["sex"], &["gir"], &[]],
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggKind::Avg, "bmi"),
            AggSpec::over(AggKind::Avg, "systolic_bp"),
        ],
    );

    // Privacy: 100 raw records max per edgelet, and BMI must never sit
    // next to blood pressure in the same enclave.
    let privacy = PrivacyConfig::none()
        .with_max_tuples(100)
        .separate("bmi", "systolic_bp");

    let resilience = ResilienceConfig {
        strategy: Strategy::Overcollection,
        failure_probability: 0.15, // OppNets presume many late/lost parts
        target_validity: 0.99,
        ..ResilienceConfig::default()
    };

    let plan = platform.plan_query(&spec, &privacy, &resilience).unwrap();
    println!(
        "plan: n = {}, overcollection m = {}, {} vertical groups, {} operators",
        plan.n,
        plan.m,
        plan.attr_groups.len(),
        plan.operators.len()
    );
    for (g, cols) in plan.attr_groups.iter().enumerate() {
        println!("  computer slice {g}: [{}]", cols.join(", "));
    }

    let run = platform.run_query(&spec, &privacy, &resilience).unwrap();
    println!(
        "\ncompleted = {} | valid = {} | t = {:.0} s virtual | {} partitions ({} complete)",
        run.report.completed,
        run.report.valid,
        run.report.completion_secs.unwrap_or(f64::NAN),
        run.report.partitions_merged,
        run.report.partitions_complete,
    );
    println!(
        "network: {} messages, {} dropped, {} store-and-forward deferrals, {} crashes",
        run.report.messages_sent,
        run.report.messages_dropped,
        run.report.messages_deferred,
        run.report.crashes,
    );

    // Privacy outcome: what would a sealed-glass compromise of two random
    // processors have revealed?
    let pairs = vec![("bmi".to_string(), "systolic_bp".to_string())];
    let mut rng = edgelet_core::util::rng::DetRng::new(7);
    let sweep = edgelet_core::privacy::compromise_sweep(&run.exposure, 2, &pairs, 500, &mut rng);
    println!(
        "\nsealed-glass adversary (k=2, 500 trials): mean snapshot exposure {:.1}%, \
         bmi+bp co-exposure rate {:.1}%",
        100.0 * sweep.snapshot_fraction.mean(),
        100.0 * sweep.pair_co_exposure_rate,
    );

    if let Some(QueryOutcome::Grouping(table)) = &run.report.outcome {
        println!("\ndistributed result:\n{table}");
    }
    if run.report.completed {
        let central = platform.centralized_grouping(&spec).unwrap();
        if let Some(QueryOutcome::Grouping(table)) = &run.report.outcome {
            let err = table.max_relative_error(&central);
            println!(
                "max relative deviation vs centralized-over-everyone: {:.3} \
                 (sampling C={} of {} matching rows)",
                err,
                spec.snapshot_cardinality,
                central
                    .group(2, &[])
                    .map(|r| r.aggregates[0].to_string())
                    .unwrap_or_default()
            );
        }
    }
}
