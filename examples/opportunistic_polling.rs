//! Opportunistic polling: a venue full of TrustZone smartphones adapts
//! services to its audience in (near) real time (§1).
//!
//! Sweeps the audience's failure/churn level and shows how the planner
//! reacts (overcollection degree) and what it buys (completion rate).
//!
//! ```sh
//! cargo run --example opportunistic_polling
//! ```

use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let mut table = Table::new(
        "Opportunistic polling: audience statistics under churn",
        &[
            "crash p",
            "m planned",
            "completed",
            "valid",
            "t (s)",
            "msgs",
        ],
    );

    for &crash_p in &[0.0, 0.1, 0.2, 0.3] {
        let mut config = Scenario::OpportunisticPolling.config(99);
        config.processor_crash_probability = crash_p;
        let mut platform = Platform::build(config);

        // Poll: audience age structure and regional origin.
        let spec = platform.grouping_query(
            Predicate::True,
            500,
            &[&["region"], &[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "age")],
        );
        let privacy = PrivacyConfig::none().with_max_tuples(100);
        // The fault presumption must cover everything that can lose a
        // partition: crashes, churn past the timeout, AND message loss.
        // Presuming only the crash rate (try `crash_p.max(0.02)`) makes
        // the planner under-provision m and the run can finish invalid —
        // exactly the paper's point about choosing the presumption rate.
        let resilience = ResilienceConfig {
            strategy: Strategy::Overcollection,
            failure_probability: crash_p.max(0.15),
            target_validity: 0.99,
            ..ResilienceConfig::default()
        };

        let run = platform.run_query(&spec, &privacy, &resilience).unwrap();
        table.row(&[
            fnum(crash_p),
            run.plan.m.to_string(),
            run.report.completed.to_string(),
            run.report.valid.to_string(),
            fnum(run.report.completion_secs.unwrap_or(f64::NAN)),
            run.report.messages_sent.to_string(),
        ]);

        if crash_p == 0.1 {
            if let Some(QueryOutcome::Grouping(t)) = &run.report.outcome {
                println!("sample poll result at p=0.1:\n{t}");
            }
        }
    }

    println!("{}", table.render());
    println!(
        "Reading: the planner raises the overcollection degree m as the \
         presumed failure rate grows, keeping completion and validity high \
         despite phones leaving mid-query."
    );
}
