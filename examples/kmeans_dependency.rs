//! The demo's second query (§3.2): K-Means over elderly health profiles
//! followed by a Group-By on the resulting clusters, to identify which
//! characteristics most influence the dependency level (GIR).
//!
//! ```sh
//! cargo run --example kmeans_dependency
//! ```

use edgelet_core::ml::kmeans::nearest;
use edgelet_core::prelude::*;

fn main() {
    let mut platform = Platform::build(PlatformConfig {
        seed: 7,
        contributors: 2_500,
        processors: 60,
        network: NetworkProfile::Lossy {
            drop_probability: 0.05,
        },
        processor_crash_probability: 0.05,
        ..PlatformConfig::default()
    });

    // Cluster the 65+ population on (age, bmi, systolic_bp), then compute
    // the mean dependency level (GIR: 1 = most dependent) per cluster.
    let spec = platform.kmeans_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        300,
        3,
        &["age", "bmi", "systolic_bp"],
        6, // heartbeats
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggKind::Avg, "gir"),
            AggSpec::over(AggKind::Avg, "age"),
        ],
    );

    let privacy = PrivacyConfig::none().with_max_tuples(100);
    let resilience = ResilienceConfig {
        strategy: Strategy::Overcollection,
        failure_probability: 0.1,
        ..ResilienceConfig::default()
    };

    let run = platform.run_query(&spec, &privacy, &resilience).unwrap();
    println!(
        "completed = {} | partitions merged = {} | {:.0} s virtual | {} messages",
        run.report.completed,
        run.report.partitions_merged,
        run.report.completion_secs.unwrap_or(f64::NAN),
        run.report.messages_sent,
    );

    let Some(QueryOutcome::KMeans {
        centroids,
        per_cluster,
    }) = &run.report.outcome
    else {
        println!("query failed to produce a k-means outcome");
        return;
    };

    println!("\ncombined centroids (age, bmi, systolic_bp):");
    for (i, (c, w)) in centroids
        .centroids
        .rows()
        .zip(&centroids.weights)
        .enumerate()
    {
        println!(
            "  cluster {i}: age {:5.1}, bmi {:4.1}, bp {:5.1}  (weight {w:.0})",
            c[0], c[1], c[2]
        );
    }
    if let Some(table) = per_cluster {
        println!("\nper-cluster dependency profile:\n{table}");
    }

    // Compare with the centralized run over all matching rows.
    let central = platform.centralized_kmeans(&spec).unwrap();
    println!("centralized inertia (reference): {:.1}", central.inertia);
    // Map each distributed centroid to its closest centralized one.
    for (i, c) in centroids.centroids.rows().enumerate() {
        let j = nearest(&central.model.centroids, c);
        let d: f64 = c
            .iter()
            .zip(central.model.centroids.row(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        println!("  distributed cluster {i} ≈ centralized cluster {j} (distance {d:.2})");
    }
    println!(
        "\nReading: clusters separate by age (the dominant axis); the \
         oldest cluster shows the lowest mean GIR — highest dependency — \
         matching the DomYcile motivation."
    );
}
