//! Quickstart: plan and run one Edgelet query, inspect everything.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use edgelet_core::prelude::*;

fn main() {
    // A crowd: 1500 individuals each holding one health record on a
    // TEE-enabled personal device, 80 volunteer processors, a querier.
    let mut platform = Platform::build(PlatformConfig {
        seed: 42,
        contributors: 1_500,
        processors: 80,
        network: NetworkProfile::Lossy {
            drop_probability: 0.05,
        },
        processor_crash_probability: 0.1,
        ..PlatformConfig::default()
    });

    // "Among people over 65: how many per sex, and the average BMI?"
    let spec = platform.grouping_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        200, // representative snapshot of C = 200 individuals
        &[&["sex"], &[]],
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
    );

    // Privacy: at most 50 raw records per edgelet (horizontal
    // partitioning -> n = 4 partitions).
    let privacy = PrivacyConfig::none().with_max_tuples(50);

    // Resiliency: Overcollection sized for 10% fault presumption.
    let resilience = ResilienceConfig {
        strategy: Strategy::Overcollection,
        failure_probability: 0.1,
        target_validity: 0.999,
        ..ResilienceConfig::default()
    };

    // Part 1 of the demo: inspect the QEP the knobs produce.
    let plan = platform
        .plan_query(&spec, &privacy, &resilience)
        .expect("plan");
    println!("{}", platform.render_plan(&plan));

    // Part 2: execute on the simulated crowd.
    let run = platform
        .run_query(&spec, &privacy, &resilience)
        .expect("run");
    let report = &run.report;
    println!("completed:            {}", report.completed);
    println!("valid:                {}", report.valid);
    println!(
        "completion time:      {:.2} s (virtual)",
        report.completion_secs.unwrap_or(f64::NAN)
    );
    println!(
        "partitions merged:    {} ({} complete, n = {}, m = {})",
        report.partitions_merged, report.partitions_complete, run.plan.n, run.plan.m
    );
    println!("messages sent:        {}", report.messages_sent);
    println!("bytes sent:           {}", report.bytes_sent);
    println!("crashes during run:   {}", report.crashes);
    println!(
        "max raw tuples/device: {} (liability spread, gini {:.3})",
        report.ledger.max_raw_tuples(),
        report.ledger.raw_tuple_gini()
    );

    match &report.outcome {
        Some(QueryOutcome::Grouping(table)) => {
            println!("\nresult:\n{table}");
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // Verification step: same computation, centralized.
    let central = platform.centralized_grouping(&spec).expect("centralized");
    println!("centralized reference (over ALL matching rows):\n{central}");
}
