//! Workspace root of the Edgelet computing reproduction.
//!
//! The public API lives in [`edgelet_core`]; this crate only anchors the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).

pub use edgelet_core::*;
