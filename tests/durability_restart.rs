//! Crash-restart parity: the durability keystone.
//!
//! For a corpus of seeded worlds, a query service is killed at each of
//! the three scripted crash points in the durable submit path
//! (`after-admit`, `mid-query`, `before-checkpoint`), a fresh service
//! is recovered over the same backend, and the query is finished. The
//! recovered outcome must be **byte-identical** to an uninterrupted
//! run: same result payload, same per-device liability ledger, same
//! trace digest. The second half pins the storage-fault policies: a
//! torn tail is repaired, mid-log damage drains the service to
//! read-only (never silently mis-charging a ledger), and replaying the
//! same WAL twice is idempotent.

use edgelet_chaos::FaultPlan;
use edgelet_core::{Platform, PlatformConfig};
use edgelet_live::{
    CrashPoint, DurabilityConfig, QueryService, ServiceConfig, SubmitError, SubmitOutcome,
};
use edgelet_ml::AggSpec;
use edgelet_query::{PrivacyConfig, QuerySpec, ResilienceConfig, Strategy};
use edgelet_store::{
    DurableBackend, FaultyBackend, MemBackend, StorageFaultAction, StorageFaultPlan,
};
use edgelet_store::{DurableLog, RetryPolicy};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const SEEDS: u64 = 8;

/// One seeded world: a platform plus the query to run on it.
fn world(seed: u64) -> (Platform, QuerySpec, PrivacyConfig, ResilienceConfig) {
    let mut platform = Platform::build(PlatformConfig {
        seed,
        contributors: 90,
        processors: 24,
        fault_plan: Some(FaultPlan::new()),
        trace_capacity: 1 << 16,
        ..PlatformConfig::default()
    });
    let spec = platform.grouping_query(
        edgelet_store::Predicate::True,
        40,
        &[&["sex"], &[]],
        vec![AggSpec::count_star()],
    );
    let privacy = PrivacyConfig::none().with_max_tuples(20);
    let resilience = ResilienceConfig {
        failure_probability: 0.1,
        target_validity: 0.99,
        strategy: Strategy::Backup,
        max_overcollection: 64,
        max_backups: 4,
    };
    (platform, spec, privacy, resilience)
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        max_concurrent: 2,
        mailbox_capacity: 4096,
    }
}

fn durable_service(
    seed: u64,
    backend: Arc<dyn DurableBackend>,
    crash_at: Option<CrashPoint>,
) -> (
    QueryService,
    QuerySpec,
    PrivacyConfig,
    ResilienceConfig,
    edgelet_live::RecoveryReport,
) {
    let (platform, spec, privacy, resilience) = world(seed);
    let (service, report) = QueryService::with_durability(
        platform,
        service_config(),
        backend,
        DurabilityConfig {
            // > 1 so completions live in the WAL (not a checkpoint)
            // across at least one restart, exercising replay.
            checkpoint_every: 2,
            crash_at,
            ..DurabilityConfig::default()
        },
    );
    (service, spec, privacy, resilience, report)
}

/// Like [`durable_service`], but with tiny WAL segments so every
/// couple of appends crosses a rotation boundary.
fn durable_service_with_segments(
    seed: u64,
    backend: Arc<dyn DurableBackend>,
    segment_bytes: u64,
) -> (
    QueryService,
    QuerySpec,
    PrivacyConfig,
    ResilienceConfig,
    edgelet_live::RecoveryReport,
) {
    let (platform, spec, privacy, resilience) = world(seed);
    let (service, report) = QueryService::with_durability(
        platform,
        service_config(),
        backend,
        DurabilityConfig {
            checkpoint_every: 2,
            segment_bytes,
            ..DurabilityConfig::default()
        },
    );
    (service, spec, privacy, resilience, report)
}

fn submit(
    service: &QueryService,
    spec: &QuerySpec,
    privacy: &PrivacyConfig,
    resilience: &ResilienceConfig,
) -> Result<SubmitOutcome, SubmitError> {
    service.submit(spec, privacy, resilience, None)
}

/// The keystone: kill at every scripted point, recover, finish, and
/// require byte identity with the uninterrupted run.
#[test]
fn killed_service_recovers_to_byte_identical_outcomes() {
    for seed in 0..SEEDS {
        // Uninterrupted reference run on a fresh backend.
        let (service, spec, privacy, resilience, report) =
            durable_service(seed, Arc::new(MemBackend::new()), None);
        assert!(!report.recovered_anything(), "fresh log recovers trivially");
        let reference = submit(&service, &spec, &privacy, &resilience).expect("reference run");
        assert!(reference.succeeded() && !reference.recovered);
        service.shutdown();

        for point in CrashPoint::ALL {
            let backend = Arc::new(MemBackend::new());
            let ctx = format!("seed={seed} crash-at={point}");

            // Run into the scripted crash. The panic is the simulated
            // power cut; the service incarnation dies with it.
            let (service, spec, privacy, resilience, _) =
                durable_service(seed, backend.clone(), Some(point));
            let crash = catch_unwind(AssertUnwindSafe(|| {
                submit(&service, &spec, &privacy, &resilience)
            }));
            assert!(crash.is_err(), "the crash point must trip ({ctx})");
            drop(service);

            // Restart over the same backend and finish the query.
            let (service, spec, privacy, resilience, report) =
                durable_service(seed, backend.clone(), None);
            assert!(report.drained.is_none(), "recovery must succeed ({ctx})");
            let interrupted_pending = point != CrashPoint::BeforeCheckpoint;
            assert_eq!(
                report.pending.len(),
                usize::from(interrupted_pending),
                "pending intents after recovery ({ctx})"
            );
            let recovered = submit(&service, &spec, &privacy, &resilience)
                .unwrap_or_else(|e| panic!("recovered run failed ({ctx}): {e}"));
            assert!(recovered.succeeded(), "{ctx}");
            assert_eq!(
                recovered.recovered, interrupted_pending,
                "epoch reuse only for interrupted intents ({ctx})"
            );
            if interrupted_pending {
                assert_eq!(
                    recovered.epoch, reference.epoch,
                    "a pending intent re-runs under its original epoch ({ctx})"
                );
            }

            // Byte identity with the uninterrupted run.
            assert_eq!(
                recovered.run.report.result_payload, reference.run.report.result_payload,
                "result payload bytes diverged ({ctx})"
            );
            assert_eq!(
                recovered.run.report.ledger.entries(),
                reference.run.report.ledger.entries(),
                "liability ledgers diverged ({ctx})"
            );
            assert_eq!(
                recovered.run.trace_digest, reference.run.trace_digest,
                "trace digests diverged ({ctx})"
            );
            assert_eq!(
                edgelet_live::state_crc(&recovered.run),
                edgelet_live::state_crc(&reference.run),
                "state CRCs diverged ({ctx})"
            );
            service.shutdown();
        }
    }
}

/// Restarting twice without new work must not change durable balances:
/// the WAL-after-checkpoint segment is replayed on both restarts, and
/// the `applied`-set guard keeps the second replay a no-op.
#[test]
fn ledger_balances_survive_repeated_replay_across_restarts() {
    let backend = Arc::new(MemBackend::new());
    let (service, spec, privacy, resilience, _) = durable_service(3, backend.clone(), None);
    // Three submissions with checkpoint_every = 2: one completion stays
    // in the WAL past the last checkpoint.
    for _ in 0..3 {
        submit(&service, &spec, &privacy, &resilience).expect("submission");
    }
    let once = service
        .cumulative_ledger()
        .expect("durable services track a cumulative ledger");
    service.shutdown();

    let (restarted, _, _, _, report) = durable_service(3, backend.clone(), None);
    assert!(report.records_replayed > 0, "the WAL tail must replay");
    let after_one_restart = restarted.cumulative_ledger().expect("cumulative ledger");
    restarted.shutdown();

    let (restarted_again, _, _, _, _) = durable_service(3, backend, None);
    let after_two_restarts = restarted_again
        .cumulative_ledger()
        .expect("cumulative ledger");
    restarted_again.shutdown();

    assert_eq!(
        once.entries(),
        after_one_restart.entries(),
        "replay must not change balances"
    );
    assert_eq!(
        after_one_restart.entries(),
        after_two_restarts.entries(),
        "a second replay of the same segment must be a no-op"
    );
}

/// A torn tail (crash mid-append) is repaired on recovery: the service
/// comes back writable and finishes the interrupted query.
#[test]
fn torn_tail_is_repaired_and_the_query_finished() {
    let backend = Arc::new(MemBackend::new());
    // Fault: the 2nd append (the completion record) tears after 6 bytes
    // and the backend dies, as a power cut mid-write would.
    let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
        backend.clone(),
        StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 6 }),
    ));
    let (service, spec, privacy, resilience, _) = durable_service(1, faulty, None);
    let err = submit(&service, &spec, &privacy, &resilience)
        .expect_err("the torn completion append must fail the submit");
    assert!(matches!(err, SubmitError::ReadOnly { .. }), "{err}");
    assert!(service.is_drained(), "a dead backend drains the service");
    // Drained mode refuses further work with the same verdict.
    let again = submit(&service, &spec, &privacy, &resilience).expect_err("drained");
    assert!(matches!(again, SubmitError::ReadOnly { .. }));
    service.shutdown();

    // Restart on the repaired media: the tail is truncated, the intent
    // is pending, and the query finishes.
    let (service, spec, privacy, resilience, report) = durable_service(1, backend, None);
    assert!(report.repaired_tail.is_some(), "the torn tail must repair");
    assert_eq!(report.pending.len(), 1);
    let outcome = submit(&service, &spec, &privacy, &resilience).expect("recovered run");
    assert!(outcome.recovered && outcome.succeeded());
    service.shutdown();
}

/// A power cut that tears the append *just after a segment rotation*:
/// with 256-byte segments the completion append rotates first, so the
/// tear lands in a freshly sealed boundary's active segment. Recovery
/// must leave the sealed segment untouched, repair only the active
/// tail, and finish the query byte-identical to an uninterrupted run.
#[test]
fn torn_tail_after_rotation_repairs_only_the_active_segment() {
    // Uninterrupted reference with the same segment size.
    let (service, spec, privacy, resilience, _) =
        durable_service_with_segments(4, Arc::new(MemBackend::new()), 256);
    let reference = submit(&service, &spec, &privacy, &resilience).expect("reference run");
    service.shutdown();

    let backend = Arc::new(MemBackend::new());
    let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
        backend.clone(),
        StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 6 }),
    ));
    let (service, spec, privacy, resilience, _) = durable_service_with_segments(4, faulty, 256);
    submit(&service, &spec, &privacy, &resilience)
        .expect_err("the torn completion append must fail the submit");
    assert!(service.is_drained());
    service.shutdown();
    assert!(
        backend.segment_count() >= 2,
        "256-byte segments must force a rotation before the tear, got {}",
        backend.segment_count()
    );

    let (service, spec, privacy, resilience, report) =
        durable_service_with_segments(4, backend, 256);
    assert!(
        report.drained.is_none(),
        "sealed segments scan clean; only the active tail is damaged: {:?}",
        report.drained
    );
    assert!(report.repaired_tail.is_some(), "the torn tail must repair");
    assert_eq!(report.pending.len(), 1);
    let recovered = submit(&service, &spec, &privacy, &resilience).expect("recovered run");
    assert!(recovered.recovered && recovered.succeeded());
    assert_eq!(
        recovered.run.report.result_payload, reference.run.report.result_payload,
        "result payload bytes diverged across the rotation boundary"
    );
    assert_eq!(
        edgelet_live::state_crc(&recovered.run),
        edgelet_live::state_crc(&reference.run),
        "state CRCs diverged across the rotation boundary"
    );
    service.shutdown();
}

/// A torn frame frozen inside a *sealed* (non-final) segment is not a
/// crash tail — acknowledged records sit after the damage — so recovery
/// must refuse to replay and drain the service read-only.
#[test]
fn torn_frame_in_a_sealed_segment_refuses_to_replay() {
    let backend = Arc::new(MemBackend::new());
    {
        // Tear the first append, then rotate *instead of* truncating —
        // freezing the torn frame inside a sealed segment — and land an
        // acknowledged record after it.
        let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
            backend.clone(),
            StorageFaultPlan::new().with(1, StorageFaultAction::TornTail { keep: 4 }),
        ));
        let log = DurableLog::new(faulty, RetryPolicy::immediate(2));
        log.append(b"torn-then-sealed")
            .expect_err("the tear kills the backend");
        backend.rotate_wal().expect("seal the damaged segment");
        let intact: Arc<dyn DurableBackend> = backend.clone();
        let log = DurableLog::new(intact, RetryPolicy::immediate(2));
        log.append(b"acknowledged-after")
            .expect("lands in the fresh active segment");
    }
    let (service, spec, privacy, resilience, report) = durable_service(2, backend, None);
    let reason = report
        .drained
        .expect("sealed-segment damage must drain the service");
    assert!(reason.contains("sealed segment"), "{reason}");
    assert!(reason.contains("refusing to replay"), "{reason}");
    assert!(service.is_drained());
    let err = submit(&service, &spec, &privacy, &resilience).expect_err("read-only");
    assert!(matches!(err, SubmitError::ReadOnly { .. }), "{err}");
    service.shutdown();
}

/// Checkpoint-subsumed segment deletion is idempotent across restarts:
/// tiny segments churn through many rotations, but compaction keeps the
/// live set bounded, and neither of two recovery replays changes the
/// durable balances or regrows deleted segments.
#[test]
fn checkpoint_compaction_bounds_segments_across_repeated_restarts() {
    let backend = Arc::new(MemBackend::new());
    let (service, spec, privacy, resilience, _) =
        durable_service_with_segments(6, backend.clone(), 512);
    // 5 submissions = 10 appends over 512-byte segments, with a
    // checkpoint every 2 applied completions.
    for _ in 0..5 {
        submit(&service, &spec, &privacy, &resilience).expect("submission");
    }
    let once = service
        .cumulative_ledger()
        .expect("durable services track a cumulative ledger");
    service.shutdown();
    let live_segments = backend.segment_count();
    assert!(
        live_segments <= 4,
        "checkpoints must delete subsumed sealed segments, got {live_segments}"
    );

    let (restarted, _, _, _, report) = durable_service_with_segments(6, backend.clone(), 512);
    assert!(report.drained.is_none(), "{:?}", report.drained);
    let after_one_restart = restarted.cumulative_ledger().expect("cumulative ledger");
    restarted.shutdown();

    let (restarted_again, _, _, _, report) = durable_service_with_segments(6, backend.clone(), 512);
    assert!(report.drained.is_none(), "{:?}", report.drained);
    let after_two_restarts = restarted_again
        .cumulative_ledger()
        .expect("cumulative ledger");
    restarted_again.shutdown();

    assert_eq!(
        once.entries(),
        after_one_restart.entries(),
        "replay must not change balances"
    );
    assert_eq!(
        after_one_restart.entries(),
        after_two_restarts.entries(),
        "a second replay must be a no-op"
    );
    assert!(
        backend.segment_count() <= live_segments,
        "restart-time recovery must not regrow sealed segments, got {}",
        backend.segment_count()
    );
}

/// Mid-log damage (a truncated or checksum-corrupt non-final record)
/// must never be replayed: the service comes up drained, read-only,
/// with the corruption named — not with a silently wrong ledger.
#[test]
fn mid_log_corruption_drains_the_service_read_only() {
    let backend = Arc::new(MemBackend::new());
    {
        // Silently cut the first record short while later appends land
        // intact — the signature of undetected media damage.
        let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
            backend.clone(),
            StorageFaultPlan::new().with(1, StorageFaultAction::TruncatedRecord { keep: 4 }),
        ));
        let log = DurableLog::new(faulty, RetryPolicy::immediate(2));
        log.append(b"cut-short").expect("silent fault");
        log.append(b"acknowledged-after").expect("lands intact");
    }
    let (service, spec, privacy, resilience, report) = durable_service(2, backend, None);
    let reason = report.drained.expect("corrupt WAL must drain the service");
    assert!(reason.contains("refusing to replay"), "{reason}");
    assert!(service.is_drained());
    let err = submit(&service, &spec, &privacy, &resilience).expect_err("read-only");
    match err {
        SubmitError::ReadOnly { reason } => {
            assert!(reason.contains("refusing to replay"), "{reason}")
        }
        other => panic!("expected ReadOnly, got {other}"),
    }
    service.shutdown();
}

/// A checksum flip on the *final* record is indistinguishable from a
/// torn write and is dropped on recovery rather than trusted.
#[test]
fn corrupt_checksum_on_the_tail_is_dropped_not_replayed() {
    let backend = Arc::new(MemBackend::new());
    {
        let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
            backend.clone(),
            StorageFaultPlan::new().with(2, StorageFaultAction::CorruptChecksum { byte: 8 }),
        ));
        let log = DurableLog::new(faulty, RetryPolicy::immediate(2));
        log.append(b"kept").expect("clean append");
        log.append(b"flipped").expect("silently corrupted");
    }
    let log = DurableLog::new(backend, RetryPolicy::immediate(2));
    let recovered = log.recover().expect("tail damage is repairable");
    assert_eq!(recovered.records, vec![b"kept".to_vec()]);
    assert!(recovered.repaired.is_some());
}
