//! Property-style checks on the simulator substrate: determinism under
//! churn + loss, and conservation of messages across fates.

use edgelet_core::sim::{
    Actor, Availability, Context, CrashPlan, DeviceConfig, Duration, NetworkModel, SimConfig,
    SimTime, Simulation, TimerToken,
};
use edgelet_core::util::ids::DeviceId;

/// Gossip actor: forwards each received token to a pseudo-random peer a
/// bounded number of times; also ticks a timer.
struct Gossip {
    peers: Vec<DeviceId>,
    budget: u32,
}

impl Actor for Gossip {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let peer = *ctx.rng().pick(&self.peers.clone());
        ctx.send(peer, vec![1, 2, 3]);
        ctx.set_timer(Duration::from_millis(500));
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
        if self.budget > 0 {
            self.budget -= 1;
            let peer = *ctx.rng().pick(&self.peers.clone());
            ctx.send(peer, payload.to_vec());
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        ctx.observe("tick", 1.0);
    }
}

fn world(seed: u64) -> Simulation {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::lossy(
                Duration::from_millis(5),
                Duration::from_millis(200),
                0.15,
            ),
            trace_capacity: 10_000,
            ..SimConfig::default()
        },
        seed,
    );
    let n = 30u64;
    let devices: Vec<DeviceId> = (0..n)
        .map(|i| {
            sim.add_device(DeviceConfig {
                availability: if i % 3 == 0 {
                    Availability::Intermittent {
                        mean_up: Duration::from_secs(2),
                        mean_down: Duration::from_secs(1),
                        start_up: true,
                    }
                } else {
                    Availability::AlwaysUp
                },
                crash: if i % 7 == 0 {
                    CrashPlan::Bernoulli {
                        p: 0.5,
                        window: Duration::from_secs(5),
                    }
                } else {
                    CrashPlan::Never
                },
            })
        })
        .collect();
    for &d in &devices {
        sim.install_actor(
            d,
            Box::new(Gossip {
                peers: devices.clone(),
                budget: 20,
            }),
        );
    }
    sim
}

fn fingerprint(sim: &Simulation) -> (u64, u64, u64, u64, u64, u64) {
    let m = sim.metrics();
    (
        m.messages_sent,
        m.messages_delivered,
        m.messages_dropped,
        m.messages_deferred,
        m.crashes,
        m.events_processed,
    )
}

#[test]
fn identical_seeds_identical_worlds() {
    for seed in [1u64, 99, 12345] {
        let mut a = world(seed);
        let mut b = world(seed);
        a.run_until(SimTime::from_micros(20_000_000));
        b.run_until(SimTime::from_micros(20_000_000));
        assert_eq!(fingerprint(&a), fingerprint(&b), "seed {seed}");
        // Traces match event for event.
        let ta: Vec<_> = a.trace().records().cloned().collect();
        let tb: Vec<_> = b.trace().records().cloned().collect();
        assert_eq!(ta, tb, "seed {seed}");
    }
}

#[test]
fn different_seeds_diverge() {
    let mut a = world(5);
    let mut b = world(6);
    a.run_until(SimTime::from_micros(20_000_000));
    b.run_until(SimTime::from_micros(20_000_000));
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn message_conservation() {
    // Every sent message is eventually delivered, dropped, parked (still
    // deferred at cutoff), or addressed to a crashed device.
    let mut sim = world(42);
    sim.run_until(SimTime::from_micros(60_000_000));
    let m = sim.metrics();
    assert!(m.messages_sent > 0);
    assert!(
        m.messages_delivered + m.messages_dropped + m.messages_to_crashed <= m.messages_sent,
        "{m:?}"
    );
    // Loss is roughly the configured 15% of routed messages.
    let drop_rate = m.messages_dropped as f64 / m.messages_sent as f64;
    assert!(
        drop_rate > 0.05 && drop_rate < 0.30,
        "drop rate {drop_rate}"
    );
}

#[test]
fn stepwise_run_equals_single_run() {
    // Driving the clock in many small steps must not change the outcome.
    let mut whole = world(77);
    whole.run_until(SimTime::from_micros(10_000_000));
    let mut stepped = world(77);
    for i in 1..=100u64 {
        stepped.run_until(SimTime::from_micros(i * 100_000));
    }
    assert_eq!(fingerprint(&whole), fingerprint(&stepped));
}
