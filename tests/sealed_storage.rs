//! Data at rest: the DomYcile box arrangement (micro-SD blob + TPM-held
//! keys) across the stack — seal a contributor's store, power-cycle,
//! unseal, and answer a query from it.

use edgelet_core::crypto::attest::TrustAnchor;
use edgelet_core::prelude::*;
use edgelet_core::store::{synth, CmpOp, Predicate, SortedIndex};
use edgelet_core::tee::{seal_store, unseal_store};
use edgelet_core::util::rng::DetRng;

#[test]
fn sealed_store_survives_a_power_cycle_and_serves_queries() {
    let anchor = TrustAnchor::new([9u8; 32]);
    let device = DeviceId::new(12);
    let mut rng = DetRng::new(5);
    let store = synth::health_store(300, &mut rng);

    // Nightly seal at version 4 (the TPM NV counter's current value).
    let sealed = seal_store(&anchor, device, 4, &store);

    // "Power cycle": all in-memory state gone; unseal from the blob.
    let restored = unseal_store(&anchor, device, 4, &sealed).unwrap();
    assert_eq!(restored.rows(), store.rows());

    // The restored store answers the survey predicate identically.
    let p = Predicate::cmp("age", CmpOp::Gt, Value::Int(65));
    assert_eq!(restored.count(&p).unwrap(), store.count(&p).unwrap());

    // And indexes built over it agree with scans.
    let idx = SortedIndex::build(&restored, "age").unwrap();
    assert_eq!(
        idx.lookup(CmpOp::Gt, &Value::Int(65)).unwrap().len(),
        store.count(&p).unwrap()
    );
}

#[test]
fn stolen_sd_card_and_rollback_are_useless() {
    let anchor = TrustAnchor::new([9u8; 32]);
    let owner = DeviceId::new(1);
    let thief = DeviceId::new(2);
    let mut rng = DetRng::new(6);
    let store = synth::health_store(50, &mut rng);

    let old = seal_store(&anchor, owner, 1, &store);
    let current = seal_store(&anchor, owner, 2, &store);

    // Another device cannot open the blob at all.
    assert!(unseal_store(&anchor, thief, 2, &current).is_err());
    // The owner cannot be rolled back to a stale snapshot.
    assert!(unseal_store(&anchor, owner, 2, &old).is_err());
    // The legitimate path works.
    assert!(unseal_store(&anchor, owner, 2, &current).is_ok());
}
