//! Tier-1 parity suite for the sharded parallel simulation engine.
//!
//! The engine's headline guarantee is that the shard count is purely a
//! performance knob: for every seed, fault plan, and shard count, a run
//! produces bit-identical trace digests, execution metrics, and oracle
//! verdicts. These tests pin that guarantee end to end — through the
//! full platform stack (planner, executor roles, ledger, tracing), not
//! just the raw simulator — and replay the entire shipped chaos corpus
//! under the parallel engine. See `docs/PERF.md` for the lookahead
//! derivation and the determinism argument.

use edgelet_chaos::{load_dir, plan_for_seed, ChaosScenario, FaultPlan};
use std::path::Path;

/// Everything a run exposes that could possibly differ between engines:
/// the trace digest, the oracle signature, and the complete execution
/// report (message/byte/crash counts, completion, validity, liability).
fn fingerprint(
    scenario: ChaosScenario,
    seed: u64,
    plan: &FaultPlan,
    shards: usize,
) -> (u64, Vec<String>, String) {
    let run = scenario
        .open_with_shards(seed, plan.clone(), shards)
        .run()
        .unwrap();
    let oracles = edgelet_chaos::signature(&edgelet_chaos::check_run(&run));
    let digest = run.digest();
    let report = format!("{:?}", run.result.report);
    (digest, oracles, report)
}

fn scenario_for(seed: u64) -> ChaosScenario {
    if seed.is_multiple_of(2) {
        ChaosScenario::Grouping
    } else {
        ChaosScenario::KMeans
    }
}

/// The core sweep: 32 seeds, each run at shards 1, 2, 4, and 8, over
/// clean (fault-free, fully traced) worlds alternating between the two
/// canonical scenarios.
#[test]
fn seed_sweep_is_bit_identical_across_shard_counts() {
    for seed in 0..32u64 {
        let scenario = scenario_for(seed);
        let baseline = fingerprint(scenario, seed, &FaultPlan::new(), 1);
        for shards in [2usize, 4, 8] {
            let parallel = fingerprint(scenario, seed, &FaultPlan::new(), shards);
            assert_eq!(
                baseline,
                parallel,
                "{} seed {seed}: shards={shards} diverged from sequential",
                scenario.name()
            );
        }
    }
}

/// Parity must survive fault injection: the catalog plans include
/// position-dependent rules (skip counts, firing limits, reorders) that
/// force the global sequential fallback, and window-safe rules that run
/// under the parallel engine — both paths must agree with shards=1.
#[test]
fn fault_plans_are_bit_identical_across_shard_counts() {
    for seed in 0..8u64 {
        for scenario in ChaosScenario::ALL {
            let named = plan_for_seed(scenario, seed).unwrap();
            let baseline = fingerprint(scenario, seed, &named.plan, 1);
            for shards in [2usize, 4] {
                let parallel = fingerprint(scenario, seed, &named.plan, shards);
                assert_eq!(
                    baseline,
                    parallel,
                    "{} seed {seed} plan {}: shards={shards} diverged",
                    scenario.name(),
                    named.name
                );
            }
        }
    }
}

/// Every shipped repro replays to the same digest and the same oracle
/// verdict under the parallel engine as under the sequential one.
#[test]
fn chaos_corpus_replays_identically_under_parallel_engine() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/chaos_corpus");
    let entries = load_dir(&dir).unwrap();
    assert!(!entries.is_empty(), "corpus must not be empty");
    for (name, entry) in &entries {
        let sequential = entry.replay_with_shards(1).unwrap();
        let parallel = entry.replay_with_shards(4).unwrap();
        assert_eq!(
            sequential.trace_digest, parallel.trace_digest,
            "{name}: digest diverged between engines"
        );
        assert_eq!(
            sequential.oracles, parallel.oracles,
            "{name}: oracle verdict diverged between engines"
        );
        assert!(
            parallel.matches,
            "{name}: parallel replay no longer matches the pinned verdict \
             (expected [{}], got [{}])",
            entry.expect.join(","),
            parallel.oracles.join(",")
        );
    }
}
