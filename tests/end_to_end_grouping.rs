//! End-to-end Grouping-Sets execution across the whole stack:
//! store → plan → simulate → combine → verify against the centralized
//! reference (the demo's verification step, §3.2).

use edgelet_core::prelude::*;

fn platform(seed: u64) -> Platform {
    Platform::build(PlatformConfig {
        seed,
        contributors: 2_500,
        processors: 80,
        network: NetworkProfile::Reliable,
        ..PlatformConfig::default()
    })
}

#[test]
fn distributed_counts_equal_snapshot_cardinality() {
    let mut p = platform(1);
    let spec = p.grouping_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        300,
        &[&["sex"], &["gir"], &[]],
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(75),
            &ResilienceConfig::default(),
        )
        .unwrap();
    assert!(run.report.completed && run.report.valid);

    let Some(QueryOutcome::Grouping(table)) = &run.report.outcome else {
        panic!("expected grouping outcome");
    };
    // The grand total is exactly C (each partition contributed its quota).
    let total = table.rows.iter().find(|r| r.set_index == 2).unwrap();
    assert_eq!(total.aggregates[0], Value::Int(300));
    // Set-wise counts are partitions of the total.
    for set in [0u32, 1] {
        let sum: i64 = table
            .rows
            .iter()
            .filter(|r| r.set_index == set)
            .map(|r| r.aggregates[0].as_i64().unwrap())
            .sum();
        assert_eq!(sum, 300, "set {set} counts must sum to C");
    }
}

#[test]
fn snapshot_statistics_track_population_statistics() {
    // The snapshot is a (hash-bucketed) sample of the eligible
    // population: its AVG/MIN/MAX must be close to the centralized ones.
    let mut p = platform(2);
    let spec = p.grouping_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        400,
        &[&[]],
        vec![
            AggSpec::over(AggKind::Avg, "bmi"),
            AggSpec::over(AggKind::Avg, "systolic_bp"),
            AggSpec::over(AggKind::Min, "age"),
            AggSpec::over(AggKind::Max, "age"),
        ],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig::default(),
        )
        .unwrap();
    assert!(run.report.valid);
    let Some(QueryOutcome::Grouping(distributed)) = &run.report.outcome else {
        panic!("expected grouping outcome");
    };
    let central = p.centralized_grouping(&spec).unwrap();

    let d = &distributed.rows[0].aggregates;
    let c = &central.rows[0].aggregates;
    let avg_bmi_err =
        (d[0].as_f64().unwrap() - c[0].as_f64().unwrap()).abs() / c[0].as_f64().unwrap();
    let avg_bp_err =
        (d[1].as_f64().unwrap() - c[1].as_f64().unwrap()).abs() / c[1].as_f64().unwrap();
    assert!(avg_bmi_err < 0.05, "avg bmi deviates {avg_bmi_err}");
    assert!(avg_bp_err < 0.05, "avg bp deviates {avg_bp_err}");
    // Domain bounds hold.
    assert!(d[2].as_i64().unwrap() > 65);
    assert!(d[3].as_i64().unwrap() <= 102);
}

#[test]
fn vertical_partitioning_preserves_the_full_result() {
    // The same query with and without vertical separation must agree on
    // every aggregate (same platform seed -> same crowd and sample
    // composition per partition).
    let build_spec = |p: &mut Platform| {
        p.grouping_query(
            Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            200,
            &[&["sex"], &[]],
            vec![
                AggSpec::count_star(),
                AggSpec::over(AggKind::Avg, "bmi"),
                AggSpec::over(AggKind::Avg, "systolic_bp"),
            ],
        )
    };
    let mut p1 = platform(3);
    let spec1 = build_spec(&mut p1);
    let merged = p1
        .run_query(
            &spec1,
            &PrivacyConfig::none().with_max_tuples(50),
            &ResilienceConfig::default(),
        )
        .unwrap();

    let mut p2 = platform(3);
    let spec2 = build_spec(&mut p2);
    let separated = p2
        .run_query(
            &spec2,
            &PrivacyConfig::none()
                .with_max_tuples(50)
                .separate("bmi", "systolic_bp"),
            &ResilienceConfig::default(),
        )
        .unwrap();

    assert!(merged.report.valid && separated.report.valid);
    assert_eq!(separated.plan.attr_groups.len(), 2);
    let (Some(QueryOutcome::Grouping(a)), Some(QueryOutcome::Grouping(b))) =
        (&merged.report.outcome, &separated.report.outcome)
    else {
        panic!("expected grouping outcomes");
    };
    // Same number of groups, and the total count agrees exactly.
    assert_eq!(a.rows.len(), b.rows.len());
    let ta = a.rows.iter().find(|r| r.set_index == 1).unwrap();
    let tb = b.rows.iter().find(|r| r.set_index == 1).unwrap();
    assert_eq!(ta.aggregates[0], tb.aggregates[0]);
}

#[test]
fn channel_encryption_changes_bytes_not_results() {
    let run_with = |encrypt: bool| {
        let mut config = PlatformConfig {
            seed: 4,
            contributors: 900,
            processors: 60,
            network: NetworkProfile::Reliable,
            ..PlatformConfig::default()
        };
        config.exec.encrypt_channels = encrypt;
        let mut p = Platform::build(config);
        let spec = p.grouping_query(
            Predicate::True,
            200,
            &[&[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "age")],
        );
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(50),
                &ResilienceConfig::default(),
            )
            .unwrap();
        let Some(QueryOutcome::Grouping(t)) = run.report.outcome.clone() else {
            panic!("expected grouping outcome");
        };
        (run.report.bytes_sent, run.report.valid, format!("{t}"))
    };
    let (plain_bytes, plain_valid, plain_result) = run_with(false);
    let (sealed_bytes, sealed_valid, sealed_result) = run_with(true);
    assert!(plain_valid && sealed_valid);
    assert_eq!(plain_result, sealed_result, "AEAD must be transparent");
    assert!(
        sealed_bytes > plain_bytes,
        "sealing adds nonce+tag overhead: {sealed_bytes} vs {plain_bytes}"
    );
}
