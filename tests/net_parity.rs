//! Cross-process parity: a daemon plus two worker fleets over a real
//! Unix domain socket must be observationally identical to the
//! in-process live runtime and to the simulator.
//!
//! For seeded chaos-scenario worlds (Backup-strategy Grouping-Sets and
//! Overcollection K-Means), the same query executed on
//!
//! * the simulator (`Platform::run_query` via `ChaosScenario::run`),
//! * the in-process live runtime (`run_live_query`, worker threads
//!   over the striped transport), and
//! * the socket runtime (`edgelet_net::Daemon` coordinating two
//!   worker loops over a UDS, every process-equivalent rebuilding the
//!   world from the same canonical spec bytes)
//!
//! must produce byte-identical result payloads, identical per-device
//! liability ledgers, identical trace digests, and identical scalar
//! report fields. On top of the three-engine sweep:
//!
//! * relay fault plans (the order-independent drop/delay/duplicate
//!   subset, `NetFaultProxy`) must replay deterministically — two
//!   fleets running the same plan produce the same bytes;
//! * a version-skewed `Hello` must be rejected at the handshake;
//! * killing a worker's connection mid-fleet must not fail the next
//!   query: the service falls back to a deterministic in-process rerun
//!   with the same bytes, counting a `remote_fallback`.
//!
//! CI's `net-smoke` job runs this sweep plus the same drill against
//! real OS processes (`edgelet serve/worker/submit` + `kill -9`).

use edgelet_chaos::{ChaosScenario, FaultPlan};
use edgelet_live::{
    prepare_live_query, run_live_query, state_crc, LiveRun, LiveRunOptions, QueryService,
    RemoteExecutor, ServiceConfig, StripedTransport,
};
use edgelet_net::{
    run_worker, Addr, CollectorTransport, Daemon, MsgStream, NetConfig, NetMsg, Role, Stream,
    WorkerConfig, WorldBuilder, PROTO_VERSION,
};
use edgelet_sim::{FaultAction, FaultRule, MsgMatch};
use edgelet_util::ids::DeviceId;
use edgelet_util::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Seeds per scenario; 2 scenarios × 8 seeds = the 16-world corpus,
/// same coverage as `tests/live_parity.rs`.
const SEEDS_PER_SCENARIO: u64 = 8;

/// Worker processes per fleet.
const FLEET: usize = 2;

// ---- canonical world-spec bytes ----

/// The spec codec for this harness: scenario name + seed. Every
/// process-equivalent (daemon, each worker) rebuilds the *entire*
/// world from these bytes through the same deterministic constructor,
/// exactly like the CLI's `edgelet-worldspec-v1` codec does for real
/// deployments.
fn spec_bytes(scenario: ChaosScenario, seed: u64) -> Vec<u8> {
    format!("net-parity/1 scenario={} seed={seed}", scenario.name()).into_bytes()
}

struct ScenarioBuilder;

impl WorldBuilder for ScenarioBuilder {
    fn build(
        &self,
        spec: &[u8],
        epoch: u64,
        workers: usize,
    ) -> Result<edgelet_live::PreparedQuery> {
        let text = std::str::from_utf8(spec)
            .map_err(|_| Error::InvalidConfig("world spec is not UTF-8".into()))?;
        let mut scenario = None;
        let mut seed = None;
        for field in text.split_whitespace().skip(1) {
            match field.split_once('=') {
                Some(("scenario", name)) => scenario = ChaosScenario::from_name(name),
                Some(("seed", n)) => seed = n.parse::<u64>().ok(),
                _ => {}
            }
        }
        let (scenario, seed) = scenario.zip(seed).ok_or_else(|| {
            Error::InvalidConfig(format!("unparseable net-parity world spec: {text:?}"))
        })?;
        let (platform, qspec, privacy, resilience) =
            scenario.open(seed, FaultPlan::new()).into_parts();
        prepare_live_query(
            &platform,
            &qspec,
            &privacy,
            &resilience,
            Arc::new(CollectorTransport::new(workers)),
            &LiveRunOptions::new(workers, epoch),
        )
    }
}

// ---- fleet harness ----

/// A daemon plus `FLEET` worker loops over a fresh UDS. The workers
/// run on threads, but each one speaks to the daemon only through its
/// socket and rebuilds its own world from the spec bytes — the exact
/// code path a separate OS process runs (CI's `net-smoke` job drives
/// the same stack as real processes).
struct Fleet {
    daemon: Arc<Daemon>,
    stops: Vec<Arc<AtomicBool>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    path: std::path::PathBuf,
}

fn unique_uds_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::path::PathBuf::from(format!(
        "/tmp/edgelet-np-{}-{tag}-{n}.sock",
        std::process::id()
    ))
}

impl Fleet {
    fn start(world_spec: Vec<u8>, fault_plan: Option<FaultPlan>, tag: &str) -> Fleet {
        let path = unique_uds_path(tag);
        let addr = Addr::Uds(path.clone());
        let daemon = Arc::new(
            Daemon::start(
                &addr,
                NetConfig {
                    expected_workers: FLEET,
                    world_spec,
                    fault_plan,
                    ..NetConfig::default()
                },
                Arc::new(ScenarioBuilder),
            )
            .expect("daemon binds a fresh UDS path"),
        );
        let mut stops = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..FLEET {
            let stop = Arc::new(AtomicBool::new(false));
            stops.push(stop.clone());
            let addr = addr.clone();
            workers.push(std::thread::spawn(move || {
                // `Ok` covers both a stop-flag exit and a graceful
                // daemon drain; a `Rejected` session is a bug here.
                run_worker(&WorkerConfig::new(addr), Arc::new(ScenarioBuilder), &stop)
                    .expect("worker session ends cleanly");
            }));
        }
        assert!(
            daemon.wait_workers(Duration::from_secs(30)),
            "both workers must register within the handshake window"
        );
        Fleet {
            daemon,
            stops,
            workers,
            path,
        }
    }

    /// Runs one epoch distributed. Panics if the daemon declines (an
    /// incomplete fleet) — this harness asserts the *distributed* path,
    /// not the fallback.
    fn run(&self, scenario: ChaosScenario, seed: u64, epoch: u64) -> LiveRun {
        let (_, qspec, privacy, resilience) = scenario.open(seed, FaultPlan::new()).into_parts();
        let abort = AtomicBool::new(false);
        self.daemon
            .try_run(epoch, &qspec, &privacy, &resilience, &abort)
            .expect("fleet is complete, the daemon must not decline")
            .expect("distributed epoch completes")
    }

    /// Abruptly severs one worker's connection: the loop stops and the
    /// socket dies without any goodbye message — observationally the
    /// same as `kill -9` of a worker process.
    fn sever_worker(&mut self, index: usize) {
        self.stops[index].store(true, Ordering::Release);
        self.workers.remove(index).join().expect("worker thread");
        self.stops.remove(index);
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for stop in &self.stops {
            stop.store(true, Ordering::Release);
        }
        self.daemon.shutdown();
        for w in self.workers.drain(..) {
            w.join().expect("worker thread");
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

// ---- the three-engine sweep ----

fn assert_three_engine_parity(scenario: ChaosScenario, seed: u64) {
    let ctx = format!("scenario={} seed={seed}", scenario.name());
    let epoch = 1 + seed;

    // Engine 1: the simulator.
    let sim = scenario
        .open(seed, FaultPlan::new())
        .run()
        .expect("simulator execution");

    // Engine 2: the in-process live runtime.
    let session = scenario.open(seed, FaultPlan::new());
    let transport = Arc::new(StripedTransport::new(4096));
    transport.register_epoch(epoch, FLEET);
    let live = run_live_query(
        session.platform(),
        session.spec(),
        session.privacy(),
        session.resilience(),
        transport,
        &LiveRunOptions::new(FLEET, epoch),
        None,
    )
    .expect("in-process live execution");

    // Engine 3: daemon + two socket workers.
    let fleet = Fleet::start(spec_bytes(scenario, seed), None, scenario.name());
    let net = fleet.run(scenario, seed, epoch);

    for (name, run) in [("live", &live), ("net", &net)] {
        assert_eq!(
            run.report.result_payload, sim.result.report.result_payload,
            "{name} result payload bytes diverged from sim ({ctx})"
        );
        assert_eq!(
            run.report.ledger.entries(),
            sim.result.report.ledger.entries(),
            "{name} liability ledger diverged from sim ({ctx})"
        );
        assert_eq!(
            run.trace_digest, sim.result.trace_digest,
            "{name} trace digest diverged from sim ({ctx})"
        );
        assert_eq!(run.report.completed, sim.result.report.completed, "{ctx}");
        assert_eq!(run.report.valid, sim.result.report.valid, "{ctx}");
        assert_eq!(
            run.report.messages_sent, sim.result.report.messages_sent,
            "{name} ({ctx})"
        );
        assert_eq!(
            run.report.bytes_sent, sim.result.report.bytes_sent,
            "{name} ({ctx})"
        );
        assert_eq!(
            run.report.completion_secs, sim.result.report.completion_secs,
            "{name} ({ctx})"
        );
    }
    // The one-number receipt the CLI artifacts carry.
    assert_eq!(
        state_crc(&net),
        state_crc(&live),
        "state CRC diverged ({ctx})"
    );
}

#[test]
fn grouping_worlds_match_across_three_engines() {
    for seed in 0..SEEDS_PER_SCENARIO {
        assert_three_engine_parity(ChaosScenario::Grouping, seed);
    }
}

#[test]
fn kmeans_worlds_match_across_three_engines() {
    for seed in 0..SEEDS_PER_SCENARIO {
        assert_three_engine_parity(ChaosScenario::KMeans, seed);
    }
}

// ---- relay fault determinism ----

/// The order-independent relay subset: stateless matchers, no
/// skip/limit windows, no reorder/crash actions.
fn relay_plan() -> FaultPlan {
    FaultPlan::new()
        .rule(FaultRule {
            matcher: MsgMatch {
                from: Some(vec![DeviceId::new(3)]),
                ..Default::default()
            },
            action: FaultAction::Drop,
            skip: 0,
            limit: None,
        })
        .rule(FaultRule {
            matcher: MsgMatch {
                from: Some(vec![DeviceId::new(5)]),
                ..Default::default()
            },
            action: FaultAction::Duplicate {
                extra_delay: edgelet_sim::Duration::ZERO,
            },
            skip: 0,
            limit: None,
        })
}

/// Two independent fleets running the same fault plan over the same
/// world must produce identical artifacts: the proxy's verdicts are a
/// pure per-envelope function, so nondeterministic socket arrival
/// order cannot leak into the bytes.
#[test]
fn net_fault_plans_replay_deterministically() {
    let scenario = ChaosScenario::Grouping;
    let seed = 1;
    let runs: Vec<LiveRun> = (0..2)
        .map(|i| {
            let fleet = Fleet::start(
                spec_bytes(scenario, seed),
                Some(relay_plan()),
                &format!("fault{i}"),
            );
            fleet.run(scenario, seed, 42)
        })
        .collect();
    assert_eq!(
        runs[0].report.result_payload, runs[1].report.result_payload,
        "fault-plan replay diverged in result bytes"
    );
    assert_eq!(
        runs[0].trace_digest, runs[1].trace_digest,
        "fault-plan replay diverged in trace digest"
    );
    assert_eq!(
        runs[0].report.ledger.entries(),
        runs[1].report.ledger.entries(),
        "fault-plan replay diverged in liability ledger"
    );
    assert_eq!(runs[0].report.completed, runs[1].report.completed);
    assert_eq!(runs[0].report.valid, runs[1].report.valid);
    assert_eq!(state_crc(&runs[0]), state_crc(&runs[1]));
}

// ---- handshake version gate ----

/// A peer built against a different frame layout must be refused at
/// the handshake with a reason naming the mismatch — never admitted to
/// produce silently divergent bytes mid-query.
#[test]
fn version_skewed_hello_is_rejected_at_handshake() {
    let path = unique_uds_path("skew");
    let addr = Addr::Uds(path.clone());
    let daemon = Daemon::start(
        &addr,
        NetConfig {
            expected_workers: 1,
            world_spec: spec_bytes(ChaosScenario::Grouping, 0),
            ..NetConfig::default()
        },
        Arc::new(ScenarioBuilder),
    )
    .expect("daemon binds");

    let stream = Stream::connect(&addr).expect("connect");
    let mut ms = MsgStream::new(stream);
    ms.send(&NetMsg::Hello {
        role: Role::Worker,
        proto: PROTO_VERSION,
        frame_version: edgelet_wire::FRAME_VERSION.wrapping_add(1),
        envelope_version: edgelet_wire::ENVELOPE_VERSION,
    })
    .expect("hello send");
    match ms.recv(Some(Duration::from_secs(10))) {
        Ok(NetMsg::Reject { reason }) => {
            assert!(
                reason.contains("version"),
                "rejection must name the version mismatch, got {reason:?}"
            );
        }
        other => panic!("expected Reject for a version-skewed Hello, got {other:?}"),
    }
    assert_eq!(daemon.registered_workers(), 0);
    daemon.shutdown();
    let _ = std::fs::remove_file(&path);
}

// ---- kill-a-worker fallback drill ----

/// Severing a worker's connection between queries (the library-level
/// twin of CI's `kill -9` drill) must not fail the next submission:
/// the daemon's liveness probe surfaces the dead socket, `try_run`
/// declines, and the service reruns the epoch in-process — with the
/// same bytes, because every engine is deterministic over the same
/// world. Only the fallback counter may tell the difference.
#[test]
fn severed_worker_falls_back_to_identical_bytes() {
    let scenario = ChaosScenario::Grouping;
    let seed = 0;
    let (platform, qspec, privacy, resilience) = scenario.open(seed, FaultPlan::new()).into_parts();
    let service = QueryService::new(
        platform,
        ServiceConfig {
            workers: FLEET,
            max_concurrent: 1,
            mailbox_capacity: 4096,
        },
    );
    let mut fleet = Fleet::start(spec_bytes(scenario, seed), None, "sever");
    service.set_remote(fleet.daemon.clone());

    let deadline = Some(Duration::from_secs(300));
    let first = service
        .submit(&qspec, &privacy, &resilience, deadline)
        .expect("distributed submission");
    assert!(first.succeeded(), "distributed epoch must complete");
    assert_eq!(
        service.remote_fallbacks(),
        0,
        "a complete fleet must serve the first query distributed"
    );

    fleet.sever_worker(0);

    let second = service
        .submit(&qspec, &privacy, &resilience, deadline)
        .expect("fallback submission");
    assert!(second.succeeded(), "fallback epoch must complete");
    assert_eq!(
        service.remote_fallbacks(),
        1,
        "the incomplete fleet must be declined exactly once"
    );
    assert_eq!(
        second.run.report.result_payload, first.run.report.result_payload,
        "fallback changed the result bytes"
    );
    assert_eq!(second.run.trace_digest, first.run.trace_digest);
    assert_eq!(
        second.run.report.ledger.entries(),
        first.run.report.ledger.entries()
    );
    assert_eq!(state_crc(&second.run), state_crc(&first.run));

    drop(fleet);
    service.shutdown();
}
