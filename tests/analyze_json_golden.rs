//! Golden-file contract for `edgelet analyze --format json`.
//!
//! Downstream tooling parses this output, so the JSON surface is pinned
//! byte for byte: field names (`code`, `severity`, `location`,
//! `message`, `help`), the deterministic (file, line, code) ordering,
//! and the exit-code convention (1 on any error-severity diagnostic,
//! 0 otherwise). The analysis target is a fixture workspace written to
//! a temp directory, seeded with one finding from each source layer —
//! a lock-order cycle (E130), a guard held across a send (E132), an
//! unbounded channel (W133), a wall-clock read (E102), and a stale
//! suppression (W131) — across two crates, so the ordering rules are
//! actually exercised. The expected bytes live in
//! `tests/golden/analyze_json.golden`; regenerate by running with
//! `EDGELET_BLESS=1` and committing the printed output.

use std::fs;
use std::path::PathBuf;

const DEMO_LIB: &str = "\
use std::sync::Mutex;

pub struct Demo {
    accounts: Mutex<u64>,
    ledger: Mutex<u64>,
}

impl Demo {
    pub fn forward(&self) {
        let _a = self.accounts.lock().unwrap();
        let _b = self.ledger.lock().unwrap();
    }

    pub fn backward(&self) {
        let _b = self.ledger.lock().unwrap();
        let _a = self.accounts.lock().unwrap();
    }

    pub fn flush(&self, tx: &std::sync::mpsc::Sender<u64>) {
        let guard = self.accounts.lock().unwrap();
        tx.send(*guard).unwrap();
    }
}

pub fn fanout() {
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    std::thread::spawn(move || drop(rx));
    drop(tx);
}
";

const OTHER_LIB: &str = "\
pub fn stamp_micros() -> u64 {
    // lint: allow(E103 fixture directive that matches nothing)
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}
";

/// Writes the fixture workspace and returns its root.
fn fixture_workspace() -> PathBuf {
    let root = std::env::temp_dir().join(format!("edgelet-analyze-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (crate_name, source) in [("demo", DEMO_LIB), ("other", OTHER_LIB)] {
        let src = root.join("crates").join(crate_name).join("src");
        fs::create_dir_all(&src).expect("fixture dirs");
        fs::write(src.join("lib.rs"), source).expect("fixture source");
    }
    root
}

#[test]
fn analyze_json_output_matches_the_golden_file() {
    let root = fixture_workspace();
    let argv: Vec<String> = [
        "analyze",
        "--contributors",
        "1500",
        "--processors",
        "120",
        "--cardinality",
        "200",
        "--cap",
        "50",
        "--format",
        "json",
        "--workspace-root",
        root.to_str().expect("utf-8 temp path"),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (json, status) = edgelet_cli::run_cli_with_status(&argv).expect("analyze runs");
    let _ = fs::remove_dir_all(&root);

    if std::env::var_os("EDGELET_BLESS").is_some() {
        println!("{json}");
        panic!("EDGELET_BLESS set: copy the output above into tests/golden/analyze_json.golden");
    }

    // The fixture seeds error-severity findings, so the exit-code
    // convention is part of the contract.
    assert_eq!(status, 1, "errors must exit nonzero:\n{json}");
    let golden = include_str!("golden/analyze_json.golden");
    assert_eq!(
        json, golden,
        "JSON surface drifted from tests/golden/analyze_json.golden — \
         field names, ordering, and escaping are a published contract; \
         regenerate with EDGELET_BLESS=1 only for an intentional change"
    );
}

#[test]
fn analyze_json_on_a_clean_configuration_exits_zero() {
    // Without a crates/ dir under the workspace root, only the semantic
    // layer runs; at a 1% fault presumption this configuration is fully
    // clean, so the contract's other half is an empty array and exit
    // code 0.
    let empty = std::env::temp_dir().join(format!("edgelet-analyze-empty-{}", std::process::id()));
    let _ = fs::remove_dir_all(&empty);
    fs::create_dir_all(&empty).expect("empty fixture dir");
    let argv: Vec<String> = [
        "analyze",
        "--contributors",
        "1500",
        "--processors",
        "120",
        "--cardinality",
        "200",
        "--cap",
        "50",
        "--failure-p",
        "0.01",
        "--format",
        "json",
        "--workspace-root",
        empty.to_str().expect("utf-8 temp path"),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (json, status) = edgelet_cli::run_cli_with_status(&argv).expect("analyze runs");
    let _ = fs::remove_dir_all(&empty);
    assert_eq!(status, 0, "{json}");
    assert_eq!(
        json.trim(),
        "[\n]",
        "a clean run is an empty JSON array: {json}"
    );
}
