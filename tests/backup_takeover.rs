//! Backup-strategy takeover mechanics with *scripted* failures: the
//! demo's "we can intentionally power off some concrete devices to
//! generate a failure at will" (§3.2).

use edgelet_core::exec::driver::{enroll_crowd, execute_plan};
use edgelet_core::exec::ExecConfig;
use edgelet_core::prelude::*;
use edgelet_core::query::plan::build_plan;
use edgelet_core::query::OperatorRole;
use edgelet_core::sim::{DeviceConfig, Duration, NetworkModel, SimConfig, SimTime, Simulation};
use edgelet_core::store::synth::health_schema;
use edgelet_core::tee::Directory;
use edgelet_core::util::rng::DetRng;
use std::collections::BTreeMap;

struct World {
    sim: Simulation,
    directory: Directory,
    stores: BTreeMap<DeviceId, edgelet_core::store::DataStore>,
    querier: DeviceId,
    rng: DetRng,
}

fn world(seed: u64) -> World {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::reliable(Duration::from_millis(20)),
            ..SimConfig::default()
        },
        seed,
    );
    let mut directory = Directory::new();
    let mut rng = DetRng::new(seed ^ 0xabcd);
    let (stores, _) = enroll_crowd(
        &mut directory,
        &mut sim,
        1_200,
        150,
        DeviceClass::SgxPc,
        1,
        &mut rng,
    );
    let querier = sim.add_device(DeviceConfig::default());
    World {
        sim,
        directory,
        stores,
        querier,
        rng,
    }
}

fn spec() -> QuerySpec {
    QuerySpec {
        id: QueryId::new(1),
        filter: Predicate::True,
        snapshot_cardinality: 200,
        kind: QueryKind::GroupingSets(edgelet_core::ml::grouping::GroupingQuery::new(
            &[&["sex"], &[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
        )),
        deadline_secs: 600.0,
    }
}

#[test]
fn backup_takes_over_a_powered_off_computer() {
    let mut w = world(1);
    let spec = spec();
    let plan = build_plan(
        &spec,
        &health_schema(),
        &PrivacyConfig::none().with_max_tuples(50),
        &ResilienceConfig {
            strategy: Strategy::Backup,
            failure_probability: 0.2,
            target_validity: 0.99,
            ..ResilienceConfig::default()
        },
        &w.directory,
        w.querier,
        &mut w.rng,
    )
    .unwrap();
    assert!(plan.backup_degree >= 1);

    // Power off the primary Computer of partition 0 before it can act.
    let victim = plan
        .operators
        .iter()
        .find(|o| {
            matches!(
                o.role,
                OperatorRole::Computer { partition, .. } if partition.raw() == 0
            )
        })
        .unwrap()
        .device;
    w.sim.crash_at(victim, SimTime::from_micros(1));

    let report = execute_plan(
        &plan,
        &health_schema(),
        &w.stores,
        &BTreeMap::new(),
        &mut w.sim,
        &ExecConfig::fast(),
        [0u8; 32],
    )
    .unwrap();

    assert!(report.completed, "query must complete: {report:?}");
    assert!(
        report.valid,
        "the backup replica must cover the powered-off computer: {report:?}"
    );
    assert_eq!(report.partitions_complete, plan.n);
    assert!(report.crashes >= 1);
}

#[test]
fn backup_takes_over_a_powered_off_combiner() {
    let mut w = world(2);
    let spec = spec();
    let plan = build_plan(
        &spec,
        &health_schema(),
        &PrivacyConfig::none().with_max_tuples(50),
        &ResilienceConfig {
            strategy: Strategy::Backup,
            failure_probability: 0.2,
            target_validity: 0.99,
            ..ResilienceConfig::default()
        },
        &w.directory,
        w.querier,
        &mut w.rng,
    )
    .unwrap();

    let combiner = plan.combiner().device;
    w.sim.crash_at(combiner, SimTime::from_micros(1));

    let report = execute_plan(
        &plan,
        &health_schema(),
        &w.stores,
        &BTreeMap::new(),
        &mut w.sim,
        &ExecConfig::fast(),
        [0u8; 32],
    )
    .unwrap();
    assert!(report.completed);
    assert!(report.valid, "{report:?}");
    // Takeover costs time: the suspect timeout must have elapsed first.
    assert!(
        report.completion_secs.unwrap() >= ExecConfig::fast().suspect_timeout.as_secs_f64(),
        "takeover cannot be instant: {:?}",
        report.completion_secs
    );
}

#[test]
fn naive_plan_dies_with_its_single_computer() {
    let mut w = world(3);
    let spec = spec();
    let plan = build_plan(
        &spec,
        &health_schema(),
        &PrivacyConfig::none().with_max_tuples(50),
        &ResilienceConfig {
            strategy: Strategy::Naive,
            ..ResilienceConfig::default()
        },
        &w.directory,
        w.querier,
        &mut w.rng,
    )
    .unwrap();
    let victim = plan
        .operators
        .iter()
        .find(|o| matches!(o.role, OperatorRole::Computer { .. }))
        .unwrap()
        .device;
    w.sim.crash_at(victim, SimTime::from_micros(1));

    let report = execute_plan(
        &plan,
        &health_schema(),
        &w.stores,
        &BTreeMap::new(),
        &mut w.sim,
        &ExecConfig::fast(),
        [0u8; 32],
    )
    .unwrap();
    assert!(
        !report.valid,
        "a naive plan cannot survive losing a computer: {report:?}"
    );
}

#[test]
fn overcollection_tolerates_up_to_m_powered_off_partitions() {
    let mut w = world(4);
    let spec = spec();
    let plan = build_plan(
        &spec,
        &health_schema(),
        &PrivacyConfig::none().with_max_tuples(50),
        &ResilienceConfig {
            strategy: Strategy::Overcollection,
            failure_probability: 0.2,
            target_validity: 0.99,
            ..ResilienceConfig::default()
        },
        &w.directory,
        w.querier,
        &mut w.rng,
    )
    .unwrap();
    assert!(plan.m >= 2, "need headroom for this test, got m={}", plan.m);

    // Power off the builders of exactly m partitions.
    let builders: Vec<DeviceId> = plan
        .operators
        .iter()
        .filter(|o| matches!(o.role, OperatorRole::SnapshotBuilder { .. }))
        .map(|o| o.device)
        .collect();
    for &b in builders.iter().take(plan.m as usize) {
        w.sim.crash_at(b, SimTime::from_micros(1));
    }

    let report = execute_plan(
        &plan,
        &health_schema(),
        &w.stores,
        &BTreeMap::new(),
        &mut w.sim,
        &ExecConfig::fast(),
        [0u8; 32],
    )
    .unwrap();
    assert!(report.completed);
    assert!(
        report.valid,
        "losing exactly m partitions must stay valid: {report:?}"
    );
    assert_eq!(report.partitions_merged, plan.n);
}
