//! Distributed K-Means vs the centralized reference: accuracy of the
//! heartbeat-cadenced iterative execution (§2.2).

use edgelet_core::ml::kmeans::inertia;
use edgelet_core::prelude::*;

fn run_kmeans(seed: u64, heartbeats: usize, drop_p: f64) -> (f64, f64, bool) {
    let mut p = Platform::build(PlatformConfig {
        seed,
        contributors: 2_000,
        processors: 60,
        network: if drop_p > 0.0 {
            NetworkProfile::Lossy {
                drop_probability: drop_p,
            }
        } else {
            NetworkProfile::Reliable
        },
        ..PlatformConfig::default()
    });
    let spec = p.kmeans_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        300,
        3,
        &["age", "systolic_bp"],
        heartbeats,
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "gir")],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.1,
                ..ResilienceConfig::default()
            },
        )
        .unwrap();
    let central = p.centralized_kmeans(&spec).unwrap();

    let Some(QueryOutcome::KMeans { centroids, .. }) = &run.report.outcome else {
        return (f64::INFINITY, central.inertia, run.report.completed);
    };
    // Evaluate the distributed centroids on the full eligible population
    // (same point set the centralized model was fitted on).
    let columns = spec.kind.referenced_columns();
    let rows = p.matching_rows(&spec.filter, &columns).unwrap();
    let schema = p.schema().clone();
    let names: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let sub = schema.project(&names).unwrap();
    let points =
        edgelet_core::ml::gen::rows_to_points(&sub, &rows, &["age", "systolic_bp"]).unwrap();
    let distributed_inertia = inertia(&centroids.centroids, &points);
    (distributed_inertia, central.inertia, run.report.completed)
}

#[test]
fn distributed_clustering_approaches_centralized_quality() {
    let (distributed, central, completed) = run_kmeans(1, 6, 0.0);
    assert!(completed);
    let ratio = distributed / central;
    assert!(
        ratio < 1.35,
        "distributed inertia {distributed} vs central {central} (ratio {ratio})"
    );
}

#[test]
fn more_heartbeats_do_not_hurt_accuracy_much() {
    // §3.3: attendees observe result accuracy with respect to the number
    // of heartbeats. One heartbeat = almost no peer synchronization.
    let mut ratios = Vec::new();
    for &h in &[1usize, 3, 8] {
        let (d, c, completed) = run_kmeans(2, h, 0.0);
        assert!(completed, "heartbeats={h}");
        ratios.push(d / c);
    }
    // The well-synchronized run must not be worse than the unsynchronized
    // one by more than noise, and every run is within a sane bound.
    assert!(
        ratios[2] <= ratios[0] * 1.10,
        "8 heartbeats ({}) much worse than 1 ({})",
        ratios[2],
        ratios[0]
    );
    for (i, r) in ratios.iter().enumerate() {
        assert!(*r < 2.0, "run {i} ratio {r}");
    }
}

#[test]
fn kmeans_survives_message_loss() {
    // Heavy loss degrades synchronization but the query still completes
    // and produces usable centroids (heartbeats advance regardless).
    let (distributed, central, completed) = run_kmeans(3, 6, 0.25);
    assert!(completed, "query must complete under 25% loss");
    let ratio = distributed / central;
    assert!(ratio < 3.0, "ratio {ratio} out of bounds under loss");
}

#[test]
fn per_cluster_aggregates_cover_the_snapshot() {
    let mut p = Platform::build(PlatformConfig {
        seed: 4,
        contributors: 2_000,
        processors: 60,
        network: NetworkProfile::Reliable,
        ..PlatformConfig::default()
    });
    let spec = p.kmeans_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        300,
        3,
        &["age", "bmi"],
        5,
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "gir")],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.05,
                ..ResilienceConfig::default()
            },
        )
        .unwrap();
    assert!(run.report.completed);
    let Some(QueryOutcome::KMeans {
        per_cluster: Some(table),
        ..
    }) = &run.report.outcome
    else {
        panic!("expected per-cluster table");
    };
    // Counts over clusters sum to the merged snapshot size (quota * n).
    let total: i64 = table
        .rows
        .iter()
        .map(|r| r.aggregates[0].as_i64().unwrap())
        .sum();
    let expected = (run.plan.partition_quota as u64 * run.report.partitions_merged) as i64;
    // Some rows may have null features and be skipped by the extractor.
    assert!(
        total <= expected && total >= expected * 9 / 10,
        "cluster counts {total} vs snapshot {expected}"
    );
    // Dependency gradient: the oldest cluster has the lowest mean GIR.
    let Some(QueryOutcome::KMeans { centroids, .. }) = &run.report.outcome else {
        unreachable!()
    };
    let oldest = (0..centroids.k())
        .max_by(|&a, &b| {
            centroids.centroids.row(a)[0]
                .partial_cmp(&centroids.centroids.row(b)[0])
                .unwrap()
        })
        .unwrap();
    let youngest = (0..centroids.k())
        .min_by(|&a, &b| {
            centroids.centroids.row(a)[0]
                .partial_cmp(&centroids.centroids.row(b)[0])
                .unwrap()
        })
        .unwrap();
    let gir_of = |cluster: usize| {
        table
            .rows
            .iter()
            .find(|r| r.key[0] == Value::Int(cluster as i64))
            .and_then(|r| r.aggregates[1].as_f64())
    };
    if let (Some(g_old), Some(g_young)) = (gir_of(oldest), gir_of(youngest)) {
        assert!(
            g_old < g_young,
            "older cluster should be more dependent: {g_old} vs {g_young}"
        );
    }
}
