//! Whole-stack determinism and the paper's two motivating scenarios.

use edgelet_core::prelude::*;

fn fingerprint(run: &edgelet_core::platform::RunResult) -> String {
    format!(
        "{}|{}|{}|{:?}|{}|{}|{:?}",
        run.report.completed,
        run.report.valid,
        run.report.partitions_merged,
        run.report.completion_secs,
        run.report.messages_sent,
        run.report.bytes_sent,
        run.report.outcome.as_ref().map(|o| match o {
            QueryOutcome::Grouping(t) => format!("{t}"),
            QueryOutcome::KMeans { centroids, .. } => format!("{:?}", centroids.centroids),
        })
    )
}

#[test]
fn opportunistic_scenario_is_bit_for_bit_reproducible() {
    let run_once = || {
        let mut config = Scenario::OpportunisticPolling.config(321);
        // Trace every event: the fingerprint below includes the trace
        // digest, so reproducibility is asserted down to the exact
        // sequence of sends, deliveries, drops, and churn transitions —
        // not just the final report.
        config.trace_capacity = 1 << 20;
        let mut p = Platform::build(config);
        let spec = p.grouping_query(
            Predicate::True,
            400,
            &[&["region"], &[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "age")],
        );
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(100),
                &ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.15,
                    ..ResilienceConfig::default()
                },
            )
            .unwrap();
        let digest = run
            .trace_digest
            .expect("tracing was enabled, the digest must be present");
        format!("{}|trace:{digest:016x}", fingerprint(&run))
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn data_altruism_scenario_completes_on_oppnet_time_scales() {
    let mut p = Platform::build(Scenario::DataAltruism.config(11));
    let spec = p.grouping_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        400,
        &[&["gir"], &[]],
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.15,
                target_validity: 0.99,
                ..ResilienceConfig::default()
            },
        )
        .unwrap();
    assert!(run.report.completed, "{:?}", run.report);
    // OppNet delays are minutes-to-hours: completion reflects that.
    let t = run.report.completion_secs.unwrap();
    assert!(t > 60.0, "opportunistic run unrealistically fast: {t}");
    assert!(
        t <= run.plan.spec.deadline_secs,
        "resiliency: before the deadline ({t} vs {})",
        run.plan.spec.deadline_secs
    );
    // Store-and-forward actually happened.
    assert!(run.report.messages_deferred > 0);
}

#[test]
fn device_heterogeneity_slows_home_boxes() {
    // Same crowd size and query; home boxes (STM32F417-class) vs PCs.
    let run_with = |mix: DeviceMix| {
        let mut config = PlatformConfig {
            seed: 5,
            contributors: 1_500,
            processors: 60,
            network: NetworkProfile::Reliable,
            device_mix: mix,
            ..PlatformConfig::default()
        };
        config.exec.charge_compute_time = true;
        let mut p = Platform::build(config);
        let spec = p.grouping_query(
            Predicate::True,
            400,
            &[&["sex"], &[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
        );
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(100),
                &ResilienceConfig::default(),
            )
            .unwrap();
        assert!(run.report.completed);
        run.report.completion_secs.unwrap()
    };
    let pc = run_with(DeviceMix::only(DeviceClass::SgxPc));
    let boxes = run_with(DeviceMix::only(DeviceClass::TpmHomeBox));
    assert!(
        boxes > pc,
        "home boxes must be slower: {boxes} vs {pc} (virtual seconds)"
    );
}
