//! Privacy (exposure under sealed-glass compromise) and Crowd Liability
//! across the full stack (§3.3 "Is privacy protected whatever the
//! attack?" and the liability property of §1).

use edgelet_core::prelude::*;
use edgelet_core::util::rng::DetRng;

fn run(seed: u64, privacy: PrivacyConfig) -> (edgelet_core::platform::RunResult, PrivacyConfig) {
    let mut p = Platform::build(PlatformConfig {
        seed,
        contributors: 2_000,
        processors: 100,
        network: NetworkProfile::Reliable,
        ..PlatformConfig::default()
    });
    // No filter: every contributor is eligible, so even the coarsest
    // horizontal cap (quota 200/bucket) stays fillable.
    let spec = p.grouping_query(
        Predicate::True,
        400,
        &[&["sex"], &[]],
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggKind::Avg, "bmi"),
            AggSpec::over(AggKind::Avg, "systolic_bp"),
        ],
    );
    let result = p
        .run_query(&spec, &privacy, &ResilienceConfig::default())
        .unwrap();
    (result, privacy)
}

#[test]
fn ledger_matches_static_exposure_caps() {
    let (r, _) = run(1, PrivacyConfig::none().with_max_tuples(100));
    assert!(r.report.valid);
    // No device processed more raw tuples than the static analysis allows.
    assert!(r.report.ledger.max_raw_tuples() <= r.exposure.max_raw_tuples());
    assert!(r.exposure.max_raw_tuples() <= 100);
    // Liability spread: every processor hosted exactly one operator.
    assert_eq!(r.report.ledger.max_operators(), 1);
}

#[test]
fn tighter_horizontal_cap_means_less_exposure_per_device() {
    // Seed pinned to one where the coarse 200/bucket quota actually
    // fills: with only 5 overcollected partitions the coarse plan sits
    // close to the validity edge, and most seeds tip it over.
    let (coarse, _) = run(4, PrivacyConfig::none().with_max_tuples(200));
    let (fine, _) = run(4, PrivacyConfig::none().with_max_tuples(50));
    assert!(coarse.report.valid && fine.report.valid);
    assert!(fine.exposure.max_raw_tuples() < coarse.exposure.max_raw_tuples());
    assert!(fine.report.ledger.max_raw_tuples() < coarse.report.ledger.max_raw_tuples());
    // The price: more partitions, more operators, more messages.
    assert!(fine.plan.total_partitions() > coarse.plan.total_partitions());
    assert!(fine.report.messages_sent > coarse.report.messages_sent);
}

#[test]
fn vertical_separation_reduces_pair_co_exposure_under_compromise() {
    let pair = vec![("bmi".to_string(), "systolic_bp".to_string())];
    let (merged, _) = run(3, PrivacyConfig::none().with_max_tuples(100));
    let (separated, _) = run(
        3,
        PrivacyConfig::none()
            .with_max_tuples(100)
            .separate("bmi", "systolic_bp"),
    );
    assert!(separated.report.valid);
    assert_eq!(separated.plan.attr_groups.len(), 2);

    let mut rng = DetRng::new(17);
    let sm = edgelet_core::privacy::compromise_sweep(&merged.exposure, 2, &pair, 400, &mut rng);
    let ss = edgelet_core::privacy::compromise_sweep(&separated.exposure, 2, &pair, 400, &mut rng);
    assert!(
        ss.pair_co_exposure_rate < sm.pair_co_exposure_rate,
        "separated {} !< merged {}",
        ss.pair_co_exposure_rate,
        sm.pair_co_exposure_rate
    );
}

#[test]
fn only_aggregates_reach_combiner_and_querier() {
    let (r, _) = run(4, PrivacyConfig::none().with_max_tuples(100));
    // The combiner devices and the querier never record raw tuples.
    for combiner in r.plan.combiners() {
        if let Some(entry) = r.report.ledger.entries().get(&combiner.device) {
            assert_eq!(entry.raw_tuples_seen, 0, "combiner saw raw data");
            assert!(entry.aggregates_seen > 0, "combiner should merge partials");
        }
    }
    let querier = r.plan.querier().device;
    if let Some(entry) = r.report.ledger.entries().get(&querier) {
        assert_eq!(entry.raw_tuples_seen, 0);
    }
}

#[test]
fn contributors_share_collection_liability() {
    let (r, _) = run(5, PrivacyConfig::none().with_max_tuples(100));
    // Thousands of contributors each served at most a handful of queries:
    // operator hosting is spread thin (gini close to the builder/computer
    // concentration, but raw tuples bounded by the cap everywhere).
    let ledger = &r.report.ledger;
    for entry in ledger.entries().values() {
        assert!(entry.raw_tuples_seen <= 200, "{entry:?}");
    }
}
