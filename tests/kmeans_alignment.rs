//! Centroid-basis alignment in distributed K-Means: every Computer seeds
//! locally and re-bases onto the lowest-partition-id proposal it hears
//! (see `edgelet_exec::roles::kmeans`). Under a connected network all
//! survivors converge to one basis; under heavy loss misalignment is
//! tolerated and surfaces only as reduced accuracy.

use edgelet_core::prelude::*;

fn run(seed: u64, drop_p: f64, heartbeats: usize) -> (bool, u64, f64) {
    let mut p = Platform::build(PlatformConfig {
        seed,
        contributors: 2_000,
        processors: 60,
        network: if drop_p > 0.0 {
            NetworkProfile::Lossy {
                drop_probability: drop_p,
            }
        } else {
            NetworkProfile::Reliable
        },
        ..PlatformConfig::default()
    });
    let spec = p.kmeans_query(
        Predicate::True,
        400,
        3,
        &["age", "bmi"],
        heartbeats,
        vec![AggSpec::count_star()],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.1,
                ..ResilienceConfig::default()
            },
        )
        .unwrap();
    let total_weight = match &run.report.outcome {
        Some(QueryOutcome::KMeans { centroids, .. }) => centroids.total_weight(),
        _ => 0.0,
    };
    (
        run.report.completed,
        run.report.partitions_merged,
        total_weight,
    )
}

#[test]
fn connected_network_aligns_all_merged_partitions() {
    // With no loss, the combiner merges n aligned partitions and the
    // combined weight equals the merged snapshot cardinality (all of the
    // first n complete partitions contributed their ~100 points).
    let (completed, merged, weight) = run(1, 0.0, 5);
    assert!(completed);
    assert_eq!(merged, 4);
    // Weight within a few points of 4 x 100 (null-feature rows skipped).
    assert!(
        (weight - 400.0).abs() < 20.0,
        "combined weight {weight} should cover the whole snapshot"
    );
}

#[test]
fn lossy_network_still_produces_usable_knowledge() {
    // At 30% loss some partitions may stay on their own basis and be
    // excluded from the combination; the result must still exist and be
    // backed by at least one full partition.
    let (completed, merged, weight) = run(2, 0.3, 6);
    assert!(completed);
    assert!(merged >= 1);
    assert!(weight >= 80.0, "weight {weight}");
}

#[test]
fn alignment_improves_with_heartbeats() {
    // More synchronization rounds give re-basing more chances under loss:
    // combined weight (aligned mass) should not shrink with heartbeats.
    let (_, _, w2) = run(3, 0.2, 2);
    let (_, _, w8) = run(3, 0.2, 8);
    assert!(
        w8 >= w2 * 0.8,
        "alignment collapsed with more heartbeats: {w2} -> {w8}"
    );
}
