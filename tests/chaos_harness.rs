//! Tier-1 chaos smoke: a small deterministic campaign, a determinism
//! double-run, and replay of the shipped repro corpus.
//!
//! The full-depth sweep (`edgelet chaos --seeds 1000`) runs in CI's
//! nightly job; this harness keeps a fast gating slice of the same
//! machinery in the default test suite. See `docs/FAULTS.md`.

use edgelet_chaos::{load_dir, run_campaign, CampaignConfig, ChaosScenario};
use std::path::Path;

/// The gating sweep: both scenarios over a deterministic seed window,
/// every catalog plan exercised at least twice. The codebase must hold
/// every oracle invariant under every injected fault.
#[test]
fn smoke_campaign_is_clean() {
    let report = run_campaign(&CampaignConfig {
        seeds: 24,
        scenarios: ChaosScenario::ALL.to_vec(),
        shrink: true,
        shards: 1,
    })
    .unwrap();
    assert_eq!(report.runs, 48);
    assert!(
        report.failures.is_empty(),
        "chaos smoke found invariant violations:\n{}",
        report.summary()
    );
}

/// Identical configuration twice ⇒ bit-identical report: same failing
/// triples (none today) and same summary text. This is the property
/// that makes a CI-reported `(seed, plan, digest)` triple replayable on
/// a developer machine.
#[test]
fn campaign_is_deterministic() {
    let config = CampaignConfig {
        seeds: 8,
        scenarios: ChaosScenario::ALL.to_vec(),
        shrink: true,
        shards: 1,
    };
    let a = run_campaign(&config).unwrap();
    let b = run_campaign(&config).unwrap();
    assert_eq!(a.summary(), b.summary());
    let triples = |r: &edgelet_chaos::CampaignReport| -> Vec<String> {
        r.failures.iter().map(|f| f.triple()).collect()
    };
    assert_eq!(triples(&a), triples(&b));
}

/// Every shipped corpus entry must replay to the oracle verdict it was
/// recorded with. The pinned entries are regression tests for fixed
/// invariant violations — e.g. `grouping-dup-partials` pins the
/// combiner's partial-idempotence guard (a duplicated partial was once
/// ledger-charged twice), and `grouping-storage-torn-tail` pins
/// crash-restart durability (a WAL append torn mid-write must repair
/// to a byte-identical recovered run).
#[test]
fn shipped_corpus_replays_to_recorded_verdicts() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/chaos_corpus");
    let entries = load_dir(&dir).unwrap();
    assert!(entries.len() >= 4, "corpus unexpectedly small");
    assert!(
        entries.iter().any(|(_, e)| !e.storage.rules.is_empty()),
        "the corpus must carry at least one storage-fault pin"
    );
    for (name, entry) in entries {
        let report = entry.replay().unwrap();
        assert!(
            report.matches,
            "{name}: expected {:?}, oracles fired: {:?}",
            entry.expect, report.oracles
        );
    }
}
