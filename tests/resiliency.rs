//! Resiliency property across strategies: the query completes with a
//! valid result before the deadline under the presumed failure rate
//! (§2.2, §3.3 "Can a query always proceed despite the failures?").

use edgelet_core::prelude::*;

fn run_with(
    seed: u64,
    crash_p: f64,
    strategy: Strategy,
    presumed_p: f64,
) -> edgelet_core::platform::RunResult {
    let mut p = Platform::build(PlatformConfig {
        seed,
        contributors: 3_500,
        processors: 220,
        network: NetworkProfile::Reliable,
        processor_crash_probability: crash_p,
        crash_at_start: true,
        ..PlatformConfig::default()
    });
    let spec = p.grouping_query(
        Predicate::True,
        300,
        &[&["sex"], &[]],
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
    );
    p.run_query(
        &spec,
        &PrivacyConfig::none().with_max_tuples(50),
        &ResilienceConfig {
            strategy,
            failure_probability: presumed_p,
            target_validity: 0.999,
            ..ResilienceConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn overcollection_absorbs_presumed_failures() {
    // With a correctly presumed 25% crash rate, Overcollection stays
    // valid in the vast majority of seeds.
    let mut valid = 0;
    for seed in 0..10 {
        let run = run_with(seed, 0.25, Strategy::Overcollection, 0.25);
        assert!(run.plan.m >= 3, "p=0.25 must force overcollection");
        if run.report.valid {
            valid += 1;
        }
    }
    assert!(valid >= 9, "only {valid}/10 runs were valid");
}

#[test]
fn naive_execution_collapses_under_the_same_failures() {
    // The naive baseline needs every one of its single points of failure
    // to survive; at 25% crash probability it practically never does.
    let mut valid = 0;
    for seed in 0..10 {
        let run = run_with(seed, 0.25, Strategy::Naive, 0.25);
        assert_eq!(run.plan.m, 0);
        if run.report.valid {
            valid += 1;
        }
    }
    assert!(valid <= 3, "naive survived {valid}/10 runs at p=0.25");
}

#[test]
fn backup_strategy_also_survives() {
    let mut valid = 0;
    for seed in 0..8 {
        let run = run_with(seed, 0.2, Strategy::Backup, 0.2);
        assert!(run.plan.backup_degree >= 1);
        if run.report.valid {
            valid += 1;
        }
    }
    assert!(valid >= 7, "backup strategy survived only {valid}/8 runs");
}

#[test]
fn backup_costs_more_messages_than_overcollection_costs_partitions() {
    // The taxonomy of [14]: Backup buys strict validity with replicated
    // traffic; Overcollection buys performance with extra partitions.
    let over = run_with(100, 0.2, Strategy::Overcollection, 0.2);
    let backup = run_with(100, 0.2, Strategy::Backup, 0.2);
    assert!(over.plan.m > 0);
    assert_eq!(backup.plan.m, 0);
    // Backup duplicates every data-path message to all replicas.
    assert!(
        backup.report.messages_sent > over.report.messages_sent,
        "backup {} msgs vs overcollection {}",
        backup.report.messages_sent,
        over.report.messages_sent
    );
}

#[test]
fn active_backup_combiner_covers_combiner_crash() {
    // Force the primary combiner down in every seed by running many
    // seeds at high p and checking that valid overcollection runs exist
    // where the winning replica was the Active Backup (replica 1).
    let mut backup_wins = 0;
    for seed in 0..20 {
        let run = run_with(seed, 0.3, Strategy::Overcollection, 0.3);
        if run.report.completed && run.report.winning_replica >= 1 {
            backup_wins += 1;
            assert!(run.report.valid || run.report.partitions_complete < run.plan.n);
        }
    }
    assert!(
        backup_wins >= 1,
        "across 20 seeds at p=0.3 the Active Backup should win at least once"
    );
}

#[test]
fn deadline_is_respected() {
    for seed in 0..5 {
        let run = run_with(seed, 0.2, Strategy::Overcollection, 0.2);
        if let Some(t) = run.report.completion_secs {
            assert!(
                t <= run.plan.spec.deadline_secs,
                "completion {t} past deadline {}",
                run.plan.spec.deadline_secs
            );
        }
    }
}
