//! Exhaustive interleaving checks for the live runtime — the dynamic
//! counterpart of the Layer-3 static concurrency analysis
//! (`edgelet_analyze::concurrency`, see `docs/ANALYZER.md`).
//!
//! `edgelet_live::model::explore` turns the `yield_point` seams in the
//! striped transport and the query service into scheduler decision
//! points and re-runs a scripted scenario under *every* interleaving a
//! bounded depth-first sweep enumerates. Each run folds its observable
//! outcome into a byte-exact fingerprint, so two properties become
//! one-line assertions over the whole schedule space:
//!
//! * **deadlock freedom** — no schedule leaves unfinished threads
//!   unable to progress (`report.deadlock.is_none()`), and
//! * **schedule independence** — verdicts, result payloads, trace
//!   digests, and liability ledgers are byte-identical on every
//!   schedule (`report.fingerprints.len() == 1`).
//!
//! CI raises the schedule budget via `EDGELET_MODEL_SCHEDULES`; the
//! transport scenario below is exhaustive regardless (252 schedules).

use edgelet_core::{Platform, PlatformConfig};
use edgelet_live::model::{explore, ExploreOptions, RunSpec};
use edgelet_live::{QueryService, ServiceConfig, StripedTransport};
use edgelet_ml::AggSpec;
use edgelet_store::Predicate;
use edgelet_util::ids::DeviceId;
use edgelet_util::Payload;
use edgelet_wire::{Envelope, Transport};
use std::sync::Arc;

fn envelope(epoch: u64, to: u64, at: u64) -> Envelope {
    Envelope {
        epoch,
        from: DeviceId::new(0),
        to: DeviceId::new(to),
        seq: 1,
        sent_at_us: 0,
        deliver_at_us: at,
        payload: Payload::from(b"m".as_ref()),
    }
}

/// Two workers drive disjoint epochs through one shared transport:
/// register → submit ×2 → drain → retire, five scheduler decision
/// points per thread. The sweep is exhaustive — C(10,5) = 252
/// interleavings — and every one must leave each epoch's traffic
/// untouched by the other's.
#[test]
fn transport_epochs_are_isolated_under_every_interleaving() {
    let opts = ExploreOptions::for_tags(&[
        "transport.register_epoch",
        "transport.submit",
        "transport.drain",
        "transport.retire_epoch",
    ]);
    let report = explore(&opts, || {
        let transport = Arc::new(StripedTransport::new(8));
        let script = |epoch: u64| {
            let t = transport.clone();
            Box::new(move || {
                t.register_epoch(epoch, 1);
                let first = t.submit(envelope(epoch, 0, 10)).is_ok();
                let second = t.submit(envelope(epoch, 1, 20)).is_ok();
                let drained: Vec<(u64, usize, u64)> = t
                    .drain(epoch, 0)
                    .into_iter()
                    .map(|e| (e.epoch, e.to.index(), e.deliver_at_us))
                    .collect();
                t.retire_epoch(epoch);
                format!("e{epoch} ok={first}{second} drained={drained:?}")
            }) as Box<dyn FnOnce() -> String + Send>
        };
        let finale_transport = transport.clone();
        RunSpec {
            threads: vec![script(1), script(2)],
            finale: Box::new(move || {
                format!(
                    "rejected={} active={}",
                    finale_transport.rejected_unknown_epoch(),
                    finale_transport.active_epochs()
                )
            }),
        }
    });

    assert!(report.deadlock.is_none(), "deadlocked: {report:?}");
    assert!(report.complete, "schedule budget too small: {report:?}");
    assert_eq!(report.schedules, 252, "{report:?}");
    assert_eq!(report.replay_divergences, 0, "{report:?}");
    assert_eq!(
        report.fingerprints.len(),
        1,
        "outcome depends on the schedule: {report:?}"
    );
    let fp = report.fingerprints.iter().next().unwrap();
    // Each epoch drains exactly its own two envelopes, in submission
    // order; nothing crosses epochs and both epochs retire.
    assert!(
        fp.contains("e1 ok=truetrue drained=[(1, 0, 10), (1, 1, 20)]"),
        "{fp}"
    );
    assert!(
        fp.contains("e2 ok=truetrue drained=[(2, 0, 10), (2, 1, 20)]"),
        "{fp}"
    );
    assert!(fp.contains("rejected=0 active=0"), "{fp}");
}

/// Two full queries — different specs — admitted concurrently into one
/// `QueryService`, interleaved at the admission gate and the epoch
/// register/retire seams. Whatever order the scheduler picks, each
/// query's verdict, result bytes, trace digest, and liability ledger
/// must be the ones the spec alone determines (fingerprints exclude
/// the epoch number, which legitimately depends on admission order).
#[test]
fn service_verdicts_are_schedule_independent() {
    let mut opts = ExploreOptions::for_tags(&[
        "service.acquire",
        "transport.register_epoch",
        "transport.retire_epoch",
    ]);
    // Full query runs take real time; a stalled-looking runner may make
    // the driver schedule around it, so the sweep is bounded rather
    // than exactly C(6,3). Raise the stall patience so that path stays
    // rare.
    opts.max_schedules = opts.max_schedules.min(48);
    opts.stall_quanta = 50;
    let report = explore(&opts, || {
        let mut platform = Platform::build(PlatformConfig {
            seed: 11,
            contributors: 90,
            processors: 24,
            trace_capacity: 1 << 16,
            ..PlatformConfig::default()
        });
        let specs = [
            platform.grouping_query(
                Predicate::True,
                40,
                &[&["sex"], &[]],
                vec![AggSpec::count_star()],
            ),
            platform.grouping_query(
                Predicate::True,
                30,
                &[&[], &[]],
                vec![AggSpec::count_star()],
            ),
        ];
        let privacy = edgelet_query::PrivacyConfig::none().with_max_tuples(20);
        let resilience = edgelet_query::ResilienceConfig {
            failure_probability: 0.1,
            target_validity: 0.99,
            strategy: edgelet_query::Strategy::Backup,
            max_overcollection: 64,
            max_backups: 4,
        };
        let service = Arc::new(QueryService::new(
            platform,
            ServiceConfig {
                workers: 2,
                max_concurrent: 2,
                mailbox_capacity: 4096,
            },
        ));
        let threads = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let service = service.clone();
                let privacy = privacy.clone();
                let resilience = resilience.clone();
                Box::new(
                    move || match service.submit(&spec, &privacy, &resilience, None) {
                        Ok(outcome) => format!(
                            "ok{i} succeeded={} digest={:?} payload={:?} ledger={:?}",
                            outcome.succeeded(),
                            outcome.run.trace_digest,
                            outcome.run.report.result_payload,
                            outcome.run.report.ledger.entries(),
                        ),
                        Err(e) => format!("err{i}: {e}"),
                    },
                ) as Box<dyn FnOnce() -> String + Send>
            })
            .collect();
        RunSpec {
            threads,
            finale: Box::new(move || {
                let rejected = service.transport().rejected_unknown_epoch();
                let active = service.transport().active_epochs();
                service.shutdown();
                format!("rejected={rejected} active={active}")
            }),
        }
    });

    assert!(report.deadlock.is_none(), "deadlocked: {report:?}");
    assert!(
        report.schedules > 1,
        "the sweep must cover more than one interleaving: {report:?}"
    );
    assert_eq!(
        report.fingerprints.len(),
        1,
        "verdict or ledger depends on the schedule: {:#?}",
        report.fingerprints
    );
    let fp = report.fingerprints.iter().next().unwrap();
    assert!(fp.contains("ok0 succeeded=true"), "{fp}");
    assert!(fp.contains("ok1 succeeded=true"), "{fp}");
    assert!(fp.contains("rejected=0 active=0"), "{fp}");
}

/// The admission gate itself under contention: `max_concurrent = 1`
/// and two competing submissions. Which thread wins legitimately
/// depends on the schedule — but *some* thread must always win, the
/// loser must always see `AtCapacity`, and no schedule may deadlock
/// the gate. This pins the intended nondeterminism boundary: admission
/// order is scheduling; verdicts are not.
#[test]
fn admission_contention_never_deadlocks_and_always_admits_exactly_one() {
    let opts = ExploreOptions::for_tags(&["service.acquire"]);
    let report = explore(&opts, || {
        let mut platform = Platform::build(PlatformConfig {
            contributors: 6,
            processors: 4,
            ..PlatformConfig::default()
        });
        // A probe spec that cannot be planned (zero cardinality): the
        // winner fails fast inside the gate without executing anything,
        // so the scenario isolates admission-control interleavings.
        let probe =
            platform.grouping_query(Predicate::True, 0, &[&[], &[]], vec![AggSpec::count_star()]);
        let service = Arc::new(QueryService::new(
            platform,
            ServiceConfig {
                workers: 1,
                max_concurrent: 1,
                mailbox_capacity: 64,
            },
        ));
        let threads = (0..2)
            .map(|i: usize| {
                let service = service.clone();
                let spec = probe.clone();
                Box::new(move || {
                    let privacy = edgelet_query::PrivacyConfig::none();
                    let resilience = edgelet_query::ResilienceConfig::default();
                    match service.submit(&spec, &privacy, &resilience, None) {
                        Ok(_) => format!("t{i}=admitted"),
                        Err(edgelet_live::SubmitError::AtCapacity { .. }) => {
                            format!("t{i}=at-capacity")
                        }
                        Err(_) => format!("t{i}=refused"),
                    }
                }) as Box<dyn FnOnce() -> String + Send>
            })
            .collect();
        let finale_service = service.clone();
        RunSpec {
            threads,
            finale: Box::new(move || format!("in_flight={}", finale_service.in_flight())),
        }
    });

    assert!(report.deadlock.is_none(), "deadlocked: {report:?}");
    assert!(report.complete, "{report:?}");
    assert!(report.schedules >= 2, "{report:?}");
    for fp in &report.fingerprints {
        // Whoever wins the race, the slot always reaches planning (and
        // is refused there), the loser sees the gate, and the gate
        // fully releases afterwards — no schedule leaks a slot.
        assert!(fp.contains("in_flight=0"), "{fp}");
        assert!(!fp.contains("admitted"), "{fp}");
        assert!(fp.contains("refused"), "{fp}");
    }
}
