//! Integration tests for the `edgelet-analyze` static analyzer: the
//! semantic passes catch seeded violations of every property family the
//! paper's guarantees rest on, and the source lint keeps the workspace
//! free of nondeterminism.

use edgelet_analyze::{analyze, has_errors, render_json, AnalyzeOptions};
use edgelet_core::prelude::*;
use edgelet_core::query::{OperatorRole, QueryPlan};
use std::path::Path;

/// Plans the reference scenario: a capped, vertically-separated
/// Grouping-Sets survey under Overcollection.
fn planned_world() -> (QueryPlan, PrivacyConfig, ResilienceConfig) {
    let mut platform = Platform::build(PlatformConfig {
        seed: 11,
        contributors: 4_000,
        processors: 400,
        network: NetworkProfile::Reliable,
        ..PlatformConfig::default()
    });
    let spec = platform.grouping_query(
        Predicate::True,
        400,
        &[&["sex"], &[]],
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggKind::Avg, "bmi"),
            AggSpec::over(AggKind::Avg, "systolic_bp"),
        ],
    );
    let privacy = PrivacyConfig::none()
        .with_max_tuples(100)
        .separate("bmi", "systolic_bp");
    let resilience = ResilienceConfig {
        strategy: Strategy::Overcollection,
        failure_probability: 0.15,
        ..ResilienceConfig::default()
    };
    let plan = platform.plan_query(&spec, &privacy, &resilience).unwrap();
    (plan, privacy, resilience)
}

fn codes_of(
    plan: &QueryPlan,
    privacy: &PrivacyConfig,
    resilience: &ResilienceConfig,
) -> Vec<&'static str> {
    analyze(plan, privacy, resilience, &AnalyzeOptions::default())
        .iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn planner_output_passes_every_semantic_pass() {
    let (plan, privacy, resilience) = planned_world();
    let findings = analyze(&plan, &privacy, &resilience, &AnalyzeOptions::default());
    assert!(!has_errors(&findings), "{findings:?}");
}

#[test]
fn missing_computer_is_a_structure_error() {
    let (mut plan, privacy, resilience) = planned_world();
    let victim = plan
        .operators
        .iter()
        .position(|o| matches!(o.role, OperatorRole::Computer { .. }))
        .unwrap();
    plan.operators.remove(victim);
    assert!(codes_of(&plan, &privacy, &resilience).contains(&"E002"));
}

#[test]
fn colocated_separated_pair_is_a_privacy_error() {
    let (mut plan, privacy, resilience) = planned_world();
    assert!(plan.attr_groups.len() >= 2, "separation must split groups");
    let merged: Vec<String> = plan.attr_groups.concat();
    plan.attr_groups = vec![merged];
    assert!(codes_of(&plan, &privacy, &resilience).contains(&"E010"));
}

#[test]
fn quota_over_cap_is_a_horizontal_cap_error() {
    let (mut plan, privacy, resilience) = planned_world();
    plan.partition_quota = 101; // cap is 100
    assert!(codes_of(&plan, &privacy, &resilience).contains(&"E011"));
}

#[test]
fn stripped_overcollection_is_a_resiliency_error() {
    let (mut plan, privacy, resilience) = planned_world();
    assert!(
        plan.m > 0,
        "the planner must have provisioned spare partitions"
    );
    plan.m = 0;
    assert!(codes_of(&plan, &privacy, &resilience).contains(&"E020"));
}

#[test]
fn operator_concentration_is_a_liability_error() {
    let (mut plan, privacy, resilience) = planned_world();
    let d0 = plan.operators[0].device;
    for op in plan.operators.iter_mut() {
        if matches!(op.role, OperatorRole::Combiner { .. }) {
            op.device = d0;
        }
    }
    assert!(codes_of(&plan, &privacy, &resilience).contains(&"E030"));
}

#[test]
fn sub_floor_deadline_is_a_deadline_error() {
    let (mut plan, privacy, resilience) = planned_world();
    plan.spec.deadline_secs = 0.5;
    assert!(codes_of(&plan, &privacy, &resilience).contains(&"E040"));
}

#[test]
fn diagnostics_render_as_json_with_stable_codes() {
    let (mut plan, privacy, resilience) = planned_world();
    plan.spec.deadline_secs = 0.5;
    plan.partition_quota = 101;
    let findings = analyze(&plan, &privacy, &resilience, &AnalyzeOptions::default());
    let json = render_json(&findings);
    assert!(json.contains("\"code\":\"E040\""), "{json}");
    assert!(json.contains("\"code\":\"E011\""), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
    assert!(json.trim_start().starts_with('['), "{json}");
    assert!(json.trim_end().ends_with(']'), "{json}");
}

#[test]
fn preflight_denies_a_broken_plan_and_passes_a_sound_one() {
    let (plan, _, _) = planned_world();
    assert!(edgelet_analyze::preflight(&plan).is_ok());
    let mut broken = plan;
    broken.spec.deadline_secs = 0.5;
    let err = edgelet_analyze::preflight(&broken).unwrap_err();
    assert!(
        err.to_string().contains("E040"),
        "preflight should carry the diagnostic code: {err}"
    );
}

#[test]
fn group_commit_knobs_are_checked_against_deadline_and_cadence() {
    use edgelet_analyze::check_storage_config;

    let dir = std::env::temp_dir().join(format!(
        "edgelet-static-analysis-storage-{}",
        std::process::id()
    ));
    // A commit window the wall deadline cannot absorb is W143; segments
    // smaller than one checkpoint interval's churn are W144.
    let found = check_storage_config(true, Some(&dir), 8, false, 50, Some(120), 1024);
    let codes: Vec<&str> = found.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec!["W143", "W144"], "{found:?}");
    assert!(!has_errors(&found), "both are warnings, not errors");
    // Defaults (window off, 4 MiB segments) stay quiet.
    let found = check_storage_config(true, Some(&dir), 8, false, 0, Some(120), 4 << 20);
    assert!(found.is_empty(), "{found:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workspace_sources_are_lint_clean() {
    // The root package's manifest dir is the workspace root. This runs
    // every source layer: lint, the Layer-3 concurrency pass, and the
    // stale-suppression audit.
    let findings = edgelet_analyze::analyze_sources(Path::new(env!("CARGO_MANIFEST_DIR")));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn concurrency_pass_catches_a_seeded_lock_order_cycle() {
    // Two paths acquire the same two lock classes in opposite orders —
    // the deadlock shape E130 exists to refuse. The fixture never
    // exists on disk; `tests/` is outside the analyzed tree.
    let fixture = "\
pub struct Pair { accounts: std::sync::Mutex<u64>, ledger: std::sync::Mutex<u64> }
impl Pair {
    pub fn forward(&self) {
        let _a = self.accounts.lock().unwrap();
        let _b = self.ledger.lock().unwrap();
    }
    pub fn backward(&self) {
        let _b = self.ledger.lock().unwrap();
        let _a = self.accounts.lock().unwrap();
    }
}
";
    let findings =
        edgelet_analyze::concurrency::check_source("crates/live/src/fixture.rs", "live", fixture);
    let cycle = findings
        .iter()
        .find(|d| d.code == "E130")
        .unwrap_or_else(|| panic!("expected E130 in {findings:#?}"));
    assert!(
        cycle.message.contains("accounts") && cycle.message.contains("ledger"),
        "the cycle report must name both lock classes: {cycle:?}"
    );

    // A consistent global order is clean.
    let consistent = fixture.replace(
        "let _b = self.ledger.lock().unwrap();\n        let _a = self.accounts.lock().unwrap();",
        "let _a = self.accounts.lock().unwrap();\n        let _b = self.ledger.lock().unwrap();",
    );
    let findings = edgelet_analyze::concurrency::check_source(
        "crates/live/src/fixture.rs",
        "live",
        &consistent,
    );
    assert!(!findings.iter().any(|d| d.code == "E130"), "{findings:#?}");
}

#[test]
fn concurrency_pass_catches_a_seeded_lock_held_across_send() {
    let fixture = "\
pub fn flush(state: &std::sync::Mutex<Vec<u8>>, tx: &std::sync::mpsc::Sender<u8>) {
    let guard = state.lock().unwrap();
    for b in guard.iter() {
        tx.send(*b).unwrap();
    }
}
";
    let findings =
        edgelet_analyze::concurrency::check_source("crates/live/src/fixture.rs", "live", fixture);
    let held = findings
        .iter()
        .find(|d| d.code == "E132")
        .unwrap_or_else(|| panic!("expected E132 in {findings:#?}"));
    assert!(
        held.location.contains("fixture.rs:4"),
        "the finding must point at the send under the guard: {held:?}"
    );

    // Dropping the guard before sending is clean.
    let released = "\
pub fn flush(state: &std::sync::Mutex<Vec<u8>>, tx: &std::sync::mpsc::Sender<u8>) {
    let copied = { state.lock().unwrap().clone() };
    for b in copied.iter() {
        tx.send(*b).unwrap();
    }
}
";
    let findings =
        edgelet_analyze::concurrency::check_source("crates/live/src/fixture.rs", "live", released);
    assert!(!findings.iter().any(|d| d.code == "E132"), "{findings:#?}");
}

#[test]
fn net_config_pass_catches_seeded_deployment_mistakes() {
    use edgelet_analyze::{check_net_config, NetSurface};

    // A well-formed daemon surface is clean.
    let sound = NetSurface {
        listen: Some("uds:/tmp/edgelet-fixture.sock"),
        expected_workers: Some(2),
        handshake_timeout_ms: Some(10_000),
        deadline_secs: Some(600.0),
        ..NetSurface::default()
    };
    assert!(check_net_config(&sound).is_empty());

    // An unresolvable listen address is E150, an error.
    let broken = NetSurface {
        listen: Some("ipc:/tmp/edgelet-fixture.sock"),
        ..NetSurface::default()
    };
    let found = check_net_config(&broken);
    assert!(has_errors(&found), "{found:?}");
    assert!(found.iter().any(|d| d.code == "E150"), "{found:?}");

    // TCP reconnect with default backoff bounds is W151, a warning.
    let lazy = NetSurface {
        connect: Some("tcp:10.0.0.2:7000"),
        ..NetSurface::default()
    };
    let found = check_net_config(&lazy);
    assert!(!has_errors(&found), "{found:?}");
    assert!(found.iter().any(|d| d.code == "W151"), "{found:?}");

    // A handshake timeout beyond the query deadline is W152.
    let greedy = NetSurface {
        listen: Some("uds:/tmp/edgelet-fixture.sock"),
        expected_workers: Some(2),
        handshake_timeout_ms: Some(700_000),
        deadline_secs: Some(600.0),
        ..NetSurface::default()
    };
    let found = check_net_config(&greedy);
    assert!(found.iter().any(|d| d.code == "W152"), "{found:?}");

    // The codes are registered in the stable registry, and the findings
    // render through the same JSON surface as every other pass.
    for code in ["E150", "W151", "W152"] {
        assert!(
            edgelet_analyze::diagnostic::codes::ALL
                .iter()
                .any(|(c, _, _)| *c == code),
            "{code} must be registered"
        );
    }
    let json = render_json(&check_net_config(&greedy));
    assert!(json.contains("\"code\":\"W152\""), "{json}");
}

#[test]
fn lint_catches_wall_clock_in_sim_sources() {
    // This fixture never exists on disk: `tests/` is outside the linted
    // tree, so spelling the needle out here is safe.
    let fixture = "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let findings = edgelet_analyze::lint::lint_source("crates/sim/src/fixture.rs", "sim", fixture);
    assert!(findings.iter().any(|d| d.code == "E102"), "{findings:#?}");
    assert!(
        findings[0].location.contains("fixture.rs:2"),
        "line numbers must survive stripping: {findings:#?}"
    );

    // The same source under an allow directive with a reason is accepted.
    let allowed = format!(
        "// lint: allow(E102 fixture demonstrating suppression)\n{}",
        fixture.replace('\n', " ")
    );
    let findings = edgelet_analyze::lint::lint_source("crates/sim/src/fixture.rs", "sim", &allowed);
    assert!(findings.is_empty(), "{findings:#?}");

    // Bench sources may read wall clocks, and so may the socket
    // runtime (IO deadlines and reconnect backoff are wall-clock by
    // nature; its virtual-time discipline is held by the parity tests).
    let findings = edgelet_analyze::lint::lint_source("crates/bench/src/lib.rs", "bench", fixture);
    assert!(findings.is_empty(), "{findings:#?}");
    let findings = edgelet_analyze::lint::lint_source("crates/net/src/conn.rs", "net", fixture);
    assert!(findings.is_empty(), "{findings:#?}");
}
