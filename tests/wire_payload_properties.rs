//! Properties the zero-copy payload fabric must preserve.
//!
//! The `Payload` refactor changed how message bytes are owned (one
//! `Arc`-backed buffer shared across recipients) without changing what
//! the bytes *are*. These tests pin that invariant from two sides:
//!
//! * every protocol message variant survives encode → decode unchanged,
//!   both as raw wire bytes and through the `Sealer` payload path
//!   (plaintext and AEAD-sealed), including when the payload is fanned
//!   out with `share()`;
//! * the simulator trace of a whole-platform run is stable: same seed,
//!   same trace digest (see `tests/determinism_and_scenarios.rs` for the
//!   companion result-fingerprint check).

use edgelet_exec::messages::Msg;
use edgelet_exec::roles::Sealer;
use edgelet_ml::aggregate::PartialAgg;
use edgelet_ml::distributed::CentroidSet;
use edgelet_ml::grouping::GroupedPartial;
use edgelet_ml::Matrix;
use edgelet_store::value::GroupKeyPart;
use edgelet_store::{CmpOp, Predicate, Row, Value};
use edgelet_util::ids::{DeviceId, PartitionId, QueryId};
use edgelet_wire::{from_bytes, to_bytes};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

// ---------------------------------------------------------------------
// A hand-rolled `Strategy` for protocol messages: the vendored proptest
// has no combinators, but its `Strategy` trait is one method, so the
// generator is a recursive-descent builder over the message grammar.
// ---------------------------------------------------------------------

fn finite_f64(rng: &mut TestRng) -> f64 {
    loop {
        // Raw bit patterns exercise the codec's fixed-width float path
        // (negative zero, subnormals, infinities) — only NaN is excluded,
        // because message equality is `PartialEq` over floats.
        let f = match rng.below(4) {
            0 => f64::from_bits(rng.next_u64()),
            1 => rng.unit_f64() * 200.0 - 100.0,
            2 => rng.next_u64() as i64 as f64,
            _ => 0.0,
        };
        if !f.is_nan() {
            return f;
        }
    }
}

fn value(rng: &mut TestRng) -> Value {
    match rng.below(5) {
        0 => Value::Null,
        1 => Value::Int(rng.next_u64() as i64),
        2 => Value::Float(finite_f64(rng)),
        3 => Value::Text(text(rng)),
        _ => Value::Bool(rng.below(2) == 0),
    }
}

fn text(rng: &mut TestRng) -> String {
    ".*".generate(rng)
}

fn row(rng: &mut TestRng) -> Row {
    let n = rng.below(4);
    Row::new((0..n).map(|_| value(rng)).collect())
}

fn rows(rng: &mut TestRng) -> Vec<Row> {
    let n = rng.below(5);
    (0..n).map(|_| row(rng)).collect()
}

fn columns(rng: &mut TestRng) -> Vec<String> {
    let n = rng.below(4);
    (0..n).map(|_| text(rng)).collect()
}

fn cmp_op(rng: &mut TestRng) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][rng.below(6)]
}

fn predicate(rng: &mut TestRng, depth: usize) -> Predicate {
    let leaf_only = depth == 0;
    match rng.below(if leaf_only { 3 } else { 6 }) {
        0 => Predicate::True,
        1 => Predicate::Cmp {
            column: text(rng),
            op: cmp_op(rng),
            value: value(rng),
        },
        2 => Predicate::InList {
            column: text(rng),
            values: (0..rng.below(4)).map(|_| value(rng)).collect(),
        },
        3 => Predicate::Not(Box::new(predicate(rng, depth - 1))),
        4 => Predicate::And(
            Box::new(predicate(rng, depth - 1)),
            Box::new(predicate(rng, depth - 1)),
        ),
        _ => Predicate::Or(
            Box::new(predicate(rng, depth - 1)),
            Box::new(predicate(rng, depth - 1)),
        ),
    }
}

fn group_key_part(rng: &mut TestRng) -> GroupKeyPart {
    match rng.below(4) {
        0 => GroupKeyPart::Null,
        1 => GroupKeyPart::Int(rng.next_u64() as i64),
        2 => GroupKeyPart::Text(text(rng)),
        _ => GroupKeyPart::Bool(rng.below(2) == 0),
    }
}

fn partial_agg(rng: &mut TestRng) -> PartialAgg {
    match rng.below(6) {
        0 => PartialAgg::Count(rng.next_u64()),
        1 => PartialAgg::Sum(finite_f64(rng)),
        2 => PartialAgg::Min((rng.below(2) == 0).then(|| value(rng))),
        3 => PartialAgg::Max((rng.below(2) == 0).then(|| value(rng))),
        4 => PartialAgg::Avg {
            sum: finite_f64(rng),
            count: rng.next_u64(),
        },
        _ => PartialAgg::Moments {
            sum: finite_f64(rng),
            sum_sq: finite_f64(rng),
            count: rng.next_u64(),
        },
    }
}

fn grouped_partial(rng: &mut TestRng) -> GroupedPartial {
    let mut partial = GroupedPartial::default();
    for _ in 0..rng.below(4) {
        let set_id = rng.below(4) as u32;
        let key: Vec<GroupKeyPart> = (0..rng.below(3)).map(|_| group_key_part(rng)).collect();
        let states: Vec<PartialAgg> = (0..rng.below(3)).map(|_| partial_agg(rng)).collect();
        partial.groups.insert((set_id, key), states);
    }
    partial
}

fn centroid_set(rng: &mut TestRng) -> CentroidSet {
    let k = 1 + rng.below(4);
    let dim = 1 + rng.below(3);
    let mut centroids = Matrix::with_capacity(dim, k);
    let mut scratch = Vec::with_capacity(dim);
    for _ in 0..k {
        scratch.clear();
        scratch.extend((0..dim).map(|_| finite_f64(rng)));
        centroids.push_row(&scratch);
    }
    let weights = (0..k).map(|_| rng.unit_f64() * 100.0).collect();
    CentroidSet::new(centroids, weights).expect("arity is consistent by construction")
}

/// Generates every `Msg` variant with arbitrary field contents.
struct AnyMsg;

impl Strategy for AnyMsg {
    type Value = Msg;

    fn generate(&self, rng: &mut TestRng) -> Msg {
        let query = QueryId::new(rng.next_u64());
        match rng.below(9) {
            0 => Msg::ContributeRequest {
                query,
                filter: predicate(rng, 2),
                columns: columns(rng),
            },
            1 => Msg::Contribution {
                query,
                rows: rows(rng),
            },
            2 => Msg::PartitionData {
                query,
                partition: PartitionId::new(rng.next_u64()),
                attr_group: rng.next_u64() as u32,
                columns: columns(rng),
                rows: rows(rng),
                complete: rng.below(2) == 0,
            },
            3 => Msg::GroupingPartial {
                query,
                partition: PartitionId::new(rng.next_u64()),
                attr_group: rng.next_u64() as u32,
                partial: grouped_partial(rng),
                tuples: rng.next_u64(),
                complete: rng.below(2) == 0,
            },
            4 => Msg::Knowledge {
                query,
                partition: PartitionId::new(rng.next_u64()),
                round: rng.next_u64() as u32,
                seed_origin: PartitionId::new(rng.next_u64()),
                centroids: centroid_set(rng),
            },
            5 => Msg::KMeansFinal {
                query,
                partition: PartitionId::new(rng.next_u64()),
                seed_origin: PartitionId::new(rng.next_u64()),
                centroids: centroid_set(rng),
                per_cluster: grouped_partial(rng),
                tuples: rng.next_u64(),
                complete: rng.below(2) == 0,
            },
            6 => Msg::FinalResult {
                query,
                payload: (0..rng.below(64)).map(|_| rng.next_u64() as u8).collect(),
                partitions_merged: rng.next_u64(),
                partitions_complete: rng.next_u64(),
                replica: rng.next_u64() as u32,
            },
            7 => Msg::Ping {
                query,
                from_rank: rng.next_u64() as u32,
            },
            _ => Msg::Pong {
                query,
                from_rank: rng.next_u64() as u32,
            },
        }
    }
}

proptest! {
    /// Raw wire bytes: encode → decode is the identity on every variant,
    /// and re-encoding the decoded message reproduces the same bytes.
    #[test]
    fn prop_msg_wire_roundtrip(msg in AnyMsg) {
        let bytes = to_bytes(&msg);
        let back: Msg = from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(to_bytes(&back), bytes, "encoding must be canonical");
    }

    /// The network path: `Sealer::wrap` produces one shareable `Payload`;
    /// every shared handle (the fan-out case) opens back to the original
    /// message, in both plaintext and AEAD-sealed modes.
    #[test]
    fn prop_sealer_payload_roundtrip(msg in AnyMsg, sealed in 0usize..2) {
        let root = [0x42u8; 32];
        let mut sealer = Sealer::new(sealed == 1, &root, QueryId::new(7), DeviceId::new(3));
        let payload = sealer.wrap(&msg);
        let shared = payload.share();
        prop_assert_eq!(
            payload.as_slice().as_ptr(),
            shared.as_slice().as_ptr(),
            "fan-out must not copy the bytes"
        );
        prop_assert_eq!(&sealer.unwrap(&payload).unwrap(), &msg);
        prop_assert_eq!(&sealer.unwrap(&shared).unwrap(), &msg);
    }
}
