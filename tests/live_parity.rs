//! Cross-engine parity: the live runtime and the simulator must be
//! observationally identical.
//!
//! For a corpus of seeded chaos-scenario worlds (Backup-strategy
//! grouping and Overcollection K-Means), the same query executed on
//! the simulator (`Platform::run_query`) and on the live runtime
//! (`edgelet_live::run_live_query`, worker threads + striped transport)
//! must produce:
//!
//! * **byte-identical query results** (`ExecutionReport::result_payload`),
//! * **equivalent liability ledgers** (identical per-device entries),
//! * **identical trace digests** (the strongest receipt: every traced
//!   protocol event matches, in order), and
//! * **zero chaos-oracle violations** on the live trace — the protocol
//!   invariants audited on simulator runs hold verbatim on live runs.
//!
//! Plus the resilience drill: crash a combiner primary mid-flight on
//! both engines and require the Active Backup to take over and deliver
//! before the deadline.

use edgelet_chaos::{check_run, ChaosScenario, FaultPlan, Session};
use edgelet_core::{Platform, PlatformConfig, RunResult};
use edgelet_live::{
    run_live_query, LiveRun, LiveRunOptions, QueryService, ServiceConfig, StripedTransport,
};
use edgelet_ml::AggSpec;
use edgelet_privacy::analyze_plan;
use edgelet_sim::{SimTime, TraceEvent};
use edgelet_store::Predicate;
use std::sync::Arc;

/// Seeds per scenario; 2 scenarios × 8 seeds = the 16-world corpus.
const SEEDS_PER_SCENARIO: u64 = 8;

/// Runs the session's query on the live runtime and packages the result
/// exactly like `RunResult` so the oracles can audit it.
fn run_on_live(session: &Session, workers: usize, epoch: u64) -> (LiveRun, RunResult) {
    let transport = Arc::new(StripedTransport::new(4096));
    transport.register_epoch(epoch, workers);
    let live = run_live_query(
        session.platform(),
        session.spec(),
        session.privacy(),
        session.resilience(),
        transport.clone(),
        &LiveRunOptions::new(workers, epoch),
        None,
    )
    .expect("live execution");
    assert_eq!(
        transport.rejected_unknown_epoch(),
        0,
        "a single-epoch run must never produce cross-epoch traffic"
    );
    let as_result = RunResult {
        plan: live.plan.clone(),
        report: live.report.clone(),
        exposure: analyze_plan(&live.plan),
        trace_digest: live.trace_digest,
        trace: live.trace.clone(),
    };
    (live, as_result)
}

fn assert_parity(scenario: ChaosScenario, seed: u64, workers: usize) {
    let sim = scenario
        .open(seed, FaultPlan::new())
        .run()
        .expect("simulator execution");
    let session = scenario.open(seed, FaultPlan::new());
    let (live, live_result) = run_on_live(&session, workers, 1 + seed);
    let ctx = format!("scenario={} seed={seed} workers={workers}", scenario.name());

    // Byte-identical results.
    assert_eq!(
        live.report.result_payload, sim.result.report.result_payload,
        "result payload bytes diverged ({ctx})"
    );
    // Equivalent liability ledgers: identical per-device entries.
    assert_eq!(
        live.report.ledger.entries(),
        sim.result.report.ledger.entries(),
        "liability ledgers diverged ({ctx})"
    );
    // Identical traces (digest covers every recorded protocol event).
    assert_eq!(
        live.trace_digest, sim.result.trace_digest,
        "trace digests diverged ({ctx})"
    );
    // Scalar report parity.
    assert_eq!(live.report.completed, sim.result.report.completed, "{ctx}");
    assert_eq!(live.report.valid, sim.result.report.valid, "{ctx}");
    assert_eq!(
        live.report.messages_sent, sim.result.report.messages_sent,
        "{ctx}"
    );
    assert_eq!(
        live.report.bytes_sent, sim.result.report.bytes_sent,
        "{ctx}"
    );
    assert_eq!(
        live.report.completion_secs, sim.result.report.completion_secs,
        "{ctx}"
    );
    // The live trace passes the same protocol oracles as the simulator's.
    let violations = check_run(&session.package(live_result));
    assert!(
        violations.is_empty(),
        "chaos oracles flagged the live run ({ctx}): {violations:?}"
    );
}

#[test]
fn grouping_worlds_match_across_engines() {
    for seed in 0..SEEDS_PER_SCENARIO {
        // Alternate worker counts so both the single-worker and the
        // multi-worker barrier paths are exercised across the corpus.
        let workers = if seed % 2 == 0 { 1 } else { 4 };
        assert_parity(ChaosScenario::Grouping, seed, workers);
    }
}

#[test]
fn kmeans_worlds_match_across_engines() {
    for seed in 0..SEEDS_PER_SCENARIO {
        let workers = if seed % 2 == 0 { 4 } else { 1 };
        assert_parity(ChaosScenario::KMeans, seed, workers);
    }
}

/// Crash-one-worker resilience drill: kill a Data Processor primary
/// mid-flight on the live runtime and require the Active Backup chain
/// to take over and still deliver a complete, valid result before the
/// deadline.
#[test]
fn crashed_primary_is_covered_by_backup_before_deadline() {
    let session = ChaosScenario::Grouping.open(0, FaultPlan::new());
    let plan = session.plan().expect("planning is deterministic");
    let victim = plan
        .operators
        .iter()
        .find(|o| o.role.is_data_processor() && !o.backups.is_empty())
        .expect("Backup strategy replicates every Data Processor")
        .device;

    let transport = Arc::new(StripedTransport::new(4096));
    transport.register_epoch(7, 4);
    let mut opts = LiveRunOptions::new(4, 7);
    // Fault-free completion is ~0.05s virtual; crashing at 0.01s lands
    // squarely before the primary can emit its partial.
    opts.crash_script = vec![(victim, SimTime::from_micros(10_000))];
    let live = run_live_query(
        session.platform(),
        session.spec(),
        session.privacy(),
        session.resilience(),
        transport,
        &opts,
        None,
    )
    .expect("live execution");

    let crashed = live
        .trace
        .iter()
        .any(|r| matches!(r.event, TraceEvent::Crashed { device, .. } if device == victim));
    assert!(crashed, "the scripted crash must appear in the trace");
    assert!(
        live.report.completed,
        "backup takeover must complete the query"
    );
    assert!(live.report.valid, "the recovered result must stay valid");
    let done = live
        .report
        .completion_secs
        .expect("completed runs are timed");
    assert!(
        done <= session.spec().deadline_secs,
        "takeover must land before the deadline ({done} vs {})",
        session.spec().deadline_secs
    );
    // Losing a primary costs time: completion is strictly later than the
    // fault-free run's (otherwise the backup never actually took over).
    let baseline = ChaosScenario::Grouping
        .open(0, FaultPlan::new())
        .run()
        .expect("fault-free baseline");
    assert!(
        done > baseline.result.report.completion_secs.unwrap(),
        "recovery must visibly route through the backup chain"
    );
}

/// Concurrent serving: three queries through one [`QueryService`] over
/// a shared device pool, each in its own epoch. Per-query isolation is
/// proven by determinism — all three runs of the same spec produce
/// byte-identical results, which cross-epoch interference (a stray
/// envelope, a perturbed RNG stream) would break — and by the
/// transport's cross-epoch rejection counter staying at zero.
#[test]
fn service_serves_three_concurrent_queries_with_epoch_isolation() {
    let mut platform = Platform::build(PlatformConfig {
        seed: 11,
        contributors: 90,
        processors: 24,
        fault_plan: Some(FaultPlan::new()),
        trace_capacity: 1 << 16,
        ..PlatformConfig::default()
    });
    let spec = platform.grouping_query(
        Predicate::True,
        40,
        &[&["sex"], &[]],
        vec![AggSpec::count_star()],
    );
    let privacy = edgelet_query::PrivacyConfig::none().with_max_tuples(20);
    let resilience = edgelet_query::ResilienceConfig {
        failure_probability: 0.1,
        target_validity: 0.99,
        strategy: edgelet_query::Strategy::Backup,
        max_overcollection: 64,
        max_backups: 4,
    };
    let service = QueryService::new(
        platform,
        ServiceConfig {
            workers: 2,
            max_concurrent: 3,
            mailbox_capacity: 4096,
        },
    );

    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    service.submit(
                        &spec,
                        &privacy,
                        &resilience,
                        Some(std::time::Duration::from_secs(120)),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let outcomes: Vec<_> = outcomes
        .into_iter()
        .map(|o| o.expect("all three submissions fit under max_concurrent"))
        .collect();
    assert_eq!(outcomes.len(), 3);
    let mut epochs: Vec<u64> = outcomes.iter().map(|o| o.epoch).collect();
    epochs.sort_unstable();
    epochs.dedup();
    assert_eq!(epochs.len(), 3, "each query must run in its own epoch");
    for o in &outcomes {
        assert!(o.succeeded(), "epoch {} failed: {:?}", o.epoch, o.run.exit);
    }
    // Determinism across concurrent executions of the same spec: any
    // cross-epoch leakage would perturb at least one of these.
    for o in &outcomes[1..] {
        assert_eq!(
            o.run.report.result_payload,
            outcomes[0].run.report.result_payload
        );
        assert_eq!(o.run.trace_digest, outcomes[0].run.trace_digest);
        assert_eq!(
            o.run.report.ledger.entries(),
            outcomes[0].run.report.ledger.entries()
        );
    }
    assert_eq!(
        service.transport().rejected_unknown_epoch(),
        0,
        "no envelope may cross into another query's epoch"
    );
    // Retired epochs refuse traffic: the structural isolation mechanism.
    assert_eq!(service.transport().active_epochs(), 0);
    service.shutdown();
}
