//! The analytic cost model (`edgelet_query::cost`) vs the simulator's
//! measured message counts.

use edgelet_core::prelude::*;
use edgelet_core::query::estimate;

fn run(strategy: Strategy) -> (u64, edgelet_core::query::CostEstimate, u64) {
    let mut p = Platform::build(PlatformConfig {
        seed: 31,
        contributors: 2_000,
        processors: 260,
        network: NetworkProfile::Reliable, // loss-free: counts are exact
        ..PlatformConfig::default()
    });
    let spec = p.grouping_query(
        Predicate::True,
        300,
        &[&["sex"], &[]],
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig {
                strategy,
                failure_probability: 0.1,
                target_validity: 0.99,
                ..ResilienceConfig::default()
            },
        )
        .unwrap();
    assert!(run.report.valid);
    (
        run.report.messages_sent,
        estimate(&run.plan),
        run.plan.total_partitions(),
    )
}

#[test]
fn estimate_bounds_measured_messages_without_failures() {
    for strategy in [Strategy::Overcollection, Strategy::Naive] {
        let (measured, est, _) = run(strategy);
        let bound = est.total_messages_max();
        assert!(
            measured <= bound,
            "{}: measured {measured} exceeds bound {bound}",
            strategy.name()
        );
        // The bound is tight: contributions are the only overestimated
        // term (quota truncation means late contributors still answer),
        // so the model should be within 2x.
        assert!(
            measured * 2 >= bound,
            "{}: bound {bound} too loose for measured {measured}",
            strategy.name()
        );
    }
}

#[test]
fn estimate_orders_strategies_like_the_simulator() {
    let (m_over, e_over, _) = run(Strategy::Overcollection);
    let (m_naive, e_naive, _) = run(Strategy::Naive);
    let (m_backup, e_backup, _) = run(Strategy::Backup);
    // Analytic and measured agree on the ordering.
    assert!(e_naive.total_messages_max() <= e_over.total_messages_max());
    assert!(e_over.total_messages_max() < e_backup.total_messages_max());
    assert!(m_naive <= m_over);
    assert!(m_over < m_backup);
}
