//! Storage-fault drills: the campaign's durability counterpart.
//!
//! A network fault plan perturbs messages in flight; a
//! [`StorageFaultPlan`](edgelet_store::StorageFaultPlan) perturbs the
//! durable service's WAL appends (torn tails, silently truncated
//! records, failed syncs, checksum flips — see `docs/STORAGE.md`). The
//! drill runs one scenario's query three times:
//!
//! 1. a **baseline** durable run on throwaway media (the byte-identity
//!    reference);
//! 2. a **faulted** incarnation over persistent media, with the fault
//!    plan injected between the service and the media;
//! 3. a **recovered** restart over the same media with the faults
//!    lifted, as a replacement process would see it after the incident.
//!
//! The recovered service must either finish the query with a result
//! payload, liability ledger, trace digest, and state CRC
//! byte-identical to the baseline, or come up deterministically drained
//! (read-only) when the log carries unrepairable mid-log damage — it
//! must never serve from a silently corrupted ledger. A drained
//! recovery is reported under the synthetic oracle name
//! [`STORAGE_DRAINED`], so corpus entries can pin either verdict.

use crate::oracle::{check_run, signature};
use crate::scenario::ChaosScenario;
use edgelet_core::RunResult;
use edgelet_live::{
    state_crc, DurabilityConfig, QueryService, RecoveryReport, ServiceConfig, SubmitError,
    SubmitOutcome,
};
use edgelet_privacy::analyze_plan;
use edgelet_query::{PrivacyConfig, QuerySpec, ResilienceConfig};
use edgelet_sim::FaultPlan;
use edgelet_store::{DurableBackend, FaultyBackend, MemBackend, StorageFaultPlan};
use edgelet_util::{Error, Result};
use std::sync::Arc;

/// Synthetic oracle name reported when recovery refuses the damaged
/// log and the service comes up drained (read-only).
pub const STORAGE_DRAINED: &str = "storage-drained";

/// Checkpoint cadence for drill services: > 1, so completions live in
/// the WAL (not a checkpoint) across the restart and replay is
/// exercised.
const CHECKPOINT_EVERY: u64 = 2;

/// What one storage drill observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageDrillReport {
    /// Oracle names that fired on the recovered run (sorted,
    /// deduplicated); `[STORAGE_DRAINED]` when recovery drained.
    pub oracles: Vec<String>,
    /// Trace digest of the recovered run (0 when drained).
    pub trace_digest: u64,
    /// Whether the recovered outcome was byte-identical to the clean
    /// baseline (vacuously false when drained).
    pub parity: bool,
    /// Whether the faulted incarnation drained to read-only mid-run
    /// (a loud fault, e.g. a torn tail killing the media).
    pub faulted_drained: bool,
    /// Whether recovery repaired a torn tail.
    pub repaired_tail: bool,
    /// Why the recovered service came up drained, if it did.
    pub drained: Option<String>,
}

impl StorageDrillReport {
    /// True when the drill ended in the only two acceptable states:
    /// byte-identical recovery, or a deterministic drain.
    pub fn acceptable(&self) -> bool {
        self.parity || self.drained.is_some()
    }
}

fn drill_error(msg: String) -> Error {
    Error::InvalidConfig(msg)
}

/// Opens the scenario's world and wraps it in a durable service over
/// `backend`. The world is rebuilt identically from (scenario, seed)
/// for every incarnation — only the media persists between them.
fn durable_service(
    scenario: ChaosScenario,
    seed: u64,
    backend: Arc<dyn DurableBackend>,
    segment_bytes: Option<u64>,
) -> (
    QueryService,
    QuerySpec,
    PrivacyConfig,
    ResilienceConfig,
    RecoveryReport,
) {
    let (platform, spec, privacy, resilience) = scenario.open(seed, FaultPlan::new()).into_parts();
    let (service, report) = QueryService::with_durability(
        platform,
        ServiceConfig {
            workers: 2,
            max_concurrent: 2,
            mailbox_capacity: 4096,
        },
        backend,
        DurabilityConfig {
            checkpoint_every: CHECKPOINT_EVERY,
            segment_bytes: segment_bytes
                .unwrap_or_else(|| DurabilityConfig::default().segment_bytes),
            ..DurabilityConfig::default()
        },
    );
    (service, spec, privacy, resilience, report)
}

fn submit(
    service: &QueryService,
    spec: &QuerySpec,
    privacy: &PrivacyConfig,
    resilience: &ResilienceConfig,
) -> std::result::Result<SubmitOutcome, SubmitError> {
    service.submit(spec, privacy, resilience, None)
}

/// Runs the three-incarnation storage drill for `(scenario, seed)`
/// under `plan`. Errors only on harness-level failures (the baseline
/// itself failing, an unexpected submit error); a drained recovery is
/// a *verdict*, not an error.
pub fn run_storage_drill(
    scenario: ChaosScenario,
    seed: u64,
    plan: &StorageFaultPlan,
) -> Result<StorageDrillReport> {
    run_storage_drill_with(scenario, seed, plan, None)
}

/// [`run_storage_drill`] with an explicit WAL segment-size override
/// (`None` = the service default), so corpus entries can pin faults
/// that land at segment rotation boundaries.
pub fn run_storage_drill_with(
    scenario: ChaosScenario,
    seed: u64,
    plan: &StorageFaultPlan,
    segment_bytes: Option<u64>,
) -> Result<StorageDrillReport> {
    // 1. Clean durable baseline on throwaway media.
    let (service, spec, privacy, resilience, _) =
        durable_service(scenario, seed, Arc::new(MemBackend::new()), segment_bytes);
    let baseline = submit(&service, &spec, &privacy, &resilience)
        .map_err(|e| drill_error(format!("storage drill: baseline run failed: {e}")))?;
    service.shutdown();
    if !baseline.succeeded() {
        return Err(drill_error(
            "storage drill: baseline run did not complete".into(),
        ));
    }

    // 2. Faulted incarnation over persistent media.
    let media = Arc::new(MemBackend::new());
    let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(media.clone(), plan.clone()));
    let (service, spec, privacy, resilience, _) =
        durable_service(scenario, seed, faulty, segment_bytes);
    let faulted = submit(&service, &spec, &privacy, &resilience);
    let faulted_drained = matches!(faulted, Err(SubmitError::ReadOnly { .. }));
    match faulted {
        // Silent faults complete; loud ones drain. Both are expected.
        Ok(_) | Err(SubmitError::ReadOnly { .. }) => {}
        Err(e) => return Err(drill_error(format!("storage drill: faulted run: {e}"))),
    }
    service.shutdown();

    // 3. Recovery over the same media, faults lifted.
    let (service, spec, privacy, resilience, report) =
        durable_service(scenario, seed, media, segment_bytes);
    let repaired_tail = report.repaired_tail.is_some();
    if let Some(reason) = report.drained {
        service.shutdown();
        return Ok(StorageDrillReport {
            oracles: vec![STORAGE_DRAINED.to_string()],
            trace_digest: 0,
            parity: false,
            faulted_drained,
            repaired_tail,
            drained: Some(reason),
        });
    }
    let recovered = submit(&service, &spec, &privacy, &resilience)
        .map_err(|e| drill_error(format!("storage drill: recovered run failed: {e}")))?;
    service.shutdown();

    let parity = recovered.run.report.result_payload == baseline.run.report.result_payload
        && recovered.run.report.ledger.entries() == baseline.run.report.ledger.entries()
        && recovered.run.trace_digest == baseline.run.trace_digest
        && state_crc(&recovered.run) == state_crc(&baseline.run);

    // Audit the recovered run with the same trace oracles that audit
    // simulator and live-parity runs.
    let session = scenario.open(seed, FaultPlan::new());
    let as_result = RunResult {
        plan: recovered.run.plan.clone(),
        report: recovered.run.report.clone(),
        exposure: analyze_plan(&recovered.run.plan),
        trace_digest: recovered.run.trace_digest,
        trace: recovered.run.trace.clone(),
    };
    let violations = check_run(&session.package(as_result));
    Ok(StorageDrillReport {
        oracles: signature(&violations),
        trace_digest: recovered.run.trace_digest.unwrap_or(0),
        parity,
        faulted_drained,
        repaired_tail,
        drained: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_store::StorageFaultAction;

    #[test]
    fn clean_plan_drills_to_parity() {
        let report =
            run_storage_drill(ChaosScenario::Grouping, 1, &StorageFaultPlan::new()).unwrap();
        assert!(report.parity, "{report:?}");
        assert!(report.oracles.is_empty(), "{report:?}");
        assert!(!report.faulted_drained && report.drained.is_none());
    }

    #[test]
    fn torn_tail_drains_then_recovers_byte_identically() {
        // The 2nd append is the completion record: tear it mid-write.
        let plan = StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 6 });
        let report = run_storage_drill(ChaosScenario::Grouping, 5, &plan).unwrap();
        assert!(report.faulted_drained, "a torn tail kills the media");
        assert!(report.repaired_tail, "recovery must repair the tail");
        assert!(report.parity, "{report:?}");
        assert!(report.oracles.is_empty(), "{report:?}");
    }

    #[test]
    fn failed_syncs_are_ridden_out_by_retry() {
        let plan = StorageFaultPlan::new().with(1, StorageFaultAction::FailedSync { times: 2 });
        let report = run_storage_drill(ChaosScenario::KMeans, 3, &plan).unwrap();
        assert!(!report.faulted_drained, "retry must absorb transient syncs");
        assert!(report.parity, "{report:?}");
    }

    #[test]
    fn tiny_segments_rotate_through_the_drill_and_stay_byte_identical() {
        // 256-byte segments force a rotation on nearly every append, so
        // the torn completion lands at a fresh segment's start and the
        // sealed segments must replay in order.
        let plan = StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 6 });
        let report = run_storage_drill_with(ChaosScenario::Grouping, 5, &plan, Some(256)).unwrap();
        assert!(report.faulted_drained, "a torn tail kills the media");
        assert!(report.repaired_tail, "recovery must repair the tail");
        assert!(report.parity, "{report:?}");
    }

    #[test]
    fn mid_log_truncation_recovers_to_a_deterministic_drain() {
        // The intent record (append 1) is silently cut short while the
        // completion lands intact: unrepairable mid-log damage.
        let plan = StorageFaultPlan::new().with(1, StorageFaultAction::TruncatedRecord { keep: 4 });
        let report = run_storage_drill(ChaosScenario::Grouping, 2, &plan).unwrap();
        assert_eq!(report.oracles, vec![STORAGE_DRAINED.to_string()]);
        assert!(report.drained.is_some() && !report.parity);
        assert!(report.acceptable());
    }
}
