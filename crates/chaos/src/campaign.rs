//! The campaign runner: sweep seeds x fault plans, record failing
//! triples, shrink them to minimal repros.
//!
//! A campaign is deterministic end to end: seed `s` always runs the
//! catalog plan `s % len` on a world built from seed `s`, so two
//! campaigns over the same seed range produce the same failing
//! `(scenario, seed, plan, trace_digest)` triples — the property the
//! chaos smoke test pins in CI.

use crate::corpus::CorpusEntry;
use crate::oracle::{check_run, signature, Violation};
use crate::plans::plan_for_seed;
use crate::scenario::ChaosScenario;
use edgelet_sim::{Duration, FaultAction, FaultPlan};
use edgelet_util::Result;

/// What to sweep.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds `0..seeds` are each run once per scenario.
    pub seeds: u64,
    /// Scenarios to sweep (default: all).
    pub scenarios: Vec<ChaosScenario>,
    /// Shrink failing plans to minimal repros (a few dozen extra runs
    /// per failure; disable for the quickest possible sweep).
    pub shrink: bool,
    /// Simulator shard count for every run in the sweep. Failing
    /// triples are identical for every value; CI sweeps {1, 4} to pin
    /// exactly that.
    pub shards: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seeds: 64,
            scenarios: ChaosScenario::ALL.to_vec(),
            shrink: true,
            shards: 1,
        }
    }
}

/// One failing run, shrunk (when enabled) to a minimal repro.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Scenario name.
    pub scenario: &'static str,
    /// World seed.
    pub seed: u64,
    /// Catalog name of the plan that failed.
    pub plan_name: &'static str,
    /// Trace digest of the *original* failing run (the triple CI
    /// reports; shrunk plans digest differently by construction).
    pub trace_digest: u64,
    /// Sorted, deduplicated oracle names that fired.
    pub oracles: Vec<String>,
    /// First violation details, for the report.
    pub details: Vec<String>,
    /// The minimal plan that still reproduces the same oracle set
    /// (equal to the original plan when shrinking is disabled).
    pub shrunk: FaultPlan,
    /// Rule count before shrinking.
    pub rules_before: usize,
}

impl Failure {
    /// The failing triple as a stable one-line record.
    pub fn triple(&self) -> String {
        format!(
            "scenario={} seed={} plan={} digest={:#018x} oracles={}",
            self.scenario,
            self.seed,
            self.plan_name,
            self.trace_digest,
            self.oracles.join(",")
        )
    }

    /// A replayable corpus entry pinning this failure's verdict.
    pub fn to_corpus_entry(&self) -> CorpusEntry {
        CorpusEntry {
            scenario: self.scenario.to_string(),
            seed: self.seed,
            plan_name: self.plan_name.to_string(),
            expect: self.oracles.clone(),
            plan: self.shrunk.clone(),
            storage: edgelet_store::StorageFaultPlan::new(),
            segment_bytes: None,
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Total runs executed (excluding shrinking reruns).
    pub runs: u64,
    /// Failing triples, in sweep order.
    pub failures: Vec<Failure>,
}

impl CampaignReport {
    /// Stable multi-line summary (identical across repeat campaigns —
    /// the determinism property CI checks).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "chaos campaign: {} runs, {} failing\n",
            self.runs,
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&format!(
                "FAIL {} rules={}->{}\n",
                f.triple(),
                f.rules_before,
                f.shrunk.rules.len()
            ));
            for d in &f.details {
                out.push_str(&format!("     {d}\n"));
            }
        }
        out
    }
}

/// Executes one (scenario, seed, plan) run and checks every oracle.
/// Returns the violations and the run's trace digest.
pub fn run_one(
    scenario: ChaosScenario,
    seed: u64,
    plan: &FaultPlan,
) -> Result<(Vec<Violation>, u64)> {
    run_one_sharded(scenario, seed, plan, 1)
}

/// [`run_one`] with an explicit simulator shard count. The violations
/// and digest are bit-identical for every value.
pub fn run_one_sharded(
    scenario: ChaosScenario,
    seed: u64,
    plan: &FaultPlan,
    shards: usize,
) -> Result<(Vec<Violation>, u64)> {
    let run = scenario
        .open_with_shards(seed, plan.clone(), shards)
        .run()?;
    let digest = run.digest();
    Ok((check_run(&run), digest))
}

/// Sweeps the configured seed range over every scenario.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignReport> {
    let mut report = CampaignReport::default();
    for seed in 0..config.seeds {
        for &scenario in &config.scenarios {
            let named = plan_for_seed(scenario, seed)?;
            let (violations, digest) = run_one_sharded(scenario, seed, &named.plan, config.shards)?;
            report.runs += 1;
            if violations.is_empty() {
                continue;
            }
            let expect = signature(&violations);
            let rules_before = named.plan.rules.len();
            let shrunk = if config.shrink {
                shrink_sharded(scenario, seed, &named.plan, &expect, config.shards)
            } else {
                named.plan.clone()
            };
            report.failures.push(Failure {
                scenario: scenario.name(),
                seed,
                plan_name: named.name,
                trace_digest: digest,
                oracles: expect,
                details: violations
                    .iter()
                    .take(3)
                    .map(|v| v.detail.clone())
                    .collect(),
                shrunk,
                rules_before,
            });
        }
    }
    Ok(report)
}

/// Re-run budget per shrink: a failure never costs more than this many
/// extra executions to minimize.
const SHRINK_BUDGET: u32 = 48;

struct Shrinker {
    scenario: ChaosScenario,
    seed: u64,
    expect: Vec<String>,
    budget: u32,
    shards: usize,
}

impl Shrinker {
    /// Does `plan` still reproduce exactly the expected oracle set?
    fn reproduces(&mut self, plan: &FaultPlan) -> bool {
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        match run_one_sharded(self.scenario, self.seed, plan, self.shards) {
            Ok((violations, _)) => signature(&violations) == self.expect,
            Err(_) => false,
        }
    }
}

/// Minimizes a failing plan while preserving its oracle signature:
/// greedily drop whole rules, then bisect each surviving rule's numeric
/// triggers (skip count, firing limit, injected delay) toward their
/// smallest reproducing values.
pub fn shrink(
    scenario: ChaosScenario,
    seed: u64,
    plan: &FaultPlan,
    expect: &[String],
) -> FaultPlan {
    shrink_sharded(scenario, seed, plan, expect, 1)
}

/// [`shrink`] with an explicit simulator shard count for the re-runs.
pub fn shrink_sharded(
    scenario: ChaosScenario,
    seed: u64,
    plan: &FaultPlan,
    expect: &[String],
    shards: usize,
) -> FaultPlan {
    let mut s = Shrinker {
        scenario,
        seed,
        expect: expect.to_vec(),
        budget: SHRINK_BUDGET,
        shards,
    };
    let mut current = plan.clone();

    // Phase 1: drop rules one at a time until no single removal keeps
    // the failure alive.
    'drop: loop {
        for i in 0..current.rules.len() {
            if current.rules.len() <= 1 {
                break 'drop;
            }
            let mut candidate = current.clone();
            candidate.rules.remove(i);
            if s.reproduces(&candidate) {
                current = candidate;
                continue 'drop;
            }
        }
        break;
    }

    // Phase 2: bisect numeric triggers per surviving rule.
    for i in 0..current.rules.len() {
        // skip: smallest value that still reproduces.
        if current.rules[i].skip > 0 {
            let mut lo = 0u64;
            let mut hi = current.rules[i].skip; // known reproducing
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = current.clone();
                candidate.rules[i].skip = mid;
                if s.reproduces(&candidate) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            current.rules[i].skip = hi;
        }
        // limit: a single firing is the minimal repro if it suffices.
        if current.rules[i].limit != Some(1) {
            let mut candidate = current.clone();
            candidate.rules[i].limit = Some(1);
            if s.reproduces(&candidate) {
                current = candidate;
            }
        }
        // delay magnitude: halve toward zero while the failure holds.
        loop {
            let us = match current.rules[i].action {
                FaultAction::Delay(d) => d.as_micros(),
                FaultAction::Duplicate { extra_delay } => extra_delay.as_micros(),
                _ => break,
            };
            if us == 0 {
                break;
            }
            let halved = Duration::from_micros(us / 2);
            let mut candidate = current.clone();
            candidate.rules[i].action = match candidate.rules[i].action {
                FaultAction::Duplicate { .. } => FaultAction::Duplicate {
                    extra_delay: halved,
                },
                _ => FaultAction::Delay(halved),
            };
            if s.reproduces(&candidate) {
                current = candidate;
            } else {
                break;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_deterministic() {
        let config = CampaignConfig {
            seeds: 4,
            scenarios: vec![ChaosScenario::Grouping],
            shrink: false,
            shards: 1,
        };
        let a = run_campaign(&config).unwrap();
        let b = run_campaign(&config).unwrap();
        assert_eq!(a.runs, 4);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn run_one_digest_is_reproducible() {
        let plan = plan_for_seed(ChaosScenario::KMeans, 2).unwrap();
        let (v1, d1) = run_one(ChaosScenario::KMeans, 2, &plan.plan).unwrap();
        let (v2, d2) = run_one(ChaosScenario::KMeans, 2, &plan.plan).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(signature(&v1), signature(&v2));
    }
}
