//! The catalog of named fault plans the campaign sweeps.
//!
//! Plans are built against the *actual* QEP a seed produces: rules that
//! target "the primary combiner" or "builder 0" resolve those roles to
//! the concrete devices the planner assigned for that seed. Planning is
//! deterministic, so the preview plan used here and the plan the run
//! executes assign identical devices.

use crate::scenario::ChaosScenario;
use edgelet_exec::messages::kind;
use edgelet_query::plan::{OperatorRole, QueryPlan};
use edgelet_sim::{Duration, FaultAction, FaultPlan, FaultRule, SimTime};
use edgelet_util::ids::DeviceId;
use edgelet_util::Result;

/// A fault plan with the stable name the campaign and corpus refer to
/// it by.
#[derive(Debug, Clone)]
pub struct NamedPlan {
    /// Stable catalog name (kebab-case).
    pub name: &'static str,
    /// The rules.
    pub plan: FaultPlan,
}

/// Both operator-output message kinds a Computer can emit toward the
/// combination stage.
const PARTIAL_KINDS: [u16; 2] = [kind::GROUPING_PARTIAL, kind::KMEANS_FINAL];

fn devices_of(plan: &QueryPlan, pred: impl Fn(&OperatorRole) -> bool) -> Vec<DeviceId> {
    let mut out: Vec<DeviceId> = plan
        .operators
        .iter()
        .filter(|o| pred(&o.role))
        .flat_map(|o| std::iter::once(o.device).chain(o.backups.iter().copied()))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Builds the catalog for one scenario and seed.
///
/// The catalog order is stable: campaigns assign plan `seed % len` to
/// each seed, so the same seed always replays the same plan.
pub fn catalog(scenario: ChaosScenario, seed: u64) -> Result<Vec<NamedPlan>> {
    let session = scenario.open(seed, FaultPlan::new());
    let qep = session.plan()?;

    let combiner_primary = qep.combiner().device;
    let combiner_devices = devices_of(&qep, |r| matches!(r, OperatorRole::Combiner { .. }));
    let computer_devices = devices_of(&qep, |r| matches!(r, OperatorRole::Computer { .. }));
    let builder0 = qep
        .operators
        .iter()
        .find(|o| matches!(o.role, OperatorRole::SnapshotBuilder { .. }))
        .expect("plans always have builders")
        .device;
    let quota = qep.partition_quota as u64;

    let mut out = vec![
        // 0: control group — a clean run every oracle must accept.
        NamedPlan {
            name: "baseline",
            plan: FaultPlan::new(),
        },
        // 1: lose the very first partial ever shipped.
        NamedPlan {
            name: "drop-first-partial",
            plan: FaultPlan::new().rule(
                FaultRule::new(FaultAction::Drop)
                    .on_kinds(&PARTIAL_KINDS)
                    .limit(1),
            ),
        },
        // 2: the ledger double-charge regression. Replay the first
        // partial 5 ms late AND hold the remaining partials back 2 s —
        // the combiner is still collecting when the duplicate lands, so
        // a regressed idempotence guard would merge and charge it twice.
        // (Duplicating alone is too gentle: every partial arrives in one
        // burst, the combiner finalizes on the last original, and the
        // `finalized` early-return masks the missing guard.)
        NamedPlan {
            name: "dup-partials",
            plan: FaultPlan::new()
                .rule(
                    FaultRule::new(FaultAction::Duplicate {
                        extra_delay: Duration::from_millis(5),
                    })
                    .on_kinds(&PARTIAL_KINDS)
                    .limit(1),
                )
                .rule(
                    FaultRule::new(FaultAction::Delay(Duration::from_secs(2)))
                        .on_kinds(&PARTIAL_KINDS),
                ),
        },
        // 3: partials arrive 12 s late — inside the combine window, so
        // the run should still be valid.
        NamedPlan {
            name: "delay-partials",
            plan: FaultPlan::new().rule(
                FaultRule::new(FaultAction::Delay(Duration::from_secs(12)))
                    .on_kinds(&PARTIAL_KINDS),
            ),
        },
        // 4: swap the first two partition-data shipments.
        NamedPlan {
            name: "reorder-partition-data",
            plan: FaultPlan::new().rule(
                FaultRule::new(FaultAction::Reorder)
                    .on_kinds(&[kind::PARTITION_DATA])
                    .limit(2),
            ),
        },
        // 5: crash the primary combiner the instant its first partial
        // is delivered (the trigger message dies with it).
        NamedPlan {
            name: "crash-combiner-on-first-partial",
            plan: FaultPlan::new().rule(
                FaultRule::new(FaultAction::CrashReceiver)
                    .on_kinds(&PARTIAL_KINDS)
                    .to(&[combiner_primary])
                    .limit(1),
            ),
        },
        // 6: crash builder 0 on the exact contribution that meets its
        // quota.
        NamedPlan {
            name: "crash-builder-at-quota",
            plan: FaultPlan::new().rule(
                FaultRule::new(FaultAction::CrashReceiver)
                    .on_kinds(&[kind::CONTRIBUTION])
                    .to(&[builder0])
                    .skip(quota.saturating_sub(1))
                    .limit(1),
            ),
        },
        // 7: sever the computation stage from the combination stage for
        // the first 20 virtual seconds (partials sent early are lost).
        NamedPlan {
            name: "partition-computers-from-combiners",
            plan: FaultPlan::new().partition(
                &computer_devices,
                &combiner_devices,
                SimTime::ZERO,
                SimTime::from_micros(20_000_000),
            ),
        },
        // 8: the winning combiner crash-stops right after reporting —
        // the zombie oracle checks nothing leaks from the corpse.
        NamedPlan {
            name: "crash-sender-on-final",
            plan: FaultPlan::new().rule(
                FaultRule::new(FaultAction::CrashSender)
                    .on_kinds(&[kind::FINAL_RESULT])
                    .limit(1),
            ),
        },
        // 9: swallow the first round of contribution requests; builder
        // retry rounds must recover collection.
        NamedPlan {
            name: "drop-contribute-requests-early",
            plan: FaultPlan::new().rule(
                FaultRule::new(FaultAction::Drop)
                    .on_kinds(&[kind::CONTRIBUTE_REQUEST])
                    .until(SimTime::from_micros(1_000_000)),
            ),
        },
    ];
    // Backup chains only exist under the Backup strategy; give that
    // scenario one plan that isolates a primary so its replica must
    // legitimately take over (exercises the single-active oracle's
    // crash path).
    if qep.backup_degree > 0 {
        out.push(NamedPlan {
            name: "crash-builder0-early",
            plan: FaultPlan::new().rule(
                FaultRule::new(FaultAction::CrashReceiver)
                    .on_kinds(&[kind::CONTRIBUTION])
                    .to(&[builder0])
                    .limit(1),
            ),
        });
    }
    Ok(out)
}

/// The catalog plan a campaign assigns to `seed`.
pub fn plan_for_seed(scenario: ChaosScenario, seed: u64) -> Result<NamedPlan> {
    let cat = catalog(scenario, seed)?;
    let idx = (seed % cat.len() as u64) as usize;
    Ok(cat[idx].clone())
}

/// Looks up a catalog plan by name (corpus replay resolves names this
/// way when an entry stores no explicit rules).
pub fn by_name(scenario: ChaosScenario, seed: u64, name: &str) -> Result<Option<NamedPlan>> {
    Ok(catalog(scenario, seed)?
        .into_iter()
        .find(|p| p.name == name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_stable() {
        for scenario in ChaosScenario::ALL {
            let cat = catalog(scenario, 7).unwrap();
            assert!(cat.len() >= 10);
            let mut names: Vec<&str> = cat.iter().map(|p| p.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), cat.len(), "{:?} has duplicate names", scenario);
        }
    }

    #[test]
    fn catalog_is_seed_deterministic() {
        let a = catalog(ChaosScenario::Grouping, 11).unwrap();
        let b = catalog(ChaosScenario::Grouping, 11).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.plan, y.plan);
        }
    }

    #[test]
    fn plan_for_seed_cycles_the_catalog() {
        let p0 = plan_for_seed(ChaosScenario::KMeans, 0).unwrap();
        assert_eq!(p0.name, "baseline");
        let p2 = plan_for_seed(ChaosScenario::KMeans, 2).unwrap();
        assert_eq!(p2.name, "dup-partials");
    }
}
