//! Deterministic chaos harness for the Edgelet platform.
//!
//! The simulator's [`edgelet_sim::FaultPlan`] DSL can drop, delay,
//! duplicate, reorder, and crash messages by *protocol position* — "the
//! third `GROUPING_PARTIAL`", "the contribution that meets the quota".
//! This crate turns that primitive into a campaign harness:
//!
//! * [`scenario`] — the two canonical worlds the campaign perturbs
//!   (a Backup-strategy Grouping-Sets survey and an Overcollection
//!   K-Means), sized so a run takes milliseconds;
//! * [`plans`] — a catalog of named fault plans built against each
//!   world's actual QEP (crash the primary combiner on its first
//!   partial, crash a builder the instant its quota is met, sever
//!   computers from combiners, ...);
//! * [`oracle`] — post-run machine checks replaying the trace ring
//!   buffer: no post-crash sends, single active replica per Backup
//!   operator, ledger liability caps, validity arithmetic, deadline
//!   feasibility against the binomial overcollection model;
//! * [`campaign`] — sweeps seeds x plans, records failing
//!   `(seed, plan, trace_digest)` triples, and *shrinks* each failure
//!   (dropping rules, bisecting skip counts and delays) to a minimal
//!   repro;
//! * [`corpus`] — a line-oriented serialization of repro entries under
//!   `tests/chaos_corpus/`, replayable by tests and CI;
//! * [`storage`] — the durability counterpart: drills that inject
//!   [`edgelet_store::StorageFaultPlan`] faults (torn tails, truncated
//!   records, failed syncs, checksum flips) into the durable live
//!   service's WAL and require byte-identical recovery or a
//!   deterministic read-only drain (see `docs/STORAGE.md`).
//!
//! Everything is virtual-time deterministic: the same seed and plan
//! produce the same trace digest and the same oracle verdict, so a
//! failing triple found by the nightly campaign replays bit-for-bit on
//! a developer machine. See `docs/FAULTS.md` for the fault model and
//! the pinned invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod oracle;
pub mod plans;
pub mod scenario;
pub mod storage;

pub use campaign::{
    run_campaign, run_one, run_one_sharded, shrink, shrink_sharded, CampaignConfig, CampaignReport,
    Failure,
};
pub use corpus::{load_dir, CorpusEntry, ReplayReport};
pub use edgelet_sim::FaultPlan;
pub use oracle::{check_run, signature, Violation};
pub use plans::{catalog, plan_for_seed, NamedPlan};
pub use scenario::{ChaosRun, ChaosScenario, Session};
pub use storage::{run_storage_drill, StorageDrillReport, STORAGE_DRAINED};
