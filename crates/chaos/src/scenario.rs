//! The worlds the chaos campaign perturbs.
//!
//! Chaos scenarios are deliberately *clean* worlds: reliable network,
//! always-up devices, no organic crashes. Every anomaly an oracle then
//! flags is attributable to the injected fault plan, not to background
//! noise. Crowds are sized so a single run takes milliseconds and a
//! thousand-seed campaign stays interactive.

use edgelet_core::{Platform, PlatformConfig, RunResult};
use edgelet_ml::AggSpec;
use edgelet_query::{PrivacyConfig, QueryPlan, QuerySpec, ResilienceConfig, Strategy};
use edgelet_sim::FaultPlan;
use edgelet_store::Predicate;
use edgelet_util::Result;

/// Contributors enrolled in every chaos world.
const CONTRIBUTORS: usize = 240;
/// Volunteer processors (comfortably above the widest plan's demand, so
/// the planner's distinct-device draw never doubles up operators).
const PROCESSORS: usize = 40;
/// Snapshot cardinality; with [`RAW_TUPLE_CAP`] this yields exactly
/// `n = 4` partitions of quota 20, so a fully valid grouping count is
/// exactly `C` (the validity oracle relies on this round division).
const SNAPSHOT_C: usize = 80;
/// Horizontal privacy cap (max raw tuples per edgelet).
const RAW_TUPLE_CAP: usize = 20;
/// Trace ring capacity: large enough to hold every event of a run, so
/// oracles replay the *complete* history.
const TRACE_CAPACITY: usize = 1 << 16;

/// A canonical world + query the campaign runs under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Grouping-Sets survey under the Backup strategy (replica chains,
    /// so the single-active-replica oracle has something to check).
    Grouping,
    /// K-Means under Overcollection (extra partitions and parallel
    /// combiners, so the binomial-feasibility oracle applies).
    KMeans,
}

impl ChaosScenario {
    /// Every scenario, in campaign order.
    pub const ALL: [ChaosScenario; 2] = [ChaosScenario::Grouping, ChaosScenario::KMeans];

    /// Stable name used in corpus entries and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::Grouping => "grouping",
            ChaosScenario::KMeans => "kmeans",
        }
    }

    /// Parses a scenario name (inverse of [`ChaosScenario::name`]).
    pub fn from_name(name: &str) -> Option<ChaosScenario> {
        ChaosScenario::ALL.into_iter().find(|s| s.name() == name)
    }

    fn resilience(self) -> ResilienceConfig {
        match self {
            // Backup: every Data Processor gets a replica chain.
            ChaosScenario::Grouping => ResilienceConfig {
                failure_probability: 0.1,
                target_validity: 0.99,
                strategy: Strategy::Backup,
                max_overcollection: 64,
                max_backups: 4,
            },
            // Overcollection with a modest target keeps `m` small and
            // the world (n + m partitions, 2 parallel combiners) cheap.
            ChaosScenario::KMeans => ResilienceConfig {
                failure_probability: 0.1,
                target_validity: 0.9,
                strategy: Strategy::Overcollection,
                max_overcollection: 8,
                max_backups: 4,
            },
        }
    }

    fn platform_config(self, seed: u64, fault_plan: FaultPlan, shards: usize) -> PlatformConfig {
        PlatformConfig {
            seed,
            contributors: CONTRIBUTORS,
            processors: PROCESSORS,
            // Classification must be on even for an empty plan: the
            // oracles read per-message protocol kinds from the trace.
            fault_plan: Some(fault_plan),
            trace_capacity: TRACE_CAPACITY,
            shards,
            ..PlatformConfig::default()
        }
    }

    /// Builds the world and the query, ready to plan or run.
    pub fn open(self, seed: u64, fault_plan: FaultPlan) -> Session {
        self.open_with_shards(seed, fault_plan, 1)
    }

    /// [`ChaosScenario::open`] with an explicit simulator shard count.
    /// Campaign verdicts and trace digests are bit-identical for every
    /// value (the determinism property the parity suite pins).
    pub fn open_with_shards(self, seed: u64, fault_plan: FaultPlan, shards: usize) -> Session {
        let mut platform = Platform::build(self.platform_config(seed, fault_plan, shards));
        let spec = match self {
            ChaosScenario::Grouping => platform.grouping_query(
                Predicate::True,
                SNAPSHOT_C,
                &[&["sex"], &[]],
                vec![AggSpec::count_star()],
            ),
            ChaosScenario::KMeans => platform.kmeans_query(
                Predicate::True,
                SNAPSHOT_C,
                2,
                &["age", "bmi"],
                2,
                Vec::new(),
            ),
        };
        Session {
            scenario: self,
            privacy: PrivacyConfig::none().with_max_tuples(RAW_TUPLE_CAP),
            resilience: self.resilience(),
            platform,
            spec,
        }
    }
}

/// An opened scenario: world built, query specified, not yet run.
///
/// [`Session::plan`] previews the QEP (the plan catalog targets rules at
/// the devices it assigns); [`Session::run`] executes and packages the
/// result for the oracles. Planning is deterministic in the seed, so the
/// preview and the executed plan assign identical devices.
pub struct Session {
    scenario: ChaosScenario,
    privacy: PrivacyConfig,
    resilience: ResilienceConfig,
    platform: Platform,
    spec: QuerySpec,
}

impl Session {
    /// Number of devices in the world (ids `0..device_count`), for
    /// fault-plan lints that must know the valid target range.
    pub fn device_count(&self) -> u64 {
        self.platform.querier().raw() + 1
    }

    /// The query deadline in seconds (fault-plan lint context).
    pub fn deadline_secs(&self) -> f64 {
        self.spec.deadline_secs
    }

    /// Plans the query without running it.
    pub fn plan(&self) -> Result<QueryPlan> {
        self.platform
            .plan_query(&self.spec, &self.privacy, &self.resilience)
    }

    /// The platform hosting this session's world — exposed so other
    /// engines (the live runtime) can execute the very same session.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The query this session runs.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// The privacy configuration the plan is built under.
    pub fn privacy(&self) -> &PrivacyConfig {
        &self.privacy
    }

    /// The resiliency configuration the plan is built under.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// Decomposes the session into its parts, handing the platform to
    /// an engine that needs ownership — the durable live service in the
    /// storage drill ([`crate::storage`]). Opening the same scenario
    /// and seed again rebuilds an identical session for packaging.
    pub fn into_parts(self) -> (Platform, QuerySpec, PrivacyConfig, ResilienceConfig) {
        (self.platform, self.spec, self.privacy, self.resilience)
    }

    /// Packages an externally produced execution of *this* session —
    /// e.g. a live-runtime run of the same spec on the same platform —
    /// so the trace oracles ([`crate::oracle::check_run`]) can audit it
    /// exactly like a simulator run.
    pub fn package(&self, result: RunResult) -> ChaosRun {
        ChaosRun {
            scenario: self.scenario,
            resilience: self.resilience.clone(),
            suspect_timeout_secs: self.platform.config().exec.suspect_timeout.as_secs_f64(),
            deadline_secs: self.spec.deadline_secs,
            snapshot_cardinality: SNAPSHOT_C,
            grand_total_set: match self.scenario {
                ChaosScenario::Grouping => Some(1),
                ChaosScenario::KMeans => None,
            },
            result,
        }
    }

    /// Plans and executes, packaging everything the oracles need.
    pub fn run(mut self) -> Result<ChaosRun> {
        let result = self
            .platform
            .run_query(&self.spec, &self.privacy, &self.resilience)?;
        Ok(self.package(result))
    }
}

/// One executed chaos run plus the context the oracles check against.
pub struct ChaosRun {
    /// Which scenario ran.
    pub scenario: ChaosScenario,
    /// The resiliency configuration the plan was built under.
    pub resilience: ResilienceConfig,
    /// Backup-strategy suspicion span, seconds.
    pub suspect_timeout_secs: f64,
    /// The query deadline, seconds.
    pub deadline_secs: f64,
    /// Snapshot cardinality `C` (grouping validity expects exactly this
    /// grand-total count, since `C` divides evenly into the partitions).
    pub snapshot_cardinality: usize,
    /// Index of the grand-total grouping set in the result table
    /// (`None` for K-Means).
    pub grand_total_set: Option<u32>,
    /// Plan, report, exposure, and full trace of the execution.
    pub result: RunResult,
}

impl ChaosRun {
    /// The trace digest of the run (tracing is always on in chaos
    /// worlds).
    pub fn digest(&self) -> u64 {
        self.result.trace_digest.unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in ChaosScenario::ALL {
            assert_eq!(ChaosScenario::from_name(s.name()), Some(s));
        }
        assert_eq!(ChaosScenario::from_name("nope"), None);
    }

    #[test]
    fn grouping_world_plans_with_replica_chains() {
        let session = ChaosScenario::Grouping.open(1, FaultPlan::new());
        let plan = session.plan().unwrap();
        assert_eq!(plan.n, 4, "C=80 / cap=20 must give 4 partitions");
        assert!(plan.backup_degree >= 1, "Backup strategy must replicate");
        assert!(plan
            .operators
            .iter()
            .filter(|o| o.role.is_data_processor())
            .all(|o| o.backups.len() == plan.backup_degree as usize));
    }

    #[test]
    fn kmeans_world_plans_with_overcollection() {
        let session = ChaosScenario::KMeans.open(1, FaultPlan::new());
        let plan = session.plan().unwrap();
        assert_eq!(plan.strategy, Strategy::Overcollection);
        assert!(plan.m >= 1, "overcollection must add partitions");
        assert!(plan.combiners().len() >= 2, "parallel combiner replicas");
    }

    #[test]
    fn baseline_runs_complete_and_are_traced() {
        for s in ChaosScenario::ALL {
            let run = s.open(3, FaultPlan::new()).run().unwrap();
            assert!(run.result.report.completed, "{} baseline", s.name());
            assert!(run.result.report.valid, "{} baseline", s.name());
            assert!(run.result.trace_digest.is_some());
            assert!(!run.result.trace.is_empty());
        }
    }
}
