//! Post-run trace oracles: machine-checked invariants over one
//! execution's complete history.
//!
//! Each oracle replays the simulator's trace ring buffer (plus the
//! execution report and liability ledger) and checks one property the
//! paper's guarantees rest on. Oracles never fire on a clean run; every
//! violation is a protocol or accounting bug, reported with enough
//! detail to debug from the failing `(seed, plan, digest)` triple alone.
//!
//! The pinned invariants (also tabulated in `docs/FAULTS.md`):
//!
//! | oracle | property |
//! |---|---|
//! | `zombie-send` | no device sends after it crash-stopped |
//! | `single-active-replica` | a Backup replica emits operator output only once every lower rank is dead or silent past the suspicion span |
//! | `liability-cap` | no device is ledger-charged more raw tuples than the partition quota allows for the collector roles it hosts |
//! | `combiner-aggregates-bound` | a combiner device is charged at most one aggregate per distinct partial-sender seen on the wire |
//! | `grouping-validity` | a valid grouping run's grand total equals the snapshot cardinality and the per-group counts sum to it |
//! | `deadline-feasibility` | completion respects the deadline, validity implies completion, and an Overcollection plan's `(n, m)` meets the binomial validity model |

use crate::scenario::{ChaosRun, ChaosScenario};
use edgelet_exec::messages::kind;
use edgelet_exec::QueryOutcome;
use edgelet_query::plan::OperatorRole;
use edgelet_query::Strategy;
use edgelet_sim::{FaultKind, SimTime, TraceEvent};
use edgelet_store::Value;
use edgelet_util::binom::overcollection_validity;
use edgelet_util::ids::DeviceId;
use std::collections::{BTreeMap, BTreeSet};

/// One invariant violation found by an oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable oracle name (see the module table).
    pub oracle: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &'static str, detail: String) -> Self {
        Violation { oracle, detail }
    }
}

/// The sorted, deduplicated set of oracle names in a violation list —
/// the *signature* shrinking preserves and corpus entries pin.
pub fn signature(violations: &[Violation]) -> Vec<String> {
    let mut names: Vec<String> = violations.iter().map(|v| v.oracle.to_string()).collect();
    names.sort();
    names.dedup();
    names
}

/// Trace events unpacked into the per-oracle indexes.
struct TraceIndex {
    /// First crash instant per device.
    crash_at: BTreeMap<DeviceId, SimTime>,
    /// Every `Sent` record (post network-fate: the message really left).
    sends: Vec<(SimTime, DeviceId, DeviceId)>,
    /// Every classified message kind (recorded at route entry, so this
    /// includes messages a fault later dropped).
    kinds: Vec<(SimTime, DeviceId, DeviceId, u16)>,
    /// Every fault firing.
    faults: Vec<(FaultKind, DeviceId, DeviceId)>,
}

impl TraceIndex {
    fn build(run: &ChaosRun) -> TraceIndex {
        let mut idx = TraceIndex {
            crash_at: BTreeMap::new(),
            sends: Vec::new(),
            kinds: Vec::new(),
            faults: Vec::new(),
        };
        for rec in &run.result.trace {
            match rec.event {
                TraceEvent::Crashed { device, .. } => {
                    idx.crash_at.entry(device).or_insert(rec.at);
                }
                TraceEvent::Sent { from, to, .. } => idx.sends.push((rec.at, from, to)),
                TraceEvent::MsgKind { from, to, kind } => {
                    idx.kinds.push((rec.at, from, to, kind));
                }
                TraceEvent::FaultInjected { kind, from, to, .. } => {
                    idx.faults.push((kind, from, to));
                }
                _ => {}
            }
        }
        idx
    }
}

/// Runs every oracle over one execution.
pub fn check_run(run: &ChaosRun) -> Vec<Violation> {
    let idx = TraceIndex::build(run);
    let mut out = Vec::new();
    zombie_send(run, &idx, &mut out);
    single_active_replica(run, &idx, &mut out);
    liability_cap(run, &mut out);
    combiner_aggregates_bound(run, &idx, &mut out);
    grouping_validity(run, &mut out);
    deadline_feasibility(run, &mut out);
    out
}

/// No message leaves a device strictly after its crash instant. Sends
/// at exactly the crash instant are legal: an injected `CrashSender`
/// lets the current actor callback finish before the crash lands.
fn zombie_send(_run: &ChaosRun, idx: &TraceIndex, out: &mut Vec<Violation>) {
    for &(at, from, to) in &idx.sends {
        if let Some(&crashed) = idx.crash_at.get(&from) {
            if at > crashed {
                out.push(Violation::new(
                    "zombie-send",
                    format!(
                        "device {from} crashed at {:.3}s but sent to {to} at {:.3}s",
                        crashed.as_secs_f64(),
                        at.as_secs_f64()
                    ),
                ));
            }
        }
    }
}

/// The operator-output message kinds a role forwards downstream. Pings
/// and pongs are liveness traffic every replica may emit; output is
/// what the rank gate guards.
fn output_kinds(role: &OperatorRole) -> &'static [u16] {
    match role {
        OperatorRole::SnapshotBuilder { .. } => &[kind::PARTITION_DATA],
        OperatorRole::Computer { .. } => {
            &[kind::GROUPING_PARTIAL, kind::KNOWLEDGE, kind::KMEANS_FINAL]
        }
        OperatorRole::Combiner { .. } => &[kind::FINAL_RESULT],
        OperatorRole::Querier => &[],
    }
}

/// Margin (seconds) absorbing network latency and timer jitter between
/// a lower rank's last send and the backup's observation of it.
const SUSPICION_SLACK_SECS: f64 = 0.5;

/// Backup strategy: a rank-`r` replica forwards operator output only
/// when every lower rank is crashed or has been silent longer than the
/// suspicion span. A backup emitting output while a lower rank provably
/// signed life within the span is a gate violation.
///
/// Operators whose replica chain had liveness-relevant faults injected
/// between chain members (drops, delays, reorders can fake silence) are
/// skipped: suspicion there may be legitimate even though the trace
/// shows recent sends. Crash faults never fake silence, so they do not
/// disable the oracle.
fn single_active_replica(run: &ChaosRun, idx: &TraceIndex, out: &mut Vec<Violation>) {
    if run.resilience.strategy != Strategy::Backup {
        return;
    }
    let suspect = run.suspect_timeout_secs;
    for op in &run.result.plan.operators {
        if op.backups.is_empty() || !op.role.is_data_processor() {
            continue;
        }
        let chain: Vec<DeviceId> = std::iter::once(op.device)
            .chain(op.backups.iter().copied())
            .collect();
        let chain_faulted = idx.faults.iter().any(|(k, f, t)| {
            matches!(k, FaultKind::Drop | FaultKind::Delay | FaultKind::Reorder)
                && chain.contains(f)
                && chain.contains(t)
        });
        if chain_faulted {
            continue;
        }
        let outputs = output_kinds(&op.role);
        for rank in 1..chain.len() {
            let backup = chain[rank];
            for &(at, from, _to, k) in &idx.kinds {
                if from != backup || !outputs.contains(&k) {
                    continue;
                }
                for &lower in &chain[..rank] {
                    let fresh_life = idx.sends.iter().any(|&(s, sf, st)| {
                        sf == lower
                            && st == backup
                            && s <= at
                            && at.as_secs_f64() - s.as_secs_f64() < suspect - SUSPICION_SLACK_SECS
                    });
                    if fresh_life {
                        out.push(Violation::new(
                            "single-active-replica",
                            format!(
                                "{} backup rank {rank} on {backup} sent kind {k} at {:.3}s \
                                 while lower rank {lower} signed life within the \
                                 {suspect:.1}s suspicion span",
                                op.role.label(),
                                at.as_secs_f64()
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Raw-tuple liability: a device may be charged at most `quota` raw
/// tuples per collector instance (Snapshot Builder or Computer, primary
/// or replica) it hosts, and nothing if it hosts none. This is the
/// ledger-side mirror of the paper's horizontal privacy cap.
fn liability_cap(run: &ChaosRun, out: &mut Vec<Violation>) {
    let plan = &run.result.plan;
    let quota = plan.partition_quota as u64;
    let mut instances: BTreeMap<DeviceId, u64> = BTreeMap::new();
    for op in &plan.operators {
        if matches!(
            op.role,
            OperatorRole::SnapshotBuilder { .. } | OperatorRole::Computer { .. }
        ) {
            for d in std::iter::once(op.device).chain(op.backups.iter().copied()) {
                *instances.entry(d).or_default() += 1;
            }
        }
    }
    for (device, entry) in run.result.report.ledger.entries() {
        let allowed = quota * instances.get(device).copied().unwrap_or(0);
        if entry.raw_tuples_seen > allowed {
            out.push(Violation::new(
                "liability-cap",
                format!(
                    "device {device} charged {} raw tuples but hosts {} collector \
                     instance(s) of quota {quota} (allowed {allowed})",
                    entry.raw_tuples_seen,
                    instances.get(device).copied().unwrap_or(0)
                ),
            ));
        }
    }
}

/// A combiner device merges — and is ledger-charged — at most one
/// aggregate record per (partition, attribute group, sender) slot.
/// The bound is derived from the trace, not the plan: the planner draws
/// operators on distinct devices, so each partial-sender hosts exactly
/// one Computer instance and can legitimately charge a given combiner
/// device at most once. A charge count above the number of distinct
/// partial-senders seen on the wire means a duplicated or replayed
/// partial was double-charged (the idempotence guard in `CombinerActor`
/// prevents this; the oracle pins it — a static `slots x replicas`
/// bound is too slack to notice a single duplication).
fn combiner_aggregates_bound(run: &ChaosRun, idx: &TraceIndex, out: &mut Vec<Violation>) {
    const PARTIAL_KINDS: [u16; 2] = [kind::GROUPING_PARTIAL, kind::KMEANS_FINAL];
    let plan = &run.result.plan;
    for op in &plan.operators {
        if !matches!(op.role, OperatorRole::Combiner { .. }) {
            continue;
        }
        for d in std::iter::once(op.device).chain(op.backups.iter().copied()) {
            if let Some(entry) = run.result.report.ledger.entries().get(&d) {
                let senders: BTreeSet<DeviceId> = idx
                    .kinds
                    .iter()
                    .filter(|&&(_, _, to, k)| to == d && PARTIAL_KINDS.contains(&k))
                    .map(|&(_, from, _, _)| from)
                    .collect();
                let allowed = senders.len() as u64;
                if entry.aggregates_seen > allowed {
                    out.push(Violation::new(
                        "combiner-aggregates-bound",
                        format!(
                            "combiner device {d} charged {} aggregates but only \
                             {allowed} distinct partial-sender(s) appear on the \
                             wire — a partial was charged more than once",
                            entry.aggregates_seen
                        ),
                    ));
                }
            }
        }
    }
}

/// A *valid* grouping run must be arithmetically consistent with the
/// centralized reference: the grand-total count equals the snapshot
/// cardinality `C` (chaos worlds divide `C` evenly into partitions) and
/// the per-group counts sum to the grand total.
fn grouping_validity(run: &ChaosRun, out: &mut Vec<Violation>) {
    let (ChaosScenario::Grouping, Some(grand_set)) = (run.scenario, run.grand_total_set) else {
        return;
    };
    if !run.result.report.valid {
        return;
    }
    let expected = run.snapshot_cardinality as i64;
    let Some(QueryOutcome::Grouping(table)) = &run.result.report.outcome else {
        out.push(Violation::new(
            "grouping-validity",
            "run is valid but has no grouping outcome".into(),
        ));
        return;
    };
    let count = |row: &edgelet_ml::grouping::ResultRow| match row.aggregates.first() {
        Some(Value::Int(n)) => Some(*n),
        _ => None,
    };
    let grand: Vec<i64> = table
        .rows
        .iter()
        .filter(|r| r.set_index == grand_set)
        .filter_map(&count)
        .collect();
    if grand != vec![expected] {
        out.push(Violation::new(
            "grouping-validity",
            format!("valid run's grand-total counts are {grand:?}, expected [{expected}]"),
        ));
    }
    let group_sum: i64 = table
        .rows
        .iter()
        .filter(|r| r.set_index != grand_set)
        .filter_map(&count)
        .sum();
    if group_sum != expected {
        out.push(Violation::new(
            "grouping-validity",
            format!("valid run's per-group counts sum to {group_sum}, expected {expected}"),
        ));
    }
}

/// Completion respects the deadline; validity implies completion; and an
/// Overcollection plan's `(n, m)` must satisfy the binomial validity
/// model the planner provisioned it under (`query::resilience`).
fn deadline_feasibility(run: &ChaosRun, out: &mut Vec<Violation>) {
    let report = &run.result.report;
    if let Some(secs) = report.completion_secs {
        if secs > run.deadline_secs + 1e-6 {
            out.push(Violation::new(
                "deadline-feasibility",
                format!(
                    "completed at {secs:.3}s, after the {:.3}s deadline",
                    run.deadline_secs
                ),
            ));
        }
    }
    if report.valid && !report.completed {
        out.push(Violation::new(
            "deadline-feasibility",
            "run is valid but not completed".into(),
        ));
    }
    let plan = &run.result.plan;
    if plan.strategy == Strategy::Overcollection && run.resilience.failure_probability > 0.0 {
        // Mirror the planner's arithmetic: a partition pipeline spans one
        // builder and `v` computers; the combiner pool's survival budgets
        // the rest of the validity target.
        let p_dev = run.resilience.failure_probability;
        let v = plan.attr_groups.len() as i32;
        let p_partition = 1.0 - (1.0 - p_dev).powi(1 + v);
        let replicas = plan.combiners().len() as i32;
        let combiner_survival = 1.0 - p_dev.powi(replicas);
        let adjusted_target = if combiner_survival <= run.resilience.target_validity {
            0.999_999
        } else {
            (run.resilience.target_validity / combiner_survival).min(0.999_999)
        };
        let achieved = overcollection_validity(plan.n, plan.m, p_partition);
        if achieved + 1e-9 < adjusted_target {
            out.push(Violation::new(
                "deadline-feasibility",
                format!(
                    "overcollection (n={}, m={}) achieves validity {achieved:.6} \
                     under p_partition={p_partition:.4}, below the provisioned \
                     target {adjusted_target:.6}",
                    plan.n, plan.m
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_sim::{FaultPlan, TraceRecord};

    fn clean_run(scenario: ChaosScenario) -> ChaosRun {
        scenario.open(5, FaultPlan::new()).run().unwrap()
    }

    #[test]
    fn baselines_pass_every_oracle() {
        for s in ChaosScenario::ALL {
            let run = clean_run(s);
            let violations = check_run(&run);
            assert!(violations.is_empty(), "{}: {violations:?}", s.name());
        }
    }

    #[test]
    fn zombie_oracle_fires_on_a_forged_post_crash_send() {
        let mut run = clean_run(ChaosScenario::Grouping);
        let d = run.result.plan.combiner().device;
        let q = run.result.plan.querier().device;
        run.result.trace.push(TraceRecord {
            at: SimTime::from_micros(40_000_000),
            event: TraceEvent::organic_crash(d),
        });
        run.result.trace.push(TraceRecord {
            at: SimTime::from_micros(41_000_000),
            event: TraceEvent::Sent {
                from: d,
                to: q,
                bytes: 16,
            },
        });
        let violations = check_run(&run);
        assert!(violations.iter().any(|v| v.oracle == "zombie-send"));
    }

    #[test]
    fn validity_oracle_fires_on_a_forged_grand_total() {
        let mut run = clean_run(ChaosScenario::Grouping);
        if let Some(QueryOutcome::Grouping(table)) = &mut run.result.report.outcome {
            for row in &mut table.rows {
                if let Some(Value::Int(n)) = row.aggregates.first_mut() {
                    *n += 1;
                }
            }
        } else {
            panic!("grouping baseline must produce a table");
        }
        let violations = check_run(&run);
        assert!(violations.iter().any(|v| v.oracle == "grouping-validity"));
    }

    #[test]
    fn aggregates_oracle_fires_on_a_forged_double_charge() {
        // A single extra charge against the combiner — exactly what a
        // regressed idempotence guard would produce on one duplicated
        // partial — must already trip the trace-derived bound.
        let mut run = clean_run(ChaosScenario::Grouping);
        let d = run.result.plan.combiner().device;
        run.result.report.ledger.aggregates(d, 1);
        let violations = check_run(&run);
        assert!(
            violations
                .iter()
                .any(|v| v.oracle == "combiner-aggregates-bound"),
            "{violations:?}"
        );
    }

    #[test]
    fn signature_sorts_and_dedups() {
        let vs = vec![
            Violation::new("b", "x".into()),
            Violation::new("a", "y".into()),
            Violation::new("b", "z".into()),
        ];
        assert_eq!(signature(&vs), vec!["a".to_string(), "b".to_string()]);
    }
}
