//! Replayable repro corpus: one file per failing (or pinned-clean)
//! chaos run, line-oriented and diff-friendly.
//!
//! Format (`#` starts a comment, keys are `key = value`):
//!
//! ```text
//! # free-form description
//! version = 1
//! scenario = grouping
//! seed = 17
//! plan = dup-partials
//! expect = clean                      # or comma-separated oracle names
//! rule = duplicate kinds=4,6 from=* to=* skip=0 limit=* after_us=* until_us=* delay_us=5000
//! ```
//!
//! `rule` lines serialize the exact [`FaultRule`]s (one line per rule,
//! in evaluation order), so an entry replays bit-for-bit even if the
//! plan catalog evolves. Replaying runs the scenario under the stored
//! plan and compares the oracle signature against `expect` — a corpus
//! entry is a regression test for one invariant verdict.
//!
//! A *storage* entry carries `storage` lines instead of `rule` lines
//! (the two kinds are mutually exclusive — storage drills run the live
//! durable service over a clean network):
//!
//! ```text
//! storage = torn-tail at_append=2 keep=6
//! storage = failed-sync at_append=1 times=2
//! ```
//!
//! Replaying a storage entry runs the three-incarnation drill of
//! [`crate::storage`] (baseline, faulted, recovered) and compares the
//! recovered run's oracle signature — with the synthetic name
//! `storage-drained` for a deterministic drain — against `expect`.
//! Byte parity with the baseline is part of the verdict: a recovered
//! run that diverges never matches.

use crate::oracle::signature;
use crate::scenario::ChaosScenario;
use edgelet_sim::{Duration, FaultAction, FaultPlan, FaultRule, MsgMatch, SimTime};
use edgelet_store::{StorageFaultAction, StorageFaultPlan, StorageFaultRule};
use edgelet_util::ids::DeviceId;
use edgelet_util::{Error, Result};
use std::path::Path;

/// One corpus entry: a (scenario, seed, plan) triple plus the oracle
/// verdict it must replay to.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Scenario name (see [`ChaosScenario::name`]).
    pub scenario: String,
    /// World seed.
    pub seed: u64,
    /// Human-facing plan name (informational; the `rule` lines are
    /// authoritative).
    pub plan_name: String,
    /// Sorted oracle names expected to fire; empty means clean.
    pub expect: Vec<String>,
    /// The exact fault plan to replay.
    pub plan: FaultPlan,
    /// Storage faults to inject instead (empty for network entries;
    /// mutually exclusive with `plan` rules at replay time).
    pub storage: StorageFaultPlan,
    /// WAL segment-size override for storage drills (`None` = service
    /// default), so entries can pin faults at rotation boundaries.
    pub segment_bytes: Option<u64>,
}

/// Outcome of replaying one corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Oracle names that actually fired (sorted, deduplicated).
    pub oracles: Vec<String>,
    /// Trace digest of the replayed run.
    pub trace_digest: u64,
    /// Whether the verdict matches the entry's `expect` line.
    pub matches: bool,
}

fn invalid(msg: impl Into<String>) -> Error {
    Error::InvalidConfig(msg.into())
}

fn fmt_ids(ids: &Option<Vec<DeviceId>>) -> String {
    match ids {
        None => "*".into(),
        Some(v) => v
            .iter()
            .map(|d| d.raw().to_string())
            .collect::<Vec<_>>()
            .join(","),
    }
}

fn fmt_u16s(ks: &Option<Vec<u16>>) -> String {
    match ks {
        None => "*".into(),
        Some(v) => v
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(","),
    }
}

fn fmt_opt_time(t: &Option<SimTime>) -> String {
    match t {
        None => "*".into(),
        Some(t) => t.as_micros().to_string(),
    }
}

fn fmt_rule(rule: &FaultRule) -> String {
    let (action, delay_us) = match rule.action {
        FaultAction::Drop => ("drop", 0),
        FaultAction::Delay(d) => ("delay", d.as_micros()),
        FaultAction::Duplicate { extra_delay } => ("duplicate", extra_delay.as_micros()),
        FaultAction::Reorder => ("reorder", 0),
        FaultAction::CrashSender => ("crash-sender", 0),
        FaultAction::CrashReceiver => ("crash-receiver", 0),
    };
    format!(
        "{action} kinds={} from={} to={} skip={} limit={} after_us={} until_us={} delay_us={delay_us}",
        fmt_u16s(&rule.matcher.kinds),
        fmt_ids(&rule.matcher.from),
        fmt_ids(&rule.matcher.to),
        rule.skip,
        rule.limit.map_or("*".into(), |l| l.to_string()),
        fmt_opt_time(&rule.matcher.after),
        fmt_opt_time(&rule.matcher.until),
    )
}

fn parse_opt<T, F: Fn(&str) -> Result<T>>(s: &str, f: F) -> Result<Option<Vec<T>>> {
    if s == "*" {
        return Ok(None);
    }
    s.split(',')
        .map(|p| f(p.trim()))
        .collect::<Result<Vec<T>>>()
        .map(Some)
}

fn parse_u64(s: &str, what: &str) -> Result<u64> {
    s.parse::<u64>()
        .map_err(|_| invalid(format!("corpus: bad {what} value {s:?}")))
}

fn parse_rule(line: &str) -> Result<FaultRule> {
    let mut parts = line.split_whitespace();
    let action_name = parts
        .next()
        .ok_or_else(|| invalid("corpus: empty rule line"))?;
    let mut kinds = None;
    let mut from = None;
    let mut to = None;
    let mut skip = 0u64;
    let mut limit = None;
    let mut after = None;
    let mut until = None;
    let mut delay_us = 0u64;
    for field in parts {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| invalid(format!("corpus: bad rule field {field:?}")))?;
        match key {
            "kinds" => {
                kinds = parse_opt(value, |p| {
                    p.parse::<u16>()
                        .map_err(|_| invalid(format!("corpus: bad kind {p:?}")))
                })?
            }
            "from" => {
                from = parse_opt(value, |p| parse_u64(p, "device").map(DeviceId::new))?;
            }
            "to" => {
                to = parse_opt(value, |p| parse_u64(p, "device").map(DeviceId::new))?;
            }
            "skip" => skip = parse_u64(value, "skip")?,
            "limit" => {
                limit = if value == "*" {
                    None
                } else {
                    Some(parse_u64(value, "limit")?)
                }
            }
            "after_us" => {
                after = if value == "*" {
                    None
                } else {
                    Some(SimTime::from_micros(parse_u64(value, "after_us")?))
                }
            }
            "until_us" => {
                until = if value == "*" {
                    None
                } else {
                    Some(SimTime::from_micros(parse_u64(value, "until_us")?))
                }
            }
            "delay_us" => delay_us = parse_u64(value, "delay_us")?,
            other => return Err(invalid(format!("corpus: unknown rule field {other:?}"))),
        }
    }
    let action = match action_name {
        "drop" => FaultAction::Drop,
        "delay" => FaultAction::Delay(Duration::from_micros(delay_us)),
        "duplicate" => FaultAction::Duplicate {
            extra_delay: Duration::from_micros(delay_us),
        },
        "reorder" => FaultAction::Reorder,
        "crash-sender" => FaultAction::CrashSender,
        "crash-receiver" => FaultAction::CrashReceiver,
        other => return Err(invalid(format!("corpus: unknown action {other:?}"))),
    };
    Ok(FaultRule {
        matcher: MsgMatch {
            kinds,
            from,
            to,
            after,
            until,
        },
        action,
        skip,
        limit,
    })
}

fn fmt_storage_rule(rule: &StorageFaultRule) -> String {
    let param = match &rule.action {
        StorageFaultAction::TornTail { keep } | StorageFaultAction::TruncatedRecord { keep } => {
            format!("keep={keep}")
        }
        StorageFaultAction::FailedSync { times } => format!("times={times}"),
        StorageFaultAction::CorruptChecksum { byte } => format!("byte={byte}"),
    };
    format!(
        "{} at_append={} {param}",
        rule.action.name(),
        rule.at_append
    )
}

fn parse_storage_rule(line: &str) -> Result<StorageFaultRule> {
    let mut parts = line.split_whitespace();
    let action_name = parts
        .next()
        .ok_or_else(|| invalid("corpus: empty storage line"))?;
    let mut at_append = None;
    let mut keep = None;
    let mut times = None;
    let mut byte = None;
    for field in parts {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| invalid(format!("corpus: bad storage field {field:?}")))?;
        match key {
            "at_append" => at_append = Some(parse_u64(value, "at_append")?),
            "keep" => keep = Some(parse_u64(value, "keep")?),
            "times" => times = Some(parse_u64(value, "times")?),
            "byte" => byte = Some(parse_u64(value, "byte")?),
            other => return Err(invalid(format!("corpus: unknown storage field {other:?}"))),
        }
    }
    let missing = |what: &str| invalid(format!("corpus: storage {action_name} missing {what}"));
    let action = match action_name {
        "torn-tail" => StorageFaultAction::TornTail {
            keep: keep.ok_or_else(|| missing("keep"))?,
        },
        "truncated-record" => StorageFaultAction::TruncatedRecord {
            keep: keep.ok_or_else(|| missing("keep"))?,
        },
        "failed-sync" => StorageFaultAction::FailedSync {
            times: u32::try_from(times.ok_or_else(|| missing("times"))?)
                .map_err(|_| invalid("corpus: storage times out of range"))?,
        },
        "corrupt-checksum" => StorageFaultAction::CorruptChecksum {
            byte: byte.ok_or_else(|| missing("byte"))?,
        },
        other => return Err(invalid(format!("corpus: unknown storage action {other:?}"))),
    };
    Ok(StorageFaultRule {
        at_append: at_append.ok_or_else(|| missing("at_append"))?,
        action,
    })
}

impl CorpusEntry {
    /// Serializes the entry (inverse of [`CorpusEntry::parse`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("version = 1\n");
        out.push_str(&format!("scenario = {}\n", self.scenario));
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("plan = {}\n", self.plan_name));
        out.push_str(&format!(
            "expect = {}\n",
            if self.expect.is_empty() {
                "clean".to_string()
            } else {
                self.expect.join(",")
            }
        ));
        for rule in &self.plan.rules {
            out.push_str(&format!("rule = {}\n", fmt_rule(rule)));
        }
        for rule in &self.storage.rules {
            out.push_str(&format!("storage = {}\n", fmt_storage_rule(rule)));
        }
        if let Some(bytes) = self.segment_bytes {
            out.push_str(&format!("segment_bytes = {bytes}\n"));
        }
        out
    }

    /// Parses an entry from its textual form.
    pub fn parse(text: &str) -> Result<CorpusEntry> {
        let mut scenario = None;
        let mut seed = None;
        let mut plan_name = None;
        let mut expect = None;
        let mut rules = Vec::new();
        let mut storage_rules = Vec::new();
        let mut segment_bytes = None;
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| invalid(format!("corpus: bad line {line:?}")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "version" => {
                    if value != "1" {
                        return Err(invalid(format!("corpus: unsupported version {value:?}")));
                    }
                }
                "scenario" => scenario = Some(value.to_string()),
                "seed" => seed = Some(parse_u64(value, "seed")?),
                "plan" => plan_name = Some(value.to_string()),
                "expect" => {
                    expect = Some(if value == "clean" {
                        Vec::new()
                    } else {
                        value.split(',').map(|s| s.trim().to_string()).collect()
                    })
                }
                "rule" => rules.push(parse_rule(value)?),
                "storage" => storage_rules.push(parse_storage_rule(value)?),
                "segment_bytes" => {
                    segment_bytes = Some(parse_u64(value, "segment_bytes")?);
                }
                other => return Err(invalid(format!("corpus: unknown key {other:?}"))),
            }
        }
        Ok(CorpusEntry {
            scenario: scenario.ok_or_else(|| invalid("corpus: missing scenario"))?,
            seed: seed.ok_or_else(|| invalid("corpus: missing seed"))?,
            plan_name: plan_name.ok_or_else(|| invalid("corpus: missing plan"))?,
            expect: expect.ok_or_else(|| invalid("corpus: missing expect"))?,
            plan: FaultPlan { rules },
            storage: StorageFaultPlan {
                rules: storage_rules,
            },
            segment_bytes,
        })
    }

    /// Replays the entry and compares the oracle verdict.
    pub fn replay(&self) -> Result<ReplayReport> {
        self.replay_with_shards(1)
    }

    /// [`CorpusEntry::replay`] under an explicit simulator shard count.
    /// The report is bit-identical for every value. Storage entries
    /// run the durability drill instead of the sharded simulator (the
    /// drill has no shard knob; the count is ignored).
    pub fn replay_with_shards(&self, shards: usize) -> Result<ReplayReport> {
        let scenario = ChaosScenario::from_name(&self.scenario)
            .ok_or_else(|| invalid(format!("corpus: unknown scenario {:?}", self.scenario)))?;
        if !self.storage.rules.is_empty() {
            if !self.plan.rules.is_empty() {
                return Err(invalid(
                    "corpus: an entry cannot mix rule and storage lines (storage \
                     drills run the durable live service over a clean network)",
                ));
            }
            let drill = crate::storage::run_storage_drill_with(
                scenario,
                self.seed,
                &self.storage,
                self.segment_bytes,
            )?;
            let matches = drill.acceptable() && drill.oracles == self.expect;
            return Ok(ReplayReport {
                oracles: drill.oracles,
                trace_digest: drill.trace_digest,
                matches,
            });
        }
        let (violations, trace_digest) =
            crate::campaign::run_one_sharded(scenario, self.seed, &self.plan, shards)?;
        let oracles = signature(&violations);
        let matches = oracles == self.expect;
        Ok(ReplayReport {
            oracles,
            trace_digest,
            matches,
        })
    }
}

/// Loads every `*.chaos` entry in a directory, sorted by file name.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, CorpusEntry)>> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| invalid(format!("corpus: cannot read {}: {e}", dir.display())))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "chaos"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| invalid(format!("corpus: cannot read {}: {e}", path.display())))?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let entry =
            CorpusEntry::parse(&text).map_err(|e| invalid(format!("corpus: {name}: {e}")))?;
        out.push((name, entry));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plans::plan_for_seed;

    #[test]
    fn entries_round_trip_through_text() {
        for scenario in ChaosScenario::ALL {
            for seed in [2u64, 5, 6] {
                let named = plan_for_seed(scenario, seed).unwrap();
                let entry = CorpusEntry {
                    scenario: scenario.name().to_string(),
                    seed,
                    plan_name: named.name.to_string(),
                    expect: Vec::new(),
                    plan: named.plan,
                    storage: StorageFaultPlan::new(),
                    segment_bytes: None,
                };
                let parsed = CorpusEntry::parse(&entry.to_text()).unwrap();
                assert_eq!(parsed, entry);
            }
        }
    }

    #[test]
    fn comments_and_expect_lists_parse() {
        let text = "\
# a failing repro
version = 1
scenario = grouping
seed = 3
plan = hand-written
expect = zombie-send,liability-cap
rule = drop kinds=4 from=1,2 to=* skip=2 limit=1 after_us=1000 until_us=* delay_us=0
";
        let entry = CorpusEntry::parse(text).unwrap();
        assert_eq!(entry.expect, vec!["zombie-send", "liability-cap"]);
        assert_eq!(entry.plan.rules.len(), 1);
        assert_eq!(entry.plan.rules[0].skip, 2);
        assert_eq!(entry.plan.rules[0].limit, Some(1));
        let text2 = entry.to_text();
        assert_eq!(CorpusEntry::parse(&text2).unwrap(), entry);
    }

    #[test]
    fn storage_entries_round_trip_through_text() {
        let entry = CorpusEntry {
            scenario: "grouping".into(),
            seed: 5,
            plan_name: "storage-torn-tail".into(),
            expect: Vec::new(),
            plan: FaultPlan::new(),
            storage: StorageFaultPlan::new()
                .with(2, StorageFaultAction::TornTail { keep: 6 })
                .with(3, StorageFaultAction::TruncatedRecord { keep: 4 })
                .with(1, StorageFaultAction::FailedSync { times: 2 })
                .with(4, StorageFaultAction::CorruptChecksum { byte: 8 }),
            segment_bytes: Some(256),
        };
        let text = entry.to_text();
        assert!(
            text.contains("storage = torn-tail at_append=2 keep=6"),
            "{text}"
        );
        assert!(text.contains("segment_bytes = 256"), "{text}");
        assert_eq!(CorpusEntry::parse(&text).unwrap(), entry);
    }

    #[test]
    fn mixed_rule_and_storage_entries_refuse_to_replay() {
        let text = "\
version = 1
scenario = grouping
seed = 1
plan = mixed
expect = clean
rule = drop kinds=* from=* to=* skip=0 limit=* after_us=* until_us=* delay_us=0
storage = torn-tail at_append=2 keep=6
";
        let entry = CorpusEntry::parse(text).unwrap();
        assert!(entry.replay().is_err());
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(CorpusEntry::parse("scenario = grouping").is_err());
        assert!(CorpusEntry::parse(
            "version = 2\nscenario = g\nseed = 1\nplan = p\nexpect = clean"
        )
        .is_err());
        assert!(CorpusEntry::parse(
            "version = 1\nscenario = g\nseed = 1\nplan = p\nexpect = clean\nrule = explode"
        )
        .is_err());
        // Storage lines with unknown actions or missing parameters.
        for bad in [
            "storage = melt at_append=1",
            "storage = torn-tail keep=6",
            "storage = torn-tail at_append=2",
            "storage = failed-sync at_append=1 times=5000000000",
        ] {
            let text =
                format!("version = 1\nscenario = g\nseed = 1\nplan = p\nexpect = clean\n{bad}");
            assert!(CorpusEntry::parse(&text).is_err(), "{bad}");
        }
    }

    /// Regenerates the shipped corpus under `tests/chaos_corpus/` at the
    /// workspace root. Run after an intentional oracle or catalog change:
    ///
    /// ```text
    /// cargo test -p edgelet-chaos regenerate_corpus -- --ignored
    /// ```
    ///
    /// Every regenerated pin must come out clean — these entries exist to
    /// catch regressions of fixed invariants (e.g. the combiner ledger
    /// double-charge on duplicate partials), so a non-clean verdict at
    /// generation time means the codebase itself is broken.
    #[test]
    #[ignore = "writes tests/chaos_corpus; run explicitly after oracle/catalog changes"]
    fn regenerate_corpus() {
        use crate::campaign::run_one;
        use crate::plans::by_name;

        let pins: [(ChaosScenario, u64, &str, &str); 3] = [
            (
                ChaosScenario::Grouping,
                5,
                "dup-partials",
                "Pins the combiner idempotence guard: a duplicated grouping\n\
                 # partial must be merged and ledger-charged at most once, or the\n\
                 # liability-cap / combiner-aggregates-bound oracles fire.",
            ),
            (
                ChaosScenario::Grouping,
                7,
                "crash-combiner-on-first-partial",
                "Pins combiner failover: the primary dies on its first partial;\n\
                 # the backup replica must take over without ever being active\n\
                 # concurrently with a live lower rank (single-active-replica).",
            ),
            (
                ChaosScenario::KMeans,
                11,
                "crash-sender-on-final",
                "Pins crash semantics: a device crashed while sending the final\n\
                 # result must never transmit after its crash instant\n\
                 # (zombie-send).",
            ),
        ];
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/chaos_corpus");
        std::fs::create_dir_all(&dir).unwrap();
        for (scenario, seed, plan_name, comment) in pins {
            let named = by_name(scenario, seed, plan_name)
                .unwrap()
                .unwrap_or_else(|| panic!("no catalog plan `{plan_name}`"));
            let (violations, _digest) = run_one(scenario, seed, &named.plan).unwrap();
            let expect = signature(&violations);
            assert!(
                expect.is_empty(),
                "{}/{plan_name} pin must be clean, got {expect:?}",
                scenario.name()
            );
            let entry = CorpusEntry {
                scenario: scenario.name().to_string(),
                seed,
                plan_name: plan_name.to_string(),
                expect,
                plan: named.plan,
                storage: StorageFaultPlan::new(),
                segment_bytes: None,
            };
            let file = dir.join(format!("{}-{plan_name}-seed{seed}.chaos", scenario.name()));
            std::fs::write(&file, format!("# {comment}\n{}", entry.to_text())).unwrap();
        }

        // Storage pin: a torn tail on the completion append (the media
        // dies mid-write) must be repaired on restart, and the recovered
        // run must be byte-identical to the uninterrupted baseline and
        // oracle-clean.
        let storage = StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 6 });
        let drill =
            crate::storage::run_storage_drill(ChaosScenario::Grouping, 5, &storage).unwrap();
        assert!(
            drill.parity && drill.oracles.is_empty() && drill.repaired_tail,
            "storage pin must be clean, got {drill:?}"
        );
        let entry = CorpusEntry {
            scenario: ChaosScenario::Grouping.name().to_string(),
            seed: 5,
            plan_name: "storage-torn-tail".to_string(),
            expect: Vec::new(),
            plan: FaultPlan::new(),
            storage,
            segment_bytes: None,
        };
        let comment = "Pins crash-restart durability: a WAL append torn mid-write\n\
                       # (power cut) is repaired on recovery and the interrupted query\n\
                       # finishes byte-identical to an uninterrupted run.";
        let file = dir.join("grouping-storage-torn-tail-seed5.chaos");
        std::fs::write(&file, format!("# {comment}\n{}", entry.to_text())).unwrap();

        // Segment-boundary pin: the same torn tail, but with 256-byte WAL
        // segments so the completion append lands in a freshly rotated
        // active segment. Recovery must leave the sealed segment intact,
        // repair only the active tail, and still reach byte parity.
        let storage = StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 6 });
        let drill =
            crate::storage::run_storage_drill_with(ChaosScenario::Grouping, 5, &storage, Some(256))
                .unwrap();
        assert!(
            drill.parity && drill.oracles.is_empty() && drill.repaired_tail,
            "segment-boundary pin must be clean, got {drill:?}"
        );
        let entry = CorpusEntry {
            scenario: ChaosScenario::Grouping.name().to_string(),
            seed: 5,
            plan_name: "storage-segment-boundary".to_string(),
            expect: Vec::new(),
            plan: FaultPlan::new(),
            storage,
            segment_bytes: Some(256),
        };
        let comment = "Pins segment-boundary recovery: with 256-byte WAL segments the\n\
                       # torn completion append lands just after a rotation, so restart\n\
                       # must keep the sealed segment untouched, repair only the active\n\
                       # tail, and finish byte-identical to an uninterrupted run.";
        let file = dir.join("grouping-storage-segment-boundary-seed5.chaos");
        std::fs::write(&file, format!("# {comment}\n{}", entry.to_text())).unwrap();
    }

    #[test]
    fn baseline_entry_replays_clean() {
        let entry = CorpusEntry {
            scenario: "kmeans".into(),
            seed: 0,
            plan_name: "baseline".into(),
            expect: Vec::new(),
            plan: FaultPlan::new(),
            storage: StorageFaultPlan::new(),
            segment_bytes: None,
        };
        let report = entry.replay().unwrap();
        assert!(report.matches, "oracles fired: {:?}", report.oracles);
    }
}
