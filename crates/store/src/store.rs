//! The per-edgelet data store: insert, scan, project, sample.

use crate::expr::Predicate;
use crate::row::Row;
use crate::schema::Schema;
use edgelet_util::rng::DetRng;
use edgelet_util::Result;
use edgelet_wire::{Decode, Encode, Reader, Writer};

/// An in-memory row store conforming to a schema.
///
/// One instance lives on each edgelet (on the home box it would sit on
/// the micro-SD card). The working set is memory-resident for speed;
/// durability is layered underneath, not bolted on here: service-level
/// state (liability ledgers, epochs, in-flight query intents) is
/// persisted through the [`crate::durable::DurableBackend`] trait as a
/// checksummed write-ahead log plus periodic checkpoints, and replayed
/// idempotently on restart — see [`crate::wal`] and `docs/STORAGE.md`
/// for the recovery model.
#[derive(Debug, Clone)]
pub struct DataStore {
    schema: Schema,
    rows: Vec<Row>,
}

impl DataStore {
    /// Creates an empty store.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts one row after validating it against the schema.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.schema.check_row(row.values())?;
        self.rows.push(row);
        Ok(())
    }

    /// Inserts many rows; stops at the first invalid one.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// All rows (in insertion order).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Rows satisfying the predicate.
    pub fn scan(&self, predicate: &Predicate) -> Result<Vec<Row>> {
        predicate.validate(&self.schema)?;
        let mut out = Vec::new();
        for row in &self.rows {
            if predicate.eval(&self.schema, row)? {
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    /// Number of rows satisfying the predicate, without materializing them.
    pub fn count(&self, predicate: &Predicate) -> Result<usize> {
        predicate.validate(&self.schema)?;
        let mut n = 0;
        for row in &self.rows {
            if predicate.eval(&self.schema, row)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Rows satisfying the predicate, projected onto `columns`.
    pub fn scan_project(&self, predicate: &Predicate, columns: &[&str]) -> Result<Vec<Row>> {
        predicate.validate(&self.schema)?;
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.index_of(c))
            .collect::<Result<_>>()?;
        let mut out = Vec::new();
        for row in &self.rows {
            if predicate.eval(&self.schema, row)? {
                out.push(Row::new(
                    idx.iter().map(|&i| row.values()[i].clone()).collect(),
                ));
            }
        }
        Ok(out)
    }

    /// Uniform reservoir sample of up to `k` rows satisfying the predicate
    /// (Vitter's algorithm R; single pass, deterministic under the RNG).
    pub fn sample(&self, predicate: &Predicate, k: usize, rng: &mut DetRng) -> Result<Vec<Row>> {
        predicate.validate(&self.schema)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        let mut reservoir: Vec<Row> = Vec::with_capacity(k);
        let mut seen = 0usize;
        for row in &self.rows {
            if !predicate.eval(&self.schema, row)? {
                continue;
            }
            seen += 1;
            if reservoir.len() < k {
                reservoir.push(row.clone());
            } else {
                let j = rng.range(0..seen);
                if j < k {
                    reservoir[j] = row.clone();
                }
            }
        }
        Ok(reservoir)
    }
}

impl Encode for DataStore {
    fn encode(&self, w: &mut Writer) {
        self.schema.encode(w);
        self.rows.encode(w);
    }
}

impl Decode for DataStore {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let schema = Schema::decode(r)?;
        let rows = Vec::<Row>::decode(r)?;
        // Re-validate: the wire may carry rows that no longer fit the
        // schema (corruption or version skew).
        let mut store = DataStore::new(schema);
        store.insert_all(rows)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::value::{ColumnType, Value};
    use proptest::prelude::*;

    fn store_with(n: i64) -> DataStore {
        let schema =
            Schema::new(vec![("age", ColumnType::Int), ("bmi", ColumnType::Float)]).unwrap();
        let mut s = DataStore::new(schema);
        for i in 0..n {
            s.insert(Row::new(vec![
                Value::Int(i),
                Value::Float(20.0 + (i % 10) as f64),
            ]))
            .unwrap();
        }
        s
    }

    #[test]
    fn insert_validates() {
        let mut s = store_with(0);
        assert!(s.is_empty());
        assert!(s
            .insert(Row::new(vec![Value::Text("x".into()), Value::Float(1.0)]))
            .is_err());
        assert!(s.insert(Row::new(vec![Value::Int(1)])).is_err());
        s.insert(Row::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn scan_and_count() {
        let s = store_with(100);
        let p = Predicate::cmp("age", CmpOp::Ge, Value::Int(90));
        let rows = s.scan(&p).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(s.count(&p).unwrap(), 10);
        assert_eq!(s.count(&Predicate::True).unwrap(), 100);
        // Unknown column errors.
        assert!(s
            .scan(&Predicate::cmp("zzz", CmpOp::Eq, Value::Int(1)))
            .is_err());
    }

    #[test]
    fn scan_project_shapes() {
        let s = store_with(10);
        let rows = s
            .scan_project(&Predicate::cmp("age", CmpOp::Lt, Value::Int(3)), &["bmi"])
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.arity() == 1));
    }

    #[test]
    fn sample_size_and_membership() {
        let s = store_with(1000);
        let mut rng = DetRng::new(7);
        let p = Predicate::cmp("age", CmpOp::Lt, Value::Int(500));
        let sample = s.sample(&p, 50, &mut rng).unwrap();
        assert_eq!(sample.len(), 50);
        for r in &sample {
            assert!(r.values()[0].as_i64().unwrap() < 500);
        }
        // Requesting more than available returns all matching.
        let small = s
            .sample(
                &Predicate::cmp("age", CmpOp::Lt, Value::Int(5)),
                50,
                &mut rng,
            )
            .unwrap();
        assert_eq!(small.len(), 5);
        assert!(s.sample(&p, 0, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Sample 1 from 10 rows many times; each row should appear ~10%.
        let s = store_with(10);
        let mut rng = DetRng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let sample = s.sample(&Predicate::True, 1, &mut rng).unwrap();
            let v = sample[0].values()[0].as_i64().unwrap() as usize;
            counts[v] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 1000.0).abs() < 150.0,
                "row {i} sampled {c} times"
            );
        }
    }

    #[test]
    fn wire_roundtrip_revalidates() {
        let store = store_with(25);
        let bytes = edgelet_wire::to_bytes(&store);
        let back: DataStore = edgelet_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back.rows(), store.rows());
        assert_eq!(back.schema(), store.schema());
    }

    proptest! {
        #[test]
        fn prop_scan_equals_filter(ages in prop::collection::vec(-100i64..100, 0..200), cut in -100i64..100) {
            let schema = Schema::new(vec![("age", ColumnType::Int)]).unwrap();
            let mut s = DataStore::new(schema);
            for a in &ages {
                s.insert(Row::new(vec![Value::Int(*a)])).unwrap();
            }
            let p = Predicate::cmp("age", CmpOp::Gt, Value::Int(cut));
            let got = s.scan(&p).unwrap().len();
            let want = ages.iter().filter(|&&a| a > cut).count();
            prop_assert_eq!(got, want);
            prop_assert_eq!(s.count(&p).unwrap(), want);
        }

        #[test]
        fn prop_sample_subset_of_matching(
            ages in prop::collection::vec(0i64..50, 0..100),
            k in 0usize..20,
            seed in any::<u64>(),
        ) {
            let schema = Schema::new(vec![("age", ColumnType::Int)]).unwrap();
            let mut s = DataStore::new(schema);
            for a in &ages {
                s.insert(Row::new(vec![Value::Int(*a)])).unwrap();
            }
            let p = Predicate::cmp("age", CmpOp::Ge, Value::Int(25));
            let matching = ages.iter().filter(|&&a| a >= 25).count();
            let mut rng = DetRng::new(seed);
            let sample = s.sample(&p, k, &mut rng).unwrap();
            prop_assert_eq!(sample.len(), k.min(matching));
            for r in &sample {
                prop_assert!(r.values()[0].as_i64().unwrap() >= 25);
            }
        }
    }
}
