//! Group-commit front end over a [`DurableBackend`]: coalesced syncs,
//! size-triggered segment rotation, and checkpoint-aware compaction.
//!
//! [`GroupCommitLog`] amortizes the dominant cost of the durable submit
//! path — the per-record `sync` — by batching concurrent appenders into
//! one framed batch flushed with a **single** sync per commit window.
//! The protocol is classic leader/follower:
//!
//! 1. every appender frames its record *outside* any lock (the CRC-32
//!    is the expensive part) and enqueues it under the queue mutex;
//! 2. if no flush is in flight, the appender elects itself **leader**,
//!    optionally waits out the configured commit window to let more
//!    records pile in (bounded by time *and* bytes), then takes the
//!    whole queue as one batch, appends it, and issues one sync;
//! 3. everyone else is a **follower**: it parks on a condvar and is
//!    woken when its record's batch is durable. When the leader
//!    finishes it hands leadership off, so a submitter never flushes
//!    someone else's later batch — the live `QueryService` submit path
//!    blocks only on the sync that covers its *own* record.
//!
//! Batches are appended through [`DurableBackend::append_batch`], which
//! fault-injection decorators implement record-by-record: a
//! [`crate::StorageFaultPlan`] indexed by append number fires at the
//! same record whether it arrives alone or mid-batch.
//!
//! Rotation: when the active segment would grow past
//! [`GroupCommitConfig::segment_bytes`], the leader seals it with
//! [`DurableBackend::rotate_wal`] before appending, so records never
//! span segments. Checkpoints rotate too, and delete sealed segments
//! once the caller vouches that every record in them is subsumed by the
//! checkpoint blob (see [`GroupCommitLog::checkpoint`]) — that is what
//! keeps long-lived daemons at bounded disk.

use crate::durable::{DurableBackend, FrameRef, StorageError, StorageResult};
use crate::wal::{frame_header, frame_record, DurableLog, Recovered, RetryPolicy};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Default segment-rotation threshold (4 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// Default byte bound of one commit window (1 MiB): a leader flushes as
/// soon as at least this much is queued, regardless of the time window.
pub const DEFAULT_WINDOW_BYTES: usize = 1 << 20;

/// Tuning for [`GroupCommitLog`].
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Extra time a leader waits for companions before flushing.
    /// `Duration::ZERO` (the default) flushes immediately; batching
    /// still happens naturally under contention, because everything
    /// queued while the previous flush was in flight commits together.
    pub window: Duration,
    /// Byte bound of the window: once at least this much is queued the
    /// leader flushes without waiting out the time window.
    pub window_bytes: usize,
    /// Rotate the active segment once it would grow past this many
    /// bytes (`0` disables rotation: one unbounded segment).
    pub segment_bytes: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            window: Duration::ZERO,
            window_bytes: DEFAULT_WINDOW_BYTES,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// Records queued for the next commit window, plus the leader/follower
/// bookkeeping. Tickets are assigned at enqueue time; `durable_ticket`
/// is the fence below which every record is on durable media.
#[derive(Debug, Default)]
struct CommitQueue {
    /// Framed records waiting for the next batch, oldest first.
    entries: Vec<Vec<u8>>,
    /// Total framed bytes in `entries`.
    bytes: usize,
    /// Ticket of `entries[0]`.
    first_ticket: u64,
    /// Ticket handed to the next enqueued record.
    next_ticket: u64,
    /// Every ticket below this is durable.
    durable_ticket: u64,
    /// A leader is currently flushing (or coalescing).
    leader: bool,
    /// Set when a flush failed after retries: the log stops accepting
    /// appends and every waiter (and later caller) sees the error. The
    /// service reacts by draining to read-only, matching single-record
    /// append failures.
    dead: Option<StorageError>,
}

/// Serialized access to the backend for flush/checkpoint I/O, plus the
/// running byte length of the active segment (for rotation decisions).
#[derive(Debug)]
struct CommitIo {
    active_len: u64,
}

/// The group-commit log: a [`DurableLog`] (recovery, checkpoints,
/// retries) plus the leader/follower commit queue.
pub struct GroupCommitLog {
    log: DurableLog,
    config: GroupCommitConfig,
    queue: Mutex<CommitQueue>,
    queue_wake: Condvar,
    io: Mutex<CommitIo>,
}

impl std::fmt::Debug for GroupCommitLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitLog")
            .field("config", &self.config)
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl GroupCommitLog {
    /// Wraps a backend with group commit under `config`.
    pub fn new(
        backend: Arc<dyn DurableBackend>,
        retry: RetryPolicy,
        config: GroupCommitConfig,
    ) -> Self {
        GroupCommitLog {
            log: DurableLog::new(backend, retry),
            config,
            queue: Mutex::new(CommitQueue::default()),
            queue_wake: Condvar::new(),
            io: Mutex::new(CommitIo { active_len: 0 }),
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &Arc<dyn DurableBackend> {
        self.log.backend()
    }

    /// The active configuration.
    pub fn config(&self) -> &GroupCommitConfig {
        &self.config
    }

    /// Commits one record and returns once it is durable (its commit
    /// window's single sync has succeeded). Concurrent callers are
    /// coalesced into one batch + one sync.
    pub fn commit(&self, payload: &[u8]) -> StorageResult<()> {
        // CRC + framing run outside every lock: concurrent appenders
        // checksum in parallel.
        let frame = frame_record(payload);
        let frame_len = frame.len();
        let mut q = lock(&self.queue);
        if let Some(e) = &q.dead {
            return Err(e.clone());
        }
        let ticket = q.next_ticket;
        q.next_ticket += 1;
        q.entries.push(frame);
        q.bytes += frame_len;
        loop {
            if ticket < q.durable_ticket {
                return Ok(());
            }
            if let Some(e) = &q.dead {
                return Err(e.clone());
            }
            if !q.leader {
                // Become leader: flush the batch containing my record.
                q.leader = true;
                if !self.config.window.is_zero() && q.bytes < self.config.window_bytes {
                    // Coalesce: give companions one bounded window to
                    // join the batch. The wait releases the queue lock,
                    // so enqueuers are never blocked by it.
                    let (guard, _) = self
                        .queue_wake
                        .wait_timeout(q, self.config.window)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                }
                let batch = std::mem::take(&mut q.entries);
                let batch_start = q.first_ticket;
                let batch_end = batch_start + batch.len() as u64;
                q.first_ticket = batch_end;
                q.bytes = 0;
                drop(q);
                let result = self.flush(&batch);
                q = lock(&self.queue);
                match result {
                    Ok(()) => q.durable_ticket = batch_end,
                    Err(e) => q.dead = Some(e),
                }
                // Hand leadership off before reporting: a waiter whose
                // record is still queued elects itself next.
                q.leader = false;
                self.queue_wake.notify_all();
                continue;
            }
            q = self.queue_wake.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Commits a pre-collected batch of records and returns once all
    /// of them are durable under one sync (plus any rotation the batch
    /// forces). The fast path for bulk journaling: only the 13-byte
    /// frame headers are materialized — payload bytes go to the media
    /// straight from the caller's buffers (see [`FrameRef`]) — and the
    /// media sees one write + one sync.
    pub fn commit_all(&self, payloads: &[Vec<u8>]) -> StorageResult<()> {
        if payloads.is_empty() {
            return Ok(());
        }
        if let Some(e) = &lock(&self.queue).dead {
            return Err(e.clone());
        }
        let heads: Vec<([u8; 13], usize)> = payloads.iter().map(|p| frame_header(p)).collect();
        // One FrameRef per record (not one merged slice) so
        // fault-injection decorators still see each record at its own
        // append index.
        let refs: Vec<FrameRef<'_>> = payloads
            .iter()
            .zip(&heads)
            .map(|(p, (head, n))| FrameRef {
                head: &head[..*n],
                tail: p,
            })
            .collect();
        self.flush_refs(&refs)
    }

    /// Rotation-aware batch flush: one `append_batch` + one `sync`,
    /// sealing the active segment first when the batch would overflow
    /// it. Holds the I/O lock so checkpoints and other flushes
    /// serialize at the media.
    fn flush(&self, frames: &[Vec<u8>]) -> StorageResult<()> {
        let refs: Vec<FrameRef<'_>> = frames.iter().map(|f| FrameRef::whole(f)).collect();
        self.flush_refs(&refs)
    }

    /// [`flush`](Self::flush) over borrowed frames.
    fn flush_refs(&self, refs: &[FrameRef<'_>]) -> StorageResult<()> {
        let batch_len: u64 = refs.iter().map(|f| f.len() as u64).sum();
        let mut io = lock(&self.io);
        if self.config.segment_bytes > 0
            && io.active_len > 0
            && io.active_len + batch_len > self.config.segment_bytes
        {
            // lint: allow(E132 the io mutex exists to serialize media access; contenders are other flushes and checkpoints that must wait for the media anyway, never condvar followers)
            self.log.rotate()?;
            io.active_len = 0;
        }
        // lint: allow(E132 the io mutex exists to serialize media access; contenders are other flushes and checkpoints that must wait for the media anyway, never condvar followers)
        self.log.append_batch(refs)?;
        io.active_len += batch_len;
        Ok(())
    }

    /// Writes the checkpoint blob, seals the WAL behind a fresh active
    /// segment, and — when `drop_sealed` vouches that every sealed
    /// record is covered by the blob — deletes the sealed segments.
    ///
    /// Callers pass `drop_sealed = false` when a record may be durable
    /// in the WAL but not yet folded into the blob (e.g. a completion
    /// synced by another thread that has not applied it yet); the
    /// sealed segments then survive until a later checkpoint can vouch
    /// for them, trading deferred disk for never losing an
    /// acknowledged record.
    pub fn checkpoint(&self, state: &[u8], drop_sealed: bool) -> StorageResult<()> {
        let mut io = lock(&self.io);
        // lint: allow(E132 the io mutex exists to serialize media access; a checkpoint must exclude concurrent flushes for the whole rotate/write/compact sequence)
        self.log.rotate()?;
        io.active_len = 0;
        // lint: allow(E132 the io mutex exists to serialize media access; a checkpoint must exclude concurrent flushes for the whole rotate/write/compact sequence)
        self.log.write_checkpoint(state)?;
        if drop_sealed {
            // lint: allow(E132 the io mutex exists to serialize media access; a checkpoint must exclude concurrent flushes for the whole rotate/write/compact sequence)
            self.log.drop_sealed()?;
        }
        Ok(())
    }

    /// Delegates to [`DurableLog::recover`], then aligns the rotation
    /// accounting with what is actually on the media.
    pub fn recover(&self) -> StorageResult<Recovered> {
        // Recovery runs before any concurrent committer exists, so the
        // media work happens lock-free and only the accounting update
        // takes the io lock.
        let recovered = self.log.recover()?;
        let active_len = self
            .log
            .segment_sizes()?
            .last()
            .copied()
            .unwrap_or_default();
        lock(&self.io).active_len = active_len;
        Ok(recovered)
    }

    /// Byte length of each live segment, oldest first (disk
    /// accounting; the CI bounded-disk smoke sums this).
    pub fn segment_sizes(&self) -> StorageResult<Vec<u64>> {
        self.log.segment_sizes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{FaultyBackend, MemBackend, StorageFaultAction, StorageFaultPlan};
    use crate::wal::TailState;

    fn log_over(backend: Arc<MemBackend>, config: GroupCommitConfig) -> GroupCommitLog {
        GroupCommitLog::new(backend, RetryPolicy::immediate(3), config)
    }

    fn no_rotation() -> GroupCommitConfig {
        GroupCommitConfig {
            segment_bytes: 0,
            ..GroupCommitConfig::default()
        }
    }

    #[test]
    fn sequential_appends_recover_in_order() {
        let backend = Arc::new(MemBackend::new());
        let log = log_over(backend.clone(), no_rotation());
        log.commit(b"one").unwrap();
        log.commit(b"two").unwrap();
        log.commit_all(&[b"three".to_vec(), b"four".to_vec()])
            .unwrap();
        let rec = log.recover().unwrap();
        let owned: Vec<Vec<u8>> = rec.records.iter().map(|p| p.to_vec()).collect();
        assert_eq!(
            owned,
            vec![
                b"one".to_vec(),
                b"two".to_vec(),
                b"three".to_vec(),
                b"four".to_vec()
            ]
        );
    }

    #[test]
    fn concurrent_appenders_coalesce_and_all_commit() {
        let backend = Arc::new(MemBackend::new());
        let log = Arc::new(log_over(
            backend.clone(),
            GroupCommitConfig {
                window: Duration::from_millis(2),
                ..no_rotation()
            },
        ));
        let threads: Vec<_> = (0..8u8)
            .map(|i| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || log.commit(&[i; 64]).unwrap())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let rec = log.recover().unwrap();
        assert_eq!(rec.records.len(), 8);
        let mut seen: Vec<u8> = rec.records.iter().map(|r| r.as_slice()[0]).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u8>>());
    }

    #[test]
    fn batches_rotate_segments_at_the_size_threshold() {
        let backend = Arc::new(MemBackend::new());
        let log = log_over(
            backend.clone(),
            GroupCommitConfig {
                segment_bytes: 64,
                ..GroupCommitConfig::default()
            },
        );
        for i in 0..6u8 {
            log.commit(&[i; 40]).unwrap();
        }
        // 40-byte records frame to 46 bytes; each pair overflows the
        // 64-byte segment cap, so every record after the first starts
        // a fresh segment.
        assert!(backend.segment_count() > 1, "rotation never fired");
        let rec = log.recover().unwrap();
        assert_eq!(rec.records.len(), 6);
        assert_eq!(rec.segments, backend.segment_count());
    }

    #[test]
    fn checkpoint_rotates_and_drops_subsumed_segments() {
        let backend = Arc::new(MemBackend::new());
        let log = log_over(backend.clone(), no_rotation());
        log.commit(b"a").unwrap();
        log.commit(b"b").unwrap();
        log.checkpoint(b"blob-ab", true).unwrap();
        assert_eq!(backend.segment_count(), 1);
        assert_eq!(backend.wal_len(), 0);
        log.commit(b"c").unwrap();
        let rec = log.recover().unwrap();
        assert_eq!(rec.checkpoint.as_deref(), Some(&b"blob-ab"[..]));
        assert_eq!(rec.records.len(), 1);
    }

    #[test]
    fn deferred_compaction_keeps_unsubsumed_segments() {
        let backend = Arc::new(MemBackend::new());
        let log = log_over(backend.clone(), no_rotation());
        log.commit(b"not-yet-applied").unwrap();
        log.checkpoint(b"blob-without-it", false).unwrap();
        // The sealed segment must survive: its record is not in the blob.
        assert_eq!(backend.segment_count(), 2);
        let rec = log.recover().unwrap();
        assert_eq!(rec.records.len(), 1, "the sealed record must replay");
        // A later checkpoint that does cover everything compacts.
        log.checkpoint(b"blob-with-it", true).unwrap();
        assert_eq!(backend.segment_count(), 1);
        assert_eq!(backend.wal_len(), 0);
    }

    #[test]
    fn flush_failure_poisons_the_log_like_a_crash() {
        let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 2 }),
        ));
        let log = GroupCommitLog::new(faulty, RetryPolicy::immediate(2), no_rotation());
        log.commit(b"fine").unwrap();
        let err = log.commit(b"torn").unwrap_err();
        assert!(!err.is_transient());
        // The log is dead: later appends fail fast with the same error.
        let again = log.commit(b"after").unwrap_err();
        assert_eq!(err, again);
    }

    #[test]
    fn mid_batch_fault_hits_the_exact_record_index() {
        let inner = Arc::new(MemBackend::new());
        let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
            Arc::clone(&inner),
            StorageFaultPlan::new().with(3, StorageFaultAction::TornTail { keep: 1 }),
        ));
        let log = GroupCommitLog::new(faulty, RetryPolicy::immediate(2), no_rotation());
        let err = log
            .commit_all(&[
                b"first".to_vec(),
                b"second".to_vec(),
                b"third".to_vec(),
                b"fourth".to_vec(),
            ])
            .unwrap_err();
        assert!(!err.is_transient());
        // Records 1-2 landed whole, record 3 tore after one byte: the
        // recovery scan over the surviving media sees a torn tail.
        let scan = crate::wal::scan_wal(&inner.read_wal().unwrap());
        assert_eq!(scan.records, vec![b"first".to_vec(), b"second".to_vec()]);
        assert!(matches!(scan.tail, TailState::TornTail { .. }));
    }

    #[test]
    fn transient_sync_faults_are_retried_through_the_batch_path() {
        let inner = Arc::new(MemBackend::new());
        let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
            Arc::clone(&inner),
            StorageFaultPlan::new().with(1, StorageFaultAction::FailedSync { times: 2 }),
        ));
        let log = GroupCommitLog::new(faulty, RetryPolicy::immediate(3), no_rotation());
        log.commit(b"rides-out-the-blip").unwrap();
        let rec = log.recover().unwrap();
        assert_eq!(rec.records.len(), 1);
    }
}
