//! Durable storage backends: the byte-level substrate under the WAL.
//!
//! The persistence layer is split in two. This module owns *where bytes
//! live*: the [`DurableBackend`] trait abstracts an append-only log plus
//! an atomically-replaceable checkpoint blob, with an in-memory
//! implementation ([`MemBackend`]) for tests and a file-backed one
//! ([`FileBackend`]) for production. The sibling [`crate::wal`] module
//! owns *what the bytes mean* (record framing, checksums, recovery
//! scans).
//!
//! Storage is a fault surface, not a trusted oracle: integrity attacks
//! and torn writes against edge persistence must be detected rather than
//! believed (see `docs/STORAGE.md`). [`FaultyBackend`] therefore injects
//! the canonical failure modes — torn tails, truncated records, failed
//! fsyncs, corrupted checksums — *deterministically* through the same
//! trait, so the chaos harness and the recovery tests exercise exactly
//! the code paths production uses.

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Result alias for backend operations.
pub type StorageResult<T> = std::result::Result<T, StorageError>;

/// Why a backend operation failed.
///
/// The split drives the recovery policy: [`StorageError::Transient`]
/// failures are retried with backoff (a busy disk, an interrupted
/// syscall); [`StorageError::Unavailable`] means the backend cannot be
/// trusted at all (missing directory, detected corruption) and the
/// service degrades to read-only "drained" mode instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A failure that may succeed on retry.
    Transient(String),
    /// The backend is gone or its contents cannot be trusted.
    Unavailable(String),
}

impl StorageError {
    /// The message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            StorageError::Transient(m) | StorageError::Unavailable(m) => m,
        }
    }

    /// Whether a retry may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Transient(_))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Transient(m) => write!(f, "transient storage error: {m}"),
            StorageError::Unavailable(m) => write!(f, "storage unavailable: {m}"),
        }
    }
}

impl From<StorageError> for edgelet_util::Error {
    fn from(e: StorageError) -> Self {
        edgelet_util::Error::Protocol(e.to_string())
    }
}

/// An append-only log plus an atomically-replaceable checkpoint blob.
///
/// The contract every implementation upholds:
///
/// * `append` adds bytes at the end of the WAL; bytes are only *durable*
///   once a subsequent `sync` returns `Ok`.
/// * `read_wal` returns the entire log, including any torn tail a crash
///   left behind — the recovery scan decides what to keep.
/// * `truncate_wal(len)` discards everything past `len` (torn-tail
///   repair).
/// * `write_checkpoint` replaces the checkpoint blob atomically: a crash
///   during the write leaves either the old or the new blob, never a
///   mix.
/// * `reset_wal` clears the log (called after a successful checkpoint,
///   which subsumes it).
pub trait DurableBackend: Send + Sync {
    /// Appends bytes to the write-ahead log.
    fn append(&self, bytes: &[u8]) -> StorageResult<()>;
    /// Flushes appended bytes to durable media.
    fn sync(&self) -> StorageResult<()>;
    /// Reads the whole write-ahead log.
    fn read_wal(&self) -> StorageResult<Vec<u8>>;
    /// Discards every byte past `len` (torn-tail repair).
    fn truncate_wal(&self, len: u64) -> StorageResult<()>;
    /// Atomically replaces the checkpoint blob.
    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()>;
    /// Reads the checkpoint blob, `None` when no checkpoint exists.
    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>>;
    /// Clears the write-ahead log (after a checkpoint subsumed it).
    fn reset_wal(&self) -> StorageResult<()>;
}

impl<B: DurableBackend + ?Sized> DurableBackend for std::sync::Arc<B> {
    fn append(&self, bytes: &[u8]) -> StorageResult<()> {
        (**self).append(bytes)
    }
    fn sync(&self) -> StorageResult<()> {
        (**self).sync()
    }
    fn read_wal(&self) -> StorageResult<Vec<u8>> {
        (**self).read_wal()
    }
    fn truncate_wal(&self, len: u64) -> StorageResult<()> {
        (**self).truncate_wal(len)
    }
    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()> {
        (**self).write_checkpoint(bytes)
    }
    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>> {
        (**self).read_checkpoint()
    }
    fn reset_wal(&self) -> StorageResult<()> {
        (**self).reset_wal()
    }
}

// ---------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemState {
    wal: Vec<u8>,
    checkpoint: Option<Vec<u8>>,
}

/// The in-memory backend: a `Vec<u8>` WAL and an optional checkpoint
/// blob behind one mutex. Used by unit tests, the crash-restart parity
/// keystone (a "restart" re-opens the same `Arc`), and the chaos
/// storage drills.
#[derive(Debug, Default)]
pub struct MemBackend {
    state: Mutex<MemState>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current WAL length in bytes (test inspection).
    pub fn wal_len(&self) -> usize {
        lock(&self.state).wal.len()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl DurableBackend for MemBackend {
    fn append(&self, bytes: &[u8]) -> StorageResult<()> {
        lock(&self.state).wal.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    fn read_wal(&self) -> StorageResult<Vec<u8>> {
        Ok(lock(&self.state).wal.clone())
    }

    fn truncate_wal(&self, len: u64) -> StorageResult<()> {
        let mut st = lock(&self.state);
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < st.wal.len() {
            st.wal.truncate(len);
        }
        Ok(())
    }

    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()> {
        lock(&self.state).checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>> {
        Ok(lock(&self.state).checkpoint.clone())
    }

    fn reset_wal(&self) -> StorageResult<()> {
        lock(&self.state).wal.clear();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------

/// The file-backed backend: `wal.log` (append-only) and
/// `checkpoint.bin` (replaced via write-to-temp + rename, the standard
/// atomic-replace idiom) inside one directory.
pub struct FileBackend {
    dir: PathBuf,
    // The append handle is kept open for the backend's lifetime; the
    // mutex serializes appends from concurrent queries.
    wal: Mutex<std::fs::File>,
}

impl fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .finish()
    }
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> StorageError {
    // Interrupted/timed-out syscalls are worth retrying; everything
    // else (missing directory, permissions, full disk) is a state the
    // caller must handle, not wait out.
    let msg = format!("{what} {}: {e}", path.display());
    match e.kind() {
        std::io::ErrorKind::Interrupted | std::io::ErrorKind::TimedOut => {
            StorageError::Transient(msg)
        }
        _ => StorageError::Unavailable(msg),
    }
}

impl FileBackend {
    /// Opens (creating if needed) a file backend rooted at `dir`.
    ///
    /// Fails with [`StorageError::Unavailable`] when `dir` exists but is
    /// not a directory, or cannot be created/written — the caller is
    /// expected to degrade to drained mode rather than abort.
    pub fn open(dir: impl Into<PathBuf>) -> StorageResult<Self> {
        let dir = dir.into();
        if dir.exists() && !dir.is_dir() {
            return Err(StorageError::Unavailable(format!(
                "WAL path {} exists but is not a directory",
                dir.display()
            )));
        }
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create WAL dir", &dir, &e))?;
        let wal_path = dir.join("wal.log");
        let wal = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| io_err("open WAL", &wal_path, &e))?;
        Ok(FileBackend {
            dir,
            wal: Mutex::new(wal),
        })
    }

    /// The directory this backend lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.bin")
    }
}

impl DurableBackend for FileBackend {
    fn append(&self, bytes: &[u8]) -> StorageResult<()> {
        let mut wal = lock(&self.wal);
        wal.write_all(bytes)
            .map_err(|e| io_err("append WAL", &self.wal_path(), &e))
    }

    fn sync(&self) -> StorageResult<()> {
        let wal = lock(&self.wal);
        wal.sync_data()
            .map_err(|e| io_err("sync WAL", &self.wal_path(), &e))
    }

    fn read_wal(&self) -> StorageResult<Vec<u8>> {
        let path = self.wal_path();
        std::fs::read(&path).map_err(|e| io_err("read WAL", &path, &e))
    }

    fn truncate_wal(&self, len: u64) -> StorageResult<()> {
        let wal = lock(&self.wal);
        wal.set_len(len)
            .map_err(|e| io_err("truncate WAL", &self.wal_path(), &e))
    }

    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()> {
        let tmp = self.dir.join("checkpoint.tmp");
        let path = self.checkpoint_path();
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
            std::fs::rename(&tmp, &path)
        };
        write().map_err(|e| io_err("write checkpoint", &path, &e))
    }

    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>> {
        let path = self.checkpoint_path();
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read checkpoint", &path, &e)),
        }
    }

    fn reset_wal(&self) -> StorageResult<()> {
        self.truncate_wal(0)
    }
}

// ---------------------------------------------------------------------
// Deterministic storage-fault injection
// ---------------------------------------------------------------------

/// One injected storage failure mode (the chaos `FaultPlan` DSL's
/// storage-side counterpart; see `docs/FAULTS.md` and `docs/STORAGE.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageFaultAction {
    /// A crash mid-write: only the first `keep` bytes of the record land
    /// on media, and every later backend operation fails (the process
    /// holding the file died). Recovery must detect and drop the tail.
    TornTail {
        /// Bytes of the faulted append that reach the media.
        keep: u64,
    },
    /// A silently truncated record *mid-log*: only `keep` bytes land,
    /// but the backend keeps accepting later appends. Recovery must
    /// detect the framing damage and refuse the log (drained mode) —
    /// the records after the cut cannot be re-synchronized.
    TruncatedRecord {
        /// Bytes of the faulted append that reach the media.
        keep: u64,
    },
    /// The next `times` `sync` calls fail transiently (busy media);
    /// retry-with-backoff must ride them out.
    FailedSync {
        /// Consecutive syncs that fail before the media recovers.
        times: u32,
    },
    /// One byte of the appended record is flipped, so its CRC-32 check
    /// fails on replay.
    CorruptChecksum {
        /// Offset of the flipped byte within the record.
        byte: u64,
    },
}

impl StorageFaultAction {
    /// Stable name used in corpus entries.
    pub fn name(&self) -> &'static str {
        match self {
            StorageFaultAction::TornTail { .. } => "torn-tail",
            StorageFaultAction::TruncatedRecord { .. } => "truncated-record",
            StorageFaultAction::FailedSync { .. } => "failed-sync",
            StorageFaultAction::CorruptChecksum { .. } => "corrupt-checksum",
        }
    }
}

/// One storage-fault rule: fire `action` on the `at_append`-th append
/// (1-based), deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageFaultRule {
    /// 1-based index of the append the fault strikes.
    pub at_append: u64,
    /// What happens to that append.
    pub action: StorageFaultAction,
}

/// An ordered set of storage-fault rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StorageFaultPlan {
    /// The rules, checked against every append in order; the first rule
    /// matching the append index fires.
    pub rules: Vec<StorageFaultRule>,
}

impl StorageFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule, builder style.
    pub fn with(mut self, at_append: u64, action: StorageFaultAction) -> Self {
        self.rules.push(StorageFaultRule { at_append, action });
        self
    }
}

#[derive(Debug, Default)]
struct FaultState {
    appends: u64,
    failing_syncs: u32,
    dead: bool,
}

/// A [`DurableBackend`] decorator that injects the faults of a
/// [`StorageFaultPlan`] into an inner backend, deterministically by
/// append index — no clock, no randomness, so a chaos corpus entry
/// replays bit-for-bit.
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    plan: StorageFaultPlan,
    state: Mutex<FaultState>,
}

impl<B: DurableBackend> FaultyBackend<B> {
    /// Wraps `inner`, injecting `plan`.
    pub fn new(inner: B, plan: StorageFaultPlan) -> Self {
        FaultyBackend {
            inner,
            plan,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// The wrapped backend (e.g. to "restart" against the surviving
    /// bytes after a torn-tail crash).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn dead_check(&self) -> StorageResult<()> {
        if lock(&self.state).dead {
            return Err(StorageError::Unavailable(
                "injected fault: backend crashed (torn tail)".into(),
            ));
        }
        Ok(())
    }
}

impl<B: DurableBackend> DurableBackend for FaultyBackend<B> {
    fn append(&self, bytes: &[u8]) -> StorageResult<()> {
        let mut st = lock(&self.state);
        if st.dead {
            return Err(StorageError::Unavailable(
                "injected fault: backend crashed (torn tail)".into(),
            ));
        }
        st.appends += 1;
        let fired = self
            .plan
            .rules
            .iter()
            .find(|r| r.at_append == st.appends)
            .map(|r| r.action.clone());
        match fired {
            None => {
                drop(st);
                self.inner.append(bytes)
            }
            Some(StorageFaultAction::TornTail { keep }) => {
                st.dead = true;
                drop(st);
                let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(bytes.len());
                self.inner.append(&bytes[..keep])?;
                Err(StorageError::Unavailable(
                    "injected fault: torn tail (partial append, backend crashed)".into(),
                ))
            }
            Some(StorageFaultAction::TruncatedRecord { keep }) => {
                drop(st);
                let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(bytes.len());
                // The cut is silent: the append reports success.
                self.inner.append(&bytes[..keep])
            }
            Some(StorageFaultAction::FailedSync { times }) => {
                st.failing_syncs = st.failing_syncs.max(times);
                drop(st);
                self.inner.append(bytes)
            }
            Some(StorageFaultAction::CorruptChecksum { byte }) => {
                drop(st);
                let mut corrupt = bytes.to_vec();
                if let Some(b) = usize::try_from(byte).ok().and_then(|i| corrupt.get_mut(i)) {
                    *b ^= 0xFF;
                }
                self.inner.append(&corrupt)
            }
        }
    }

    fn sync(&self) -> StorageResult<()> {
        let mut st = lock(&self.state);
        if st.dead {
            return Err(StorageError::Unavailable(
                "injected fault: backend crashed (torn tail)".into(),
            ));
        }
        if st.failing_syncs > 0 {
            st.failing_syncs -= 1;
            return Err(StorageError::Transient(
                "injected fault: fsync failed".into(),
            ));
        }
        drop(st);
        self.inner.sync()
    }

    fn read_wal(&self) -> StorageResult<Vec<u8>> {
        self.dead_check()?;
        self.inner.read_wal()
    }

    fn truncate_wal(&self, len: u64) -> StorageResult<()> {
        self.dead_check()?;
        self.inner.truncate_wal(len)
    }

    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()> {
        self.dead_check()?;
        self.inner.write_checkpoint(bytes)
    }

    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>> {
        self.dead_check()?;
        self.inner.read_checkpoint()
    }

    fn reset_wal(&self) -> StorageResult<()> {
        self.dead_check()?;
        self.inner.reset_wal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trips() {
        let b = MemBackend::new();
        b.append(b"hello ").unwrap();
        b.append(b"world").unwrap();
        b.sync().unwrap();
        assert_eq!(b.read_wal().unwrap(), b"hello world");
        b.truncate_wal(5).unwrap();
        assert_eq!(b.read_wal().unwrap(), b"hello");
        assert_eq!(b.read_checkpoint().unwrap(), None);
        b.write_checkpoint(b"state").unwrap();
        assert_eq!(b.read_checkpoint().unwrap().as_deref(), Some(&b"state"[..]));
        b.reset_wal().unwrap();
        assert!(b.read_wal().unwrap().is_empty());
    }

    #[test]
    fn file_backend_round_trips_and_survives_reopen() {
        let dir =
            std::env::temp_dir().join(format!("edgelet-store-test-{}-file-rt", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let b = FileBackend::open(&dir).unwrap();
            b.append(b"abc").unwrap();
            b.append(b"def").unwrap();
            b.sync().unwrap();
            b.write_checkpoint(b"ckpt").unwrap();
        }
        {
            // A "restarted process" sees the synced bytes.
            let b = FileBackend::open(&dir).unwrap();
            assert_eq!(b.read_wal().unwrap(), b"abcdef");
            assert_eq!(b.read_checkpoint().unwrap().as_deref(), Some(&b"ckpt"[..]));
            b.truncate_wal(3).unwrap();
            assert_eq!(b.read_wal().unwrap(), b"abc");
            b.reset_wal().unwrap();
            assert!(b.read_wal().unwrap().is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_refuses_non_directory_path() {
        let path = std::env::temp_dir().join(format!(
            "edgelet-store-test-{}-not-a-dir",
            std::process::id()
        ));
        std::fs::write(&path, b"file in the way").unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert!(!err.is_transient());
        assert!(err.message().contains("not a directory"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_writes_prefix_then_kills_backend() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 3 }),
        );
        b.append(b"first").unwrap();
        let err = b.append(b"second").unwrap_err();
        assert!(!err.is_transient());
        // Later operations fail too: the writing process is "dead".
        assert!(b.append(b"third").is_err());
        assert!(b.sync().is_err());
        // The surviving bytes (on the inner backend) hold the torn tail.
        assert_eq!(b.inner().read_wal().unwrap(), b"firstsec");
    }

    #[test]
    fn truncated_record_is_silent() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(1, StorageFaultAction::TruncatedRecord { keep: 2 }),
        );
        b.append(b"first").unwrap(); // silently cut to "fi"
        b.append(b"second").unwrap();
        assert_eq!(b.inner().read_wal().unwrap(), b"fisecond");
    }

    #[test]
    fn failed_sync_is_transient_and_bounded() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(1, StorageFaultAction::FailedSync { times: 2 }),
        );
        b.append(b"record").unwrap();
        assert!(b.sync().unwrap_err().is_transient());
        assert!(b.sync().unwrap_err().is_transient());
        b.sync().unwrap();
    }

    #[test]
    fn corrupt_checksum_flips_one_byte() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(1, StorageFaultAction::CorruptChecksum { byte: 1 }),
        );
        b.append(&[0x10, 0x20, 0x30]).unwrap();
        assert_eq!(b.inner().read_wal().unwrap(), vec![0x10, 0xDF, 0x30]);
    }
}
