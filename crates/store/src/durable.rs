//! Durable storage backends: the byte-level substrate under the WAL.
//!
//! The persistence layer is split in two. This module owns *where bytes
//! live*: the [`DurableBackend`] trait abstracts an append-only log plus
//! an atomically-replaceable checkpoint blob, with an in-memory
//! implementation ([`MemBackend`]) for tests and a file-backed one
//! ([`FileBackend`]) for production. The sibling [`crate::wal`] module
//! owns *what the bytes mean* (record framing, checksums, recovery
//! scans).
//!
//! Storage is a fault surface, not a trusted oracle: integrity attacks
//! and torn writes against edge persistence must be detected rather than
//! believed (see `docs/STORAGE.md`). [`FaultyBackend`] therefore injects
//! the canonical failure modes — torn tails, truncated records, failed
//! fsyncs, corrupted checksums — *deterministically* through the same
//! trait, so the chaos harness and the recovery tests exercise exactly
//! the code paths production uses.

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Result alias for backend operations.
pub type StorageResult<T> = std::result::Result<T, StorageError>;

/// Why a backend operation failed.
///
/// The split drives the recovery policy: [`StorageError::Transient`]
/// failures are retried with backoff (a busy disk, an interrupted
/// syscall); [`StorageError::Unavailable`] means the backend cannot be
/// trusted at all (missing directory, detected corruption) and the
/// service degrades to read-only "drained" mode instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A failure that may succeed on retry.
    Transient(String),
    /// The backend is gone or its contents cannot be trusted.
    Unavailable(String),
}

impl StorageError {
    /// The message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            StorageError::Transient(m) | StorageError::Unavailable(m) => m,
        }
    }

    /// Whether a retry may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Transient(_))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Transient(m) => write!(f, "transient storage error: {m}"),
            StorageError::Unavailable(m) => write!(f, "storage unavailable: {m}"),
        }
    }
}

impl From<StorageError> for edgelet_util::Error {
    fn from(e: StorageError) -> Self {
        edgelet_util::Error::Protocol(e.to_string())
    }
}

/// One WAL record in a batch append, split as two byte slices —
/// framing header and payload — so a batch committer can hand the
/// backend its caller's payload buffers directly instead of first
/// gathering every record into one contiguous allocation.
/// Implementations must treat the concatenation `head ++ tail` as ONE
/// record: it is a single frame on the media and a single append for
/// fault-injection counting.
#[derive(Debug, Clone, Copy)]
pub struct FrameRef<'a> {
    /// Leading frame bytes (or the whole frame, see [`FrameRef::whole`]).
    pub head: &'a [u8],
    /// Trailing frame bytes (empty when `head` is the whole frame).
    pub tail: &'a [u8],
}

impl<'a> FrameRef<'a> {
    /// A record already contiguous in memory.
    pub fn whole(frame: &'a [u8]) -> Self {
        FrameRef {
            head: frame,
            tail: &[],
        }
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// Whether the frame is zero bytes long.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.tail.is_empty()
    }

    /// The frame gathered into one owned buffer (fallback paths only).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(self.head);
        out.extend_from_slice(self.tail);
        out
    }
}

/// A segmented append-only log plus an atomically-replaceable
/// checkpoint blob.
///
/// The WAL is an ordered list of **segments**. Appends always land in
/// the last (*active*) segment; [`DurableBackend::rotate_wal`] seals the
/// active segment and opens a fresh empty one, and checkpoint-aware
/// compaction deletes sealed segments once a checkpoint subsumes them
/// ([`DurableBackend::drop_sealed_segments`]), so long-lived daemons run
/// in bounded disk. A backend that never rotates behaves exactly like
/// the old single-file WAL: one active segment.
///
/// The contract every implementation upholds:
///
/// * `append` adds bytes at the end of the active segment; bytes are
///   only *durable* once a subsequent `sync` returns `Ok`.
/// * `append_batch` appends several records back to back in one call
///   (the group-commit fast path); equivalent to appending each in
///   order, but implementations may coalesce the writes.
/// * `read_wal_segments` returns every segment's bytes in append order,
///   including any torn tail a crash left behind — the recovery scan
///   decides what to keep.
/// * `truncate_wal(len)` discards every byte of the **active** segment
///   past `len` (torn-tail repair; sealed segments are immutable).
/// * `rotate_wal` seals the active segment and starts a new empty one.
/// * `drop_sealed_segments` deletes every sealed segment (their records
///   are subsumed by a checkpoint); the active segment is untouched.
/// * `write_checkpoint` replaces the checkpoint blob atomically: a crash
///   during the write leaves either the old or the new blob, never a
///   mix.
/// * `reset_wal` clears the whole log back to one empty active segment
///   (after a checkpoint subsumed everything).
pub trait DurableBackend: Send + Sync {
    /// Appends bytes to the active WAL segment.
    fn append(&self, bytes: &[u8]) -> StorageResult<()>;
    /// Appends several records back to back to the active segment.
    ///
    /// The default loops over [`DurableBackend::append`], which keeps
    /// fault-injection decorators counting *per record* — a fault plan
    /// indexed by append number fires at the same record whether it
    /// arrives alone or mid-batch.
    fn append_batch(&self, frames: &[FrameRef<'_>]) -> StorageResult<()> {
        for frame in frames {
            if frame.tail.is_empty() {
                self.append(frame.head)?;
            } else {
                self.append(&frame.to_vec())?;
            }
        }
        Ok(())
    }
    /// Flushes appended bytes to durable media.
    fn sync(&self) -> StorageResult<()>;
    /// Reads every WAL segment's bytes, oldest first. Never empty: a
    /// fresh log is one empty active segment.
    fn read_wal_segments(&self) -> StorageResult<Vec<Vec<u8>>>;
    /// Reads the whole write-ahead log as one byte string (all segments
    /// concatenated in order).
    fn read_wal(&self) -> StorageResult<Vec<u8>> {
        Ok(self.read_wal_segments()?.concat())
    }
    /// Byte length of each segment, oldest first (disk accounting).
    fn segment_sizes(&self) -> StorageResult<Vec<u64>> {
        Ok(self
            .read_wal_segments()?
            .iter()
            .map(|s| s.len() as u64)
            .collect())
    }
    /// Discards every byte of the *active* segment past `len`
    /// (torn-tail repair).
    fn truncate_wal(&self, len: u64) -> StorageResult<()>;
    /// Seals the active segment and opens a fresh empty one.
    fn rotate_wal(&self) -> StorageResult<()>;
    /// Deletes every sealed segment (subsumed by a checkpoint).
    fn drop_sealed_segments(&self) -> StorageResult<()>;
    /// Atomically replaces the checkpoint blob.
    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()>;
    /// Reads the checkpoint blob, `None` when no checkpoint exists.
    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>>;
    /// Clears the write-ahead log (after a checkpoint subsumed it).
    fn reset_wal(&self) -> StorageResult<()>;
}

impl<B: DurableBackend + ?Sized> DurableBackend for std::sync::Arc<B> {
    fn append(&self, bytes: &[u8]) -> StorageResult<()> {
        (**self).append(bytes)
    }
    fn append_batch(&self, frames: &[FrameRef<'_>]) -> StorageResult<()> {
        (**self).append_batch(frames)
    }
    fn sync(&self) -> StorageResult<()> {
        (**self).sync()
    }
    fn read_wal_segments(&self) -> StorageResult<Vec<Vec<u8>>> {
        (**self).read_wal_segments()
    }
    fn read_wal(&self) -> StorageResult<Vec<u8>> {
        (**self).read_wal()
    }
    fn segment_sizes(&self) -> StorageResult<Vec<u64>> {
        (**self).segment_sizes()
    }
    fn truncate_wal(&self, len: u64) -> StorageResult<()> {
        (**self).truncate_wal(len)
    }
    fn rotate_wal(&self) -> StorageResult<()> {
        (**self).rotate_wal()
    }
    fn drop_sealed_segments(&self) -> StorageResult<()> {
        (**self).drop_sealed_segments()
    }
    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()> {
        (**self).write_checkpoint(bytes)
    }
    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>> {
        (**self).read_checkpoint()
    }
    fn reset_wal(&self) -> StorageResult<()> {
        (**self).reset_wal()
    }
}

// ---------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------

#[derive(Debug)]
struct MemState {
    // Never empty: the last entry is the active segment.
    segments: Vec<Vec<u8>>,
    checkpoint: Option<Vec<u8>>,
}

impl Default for MemState {
    fn default() -> Self {
        MemState {
            segments: vec![Vec::new()],
            checkpoint: None,
        }
    }
}

/// The in-memory backend: segmented `Vec<u8>` WAL and an optional
/// checkpoint blob behind one mutex. Used by unit tests, the
/// crash-restart parity keystone (a "restart" re-opens the same `Arc`),
/// and the chaos storage drills.
#[derive(Debug, Default)]
pub struct MemBackend {
    state: Mutex<MemState>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current total WAL length in bytes, across segments (test
    /// inspection).
    pub fn wal_len(&self) -> usize {
        lock(&self.state).segments.iter().map(Vec::len).sum()
    }

    /// Number of live segments, including the active one (test
    /// inspection).
    pub fn segment_count(&self) -> usize {
        lock(&self.state).segments.len()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl DurableBackend for MemBackend {
    fn append(&self, bytes: &[u8]) -> StorageResult<()> {
        let mut st = lock(&self.state);
        let active = st.segments.last_mut().expect("segments never empty");
        active.extend_from_slice(bytes);
        Ok(())
    }

    fn append_batch(&self, frames: &[FrameRef<'_>]) -> StorageResult<()> {
        let mut st = lock(&self.state);
        let active = st.segments.last_mut().expect("segments never empty");
        active.reserve(frames.iter().map(FrameRef::len).sum());
        for frame in frames {
            active.extend_from_slice(frame.head);
            active.extend_from_slice(frame.tail);
        }
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    fn read_wal_segments(&self) -> StorageResult<Vec<Vec<u8>>> {
        Ok(lock(&self.state).segments.clone())
    }

    fn truncate_wal(&self, len: u64) -> StorageResult<()> {
        let mut st = lock(&self.state);
        let active = st.segments.last_mut().expect("segments never empty");
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < active.len() {
            active.truncate(len);
        }
        Ok(())
    }

    fn rotate_wal(&self) -> StorageResult<()> {
        lock(&self.state).segments.push(Vec::new());
        Ok(())
    }

    fn drop_sealed_segments(&self) -> StorageResult<()> {
        let mut st = lock(&self.state);
        let active = st.segments.pop().expect("segments never empty");
        st.segments = vec![active];
        Ok(())
    }

    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()> {
        lock(&self.state).checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>> {
        Ok(lock(&self.state).checkpoint.clone())
    }

    fn reset_wal(&self) -> StorageResult<()> {
        lock(&self.state).segments = vec![Vec::new()];
        Ok(())
    }
}

// ---------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------

/// The file-backed backend: numbered WAL segments (`wal.0000.log`,
/// `wal.0001.log`, ...; append-only, highest index active) and
/// `checkpoint.bin` (replaced via write-to-temp + rename, the standard
/// atomic-replace idiom) inside one directory.
pub struct FileBackend {
    dir: PathBuf,
    // The active-segment append handle is kept open for the backend's
    // lifetime; the mutex serializes appends from concurrent queries.
    wal: Mutex<FileWal>,
}

struct FileWal {
    file: std::fs::File,
    index: u64,
}

impl fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .finish()
    }
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> StorageError {
    // Interrupted/timed-out syscalls are worth retrying; everything
    // else (missing directory, permissions, full disk) is a state the
    // caller must handle, not wait out.
    let msg = format!("{what} {}: {e}", path.display());
    match e.kind() {
        std::io::ErrorKind::Interrupted | std::io::ErrorKind::TimedOut => {
            StorageError::Transient(msg)
        }
        _ => StorageError::Unavailable(msg),
    }
}

impl FileBackend {
    /// Opens (creating if needed) a file backend rooted at `dir`.
    ///
    /// Fails with [`StorageError::Unavailable`] when `dir` exists but is
    /// not a directory, or cannot be created/written — the caller is
    /// expected to degrade to drained mode rather than abort.
    pub fn open(dir: impl Into<PathBuf>) -> StorageResult<Self> {
        let dir = dir.into();
        if dir.exists() && !dir.is_dir() {
            return Err(StorageError::Unavailable(format!(
                "WAL path {} exists but is not a directory",
                dir.display()
            )));
        }
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create WAL dir", &dir, &e))?;
        let index = list_segments(&dir)?.last().map_or(0, |&(i, _)| i);
        let wal_path = segment_path(&dir, index);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| io_err("open WAL segment", &wal_path, &e))?;
        Ok(FileBackend {
            dir,
            wal: Mutex::new(FileWal { file, index }),
        })
    }

    /// The directory this backend lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.bin")
    }
}

/// Path of segment `index` under `dir`: `wal.0000.log` style, padded so
/// lexical and numeric order agree for the first 10k segments.
fn segment_path(dir: &Path, index: u64) -> PathBuf {
    let mut path = dir.to_path_buf();
    path.push(format!("wal.{index:04}.log"));
    path
}

/// Existing WAL segments under `dir`, sorted by index.
fn list_segments(dir: &Path) -> StorageResult<Vec<(u64, PathBuf)>> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("list WAL dir", dir, &e))?;
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list WAL dir", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("wal.")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push((index, entry.path()));
    }
    segments.sort_unstable_by_key(|&(i, _)| i);
    Ok(segments)
}

impl DurableBackend for FileBackend {
    fn append(&self, bytes: &[u8]) -> StorageResult<()> {
        let mut wal = lock(&self.wal);
        let path = segment_path(&self.dir, wal.index);
        wal.file
            .write_all(bytes)
            .map_err(|e| io_err("append WAL", &path, &e))
    }

    fn append_batch(&self, frames: &[FrameRef<'_>]) -> StorageResult<()> {
        // One contiguous buffer, one write syscall for the whole batch.
        let mut buf = Vec::with_capacity(frames.iter().map(FrameRef::len).sum());
        for frame in frames {
            buf.extend_from_slice(frame.head);
            buf.extend_from_slice(frame.tail);
        }
        let mut wal = lock(&self.wal);
        let path = segment_path(&self.dir, wal.index);
        wal.file
            .write_all(&buf)
            .map_err(|e| io_err("append WAL batch", &path, &e))
    }

    fn sync(&self) -> StorageResult<()> {
        let wal = lock(&self.wal);
        let path = segment_path(&self.dir, wal.index);
        wal.file
            .sync_data()
            .map_err(|e| io_err("sync WAL", &path, &e))
    }

    fn read_wal_segments(&self) -> StorageResult<Vec<Vec<u8>>> {
        // Hold the append lock so a rotation cannot interleave with the
        // directory listing.
        let _wal = lock(&self.wal);
        let segments = list_segments(&self.dir)?;
        let mut out = Vec::with_capacity(segments.len().max(1));
        for (_, path) in &segments {
            out.push(std::fs::read(path).map_err(|e| io_err("read WAL segment", path, &e))?);
        }
        if out.is_empty() {
            out.push(Vec::new());
        }
        Ok(out)
    }

    fn segment_sizes(&self) -> StorageResult<Vec<u64>> {
        let _wal = lock(&self.wal);
        let segments = list_segments(&self.dir)?;
        let mut out = Vec::with_capacity(segments.len().max(1));
        for (_, path) in &segments {
            let meta = std::fs::metadata(path).map_err(|e| io_err("stat WAL segment", path, &e))?;
            out.push(meta.len());
        }
        if out.is_empty() {
            out.push(0);
        }
        Ok(out)
    }

    fn truncate_wal(&self, len: u64) -> StorageResult<()> {
        let wal = lock(&self.wal);
        let path = segment_path(&self.dir, wal.index);
        wal.file
            .set_len(len)
            .map_err(|e| io_err("truncate WAL", &path, &e))
    }

    fn rotate_wal(&self) -> StorageResult<()> {
        let mut wal = lock(&self.wal);
        let old_path = segment_path(&self.dir, wal.index);
        // Seal the old segment durably before the new one exists.
        wal.file
            .sync_data()
            .map_err(|e| io_err("sync WAL before rotation", &old_path, &e))?;
        let next = wal.index + 1;
        let path = segment_path(&self.dir, next);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open WAL segment", &path, &e))?;
        wal.file = file;
        wal.index = next;
        Ok(())
    }

    fn drop_sealed_segments(&self) -> StorageResult<()> {
        let wal = lock(&self.wal);
        for (index, path) in list_segments(&self.dir)? {
            if index != wal.index {
                std::fs::remove_file(&path)
                    .map_err(|e| io_err("delete sealed WAL segment", &path, &e))?;
            }
        }
        Ok(())
    }

    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()> {
        let tmp = self.dir.join("checkpoint.tmp");
        let path = self.checkpoint_path();
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
            std::fs::rename(&tmp, &path)
        };
        write().map_err(|e| io_err("write checkpoint", &path, &e))
    }

    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>> {
        let path = self.checkpoint_path();
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read checkpoint", &path, &e)),
        }
    }

    fn reset_wal(&self) -> StorageResult<()> {
        let wal = lock(&self.wal);
        // Truncate the active segment in place (keeps the handle valid),
        // then delete every sealed segment.
        let active = segment_path(&self.dir, wal.index);
        wal.file
            .set_len(0)
            .map_err(|e| io_err("truncate WAL", &active, &e))?;
        for (index, path) in list_segments(&self.dir)? {
            if index != wal.index {
                std::fs::remove_file(&path)
                    .map_err(|e| io_err("delete sealed WAL segment", &path, &e))?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Deterministic storage-fault injection
// ---------------------------------------------------------------------

/// One injected storage failure mode (the chaos `FaultPlan` DSL's
/// storage-side counterpart; see `docs/FAULTS.md` and `docs/STORAGE.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageFaultAction {
    /// A crash mid-write: only the first `keep` bytes of the record land
    /// on media, and every later backend operation fails (the process
    /// holding the file died). Recovery must detect and drop the tail.
    TornTail {
        /// Bytes of the faulted append that reach the media.
        keep: u64,
    },
    /// A silently truncated record *mid-log*: only `keep` bytes land,
    /// but the backend keeps accepting later appends. Recovery must
    /// detect the framing damage and refuse the log (drained mode) —
    /// the records after the cut cannot be re-synchronized.
    TruncatedRecord {
        /// Bytes of the faulted append that reach the media.
        keep: u64,
    },
    /// The next `times` `sync` calls fail transiently (busy media);
    /// retry-with-backoff must ride them out.
    FailedSync {
        /// Consecutive syncs that fail before the media recovers.
        times: u32,
    },
    /// One byte of the appended record is flipped, so its CRC-32 check
    /// fails on replay.
    CorruptChecksum {
        /// Offset of the flipped byte within the record.
        byte: u64,
    },
}

impl StorageFaultAction {
    /// Stable name used in corpus entries.
    pub fn name(&self) -> &'static str {
        match self {
            StorageFaultAction::TornTail { .. } => "torn-tail",
            StorageFaultAction::TruncatedRecord { .. } => "truncated-record",
            StorageFaultAction::FailedSync { .. } => "failed-sync",
            StorageFaultAction::CorruptChecksum { .. } => "corrupt-checksum",
        }
    }
}

/// One storage-fault rule: fire `action` on the `at_append`-th append
/// (1-based), deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageFaultRule {
    /// 1-based index of the append the fault strikes.
    pub at_append: u64,
    /// What happens to that append.
    pub action: StorageFaultAction,
}

/// An ordered set of storage-fault rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StorageFaultPlan {
    /// The rules, checked against every append in order; the first rule
    /// matching the append index fires.
    pub rules: Vec<StorageFaultRule>,
}

impl StorageFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule, builder style.
    pub fn with(mut self, at_append: u64, action: StorageFaultAction) -> Self {
        self.rules.push(StorageFaultRule { at_append, action });
        self
    }
}

#[derive(Debug, Default)]
struct FaultState {
    appends: u64,
    failing_syncs: u32,
    dead: bool,
}

/// A [`DurableBackend`] decorator that injects the faults of a
/// [`StorageFaultPlan`] into an inner backend, deterministically by
/// append index — no clock, no randomness, so a chaos corpus entry
/// replays bit-for-bit.
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    plan: StorageFaultPlan,
    state: Mutex<FaultState>,
}

impl<B: DurableBackend> FaultyBackend<B> {
    /// Wraps `inner`, injecting `plan`.
    pub fn new(inner: B, plan: StorageFaultPlan) -> Self {
        FaultyBackend {
            inner,
            plan,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// The wrapped backend (e.g. to "restart" against the surviving
    /// bytes after a torn-tail crash).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn dead_check(&self) -> StorageResult<()> {
        if lock(&self.state).dead {
            return Err(StorageError::Unavailable(
                "injected fault: backend crashed (torn tail)".into(),
            ));
        }
        Ok(())
    }
}

impl<B: DurableBackend> DurableBackend for FaultyBackend<B> {
    fn append(&self, bytes: &[u8]) -> StorageResult<()> {
        let mut st = lock(&self.state);
        if st.dead {
            return Err(StorageError::Unavailable(
                "injected fault: backend crashed (torn tail)".into(),
            ));
        }
        st.appends += 1;
        let fired = self
            .plan
            .rules
            .iter()
            .find(|r| r.at_append == st.appends)
            .map(|r| r.action.clone());
        match fired {
            None => {
                drop(st);
                self.inner.append(bytes)
            }
            Some(StorageFaultAction::TornTail { keep }) => {
                st.dead = true;
                drop(st);
                let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(bytes.len());
                self.inner.append(&bytes[..keep])?;
                Err(StorageError::Unavailable(
                    "injected fault: torn tail (partial append, backend crashed)".into(),
                ))
            }
            Some(StorageFaultAction::TruncatedRecord { keep }) => {
                drop(st);
                let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(bytes.len());
                // The cut is silent: the append reports success.
                self.inner.append(&bytes[..keep])
            }
            Some(StorageFaultAction::FailedSync { times }) => {
                st.failing_syncs = st.failing_syncs.max(times);
                drop(st);
                self.inner.append(bytes)
            }
            Some(StorageFaultAction::CorruptChecksum { byte }) => {
                drop(st);
                let mut corrupt = bytes.to_vec();
                if let Some(b) = usize::try_from(byte).ok().and_then(|i| corrupt.get_mut(i)) {
                    *b ^= 0xFF;
                }
                self.inner.append(&corrupt)
            }
        }
    }

    fn sync(&self) -> StorageResult<()> {
        let mut st = lock(&self.state);
        if st.dead {
            return Err(StorageError::Unavailable(
                "injected fault: backend crashed (torn tail)".into(),
            ));
        }
        if st.failing_syncs > 0 {
            st.failing_syncs -= 1;
            return Err(StorageError::Transient(
                "injected fault: fsync failed".into(),
            ));
        }
        drop(st);
        self.inner.sync()
    }

    // append_batch deliberately uses the trait default: it loops over
    // `append`, so the per-record fault counter keeps firing at the
    // same record index whether records arrive alone or mid-batch.

    fn read_wal_segments(&self) -> StorageResult<Vec<Vec<u8>>> {
        self.dead_check()?;
        self.inner.read_wal_segments()
    }

    fn segment_sizes(&self) -> StorageResult<Vec<u64>> {
        self.dead_check()?;
        self.inner.segment_sizes()
    }

    fn truncate_wal(&self, len: u64) -> StorageResult<()> {
        self.dead_check()?;
        self.inner.truncate_wal(len)
    }

    fn rotate_wal(&self) -> StorageResult<()> {
        self.dead_check()?;
        self.inner.rotate_wal()
    }

    fn drop_sealed_segments(&self) -> StorageResult<()> {
        self.dead_check()?;
        self.inner.drop_sealed_segments()
    }

    fn write_checkpoint(&self, bytes: &[u8]) -> StorageResult<()> {
        self.dead_check()?;
        self.inner.write_checkpoint(bytes)
    }

    fn read_checkpoint(&self) -> StorageResult<Option<Vec<u8>>> {
        self.dead_check()?;
        self.inner.read_checkpoint()
    }

    fn reset_wal(&self) -> StorageResult<()> {
        self.dead_check()?;
        self.inner.reset_wal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trips() {
        let b = MemBackend::new();
        b.append(b"hello ").unwrap();
        b.append(b"world").unwrap();
        b.sync().unwrap();
        assert_eq!(b.read_wal().unwrap(), b"hello world");
        b.truncate_wal(5).unwrap();
        assert_eq!(b.read_wal().unwrap(), b"hello");
        assert_eq!(b.read_checkpoint().unwrap(), None);
        b.write_checkpoint(b"state").unwrap();
        assert_eq!(b.read_checkpoint().unwrap().as_deref(), Some(&b"state"[..]));
        b.reset_wal().unwrap();
        assert!(b.read_wal().unwrap().is_empty());
    }

    #[test]
    fn file_backend_round_trips_and_survives_reopen() {
        let dir =
            std::env::temp_dir().join(format!("edgelet-store-test-{}-file-rt", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let b = FileBackend::open(&dir).unwrap();
            b.append(b"abc").unwrap();
            b.append(b"def").unwrap();
            b.sync().unwrap();
            b.write_checkpoint(b"ckpt").unwrap();
        }
        {
            // A "restarted process" sees the synced bytes.
            let b = FileBackend::open(&dir).unwrap();
            assert_eq!(b.read_wal().unwrap(), b"abcdef");
            assert_eq!(b.read_checkpoint().unwrap().as_deref(), Some(&b"ckpt"[..]));
            b.truncate_wal(3).unwrap();
            assert_eq!(b.read_wal().unwrap(), b"abc");
            b.reset_wal().unwrap();
            assert!(b.read_wal().unwrap().is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_refuses_non_directory_path() {
        let path = std::env::temp_dir().join(format!(
            "edgelet-store-test-{}-not-a-dir",
            std::process::id()
        ));
        std::fs::write(&path, b"file in the way").unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert!(!err.is_transient());
        assert!(err.message().contains("not a directory"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_writes_prefix_then_kills_backend() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 3 }),
        );
        b.append(b"first").unwrap();
        let err = b.append(b"second").unwrap_err();
        assert!(!err.is_transient());
        // Later operations fail too: the writing process is "dead".
        assert!(b.append(b"third").is_err());
        assert!(b.sync().is_err());
        // The surviving bytes (on the inner backend) hold the torn tail.
        assert_eq!(b.inner().read_wal().unwrap(), b"firstsec");
    }

    #[test]
    fn truncated_record_is_silent() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(1, StorageFaultAction::TruncatedRecord { keep: 2 }),
        );
        b.append(b"first").unwrap(); // silently cut to "fi"
        b.append(b"second").unwrap();
        assert_eq!(b.inner().read_wal().unwrap(), b"fisecond");
    }

    #[test]
    fn failed_sync_is_transient_and_bounded() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(1, StorageFaultAction::FailedSync { times: 2 }),
        );
        b.append(b"record").unwrap();
        assert!(b.sync().unwrap_err().is_transient());
        assert!(b.sync().unwrap_err().is_transient());
        b.sync().unwrap();
    }

    #[test]
    fn mem_backend_rotates_and_compacts_segments() {
        let b = MemBackend::new();
        b.append(b"old").unwrap();
        b.rotate_wal().unwrap();
        b.append_batch(&[FrameRef::whole(b"new"), FrameRef::whole(b"er")])
            .unwrap();
        assert_eq!(b.segment_count(), 2);
        assert_eq!(
            b.read_wal_segments().unwrap(),
            vec![b"old".to_vec(), b"newer".to_vec()]
        );
        assert_eq!(b.read_wal().unwrap(), b"oldnewer");
        assert_eq!(b.segment_sizes().unwrap(), vec![3, 5]);
        // Truncation repairs only the active segment.
        b.truncate_wal(3).unwrap();
        assert_eq!(b.read_wal().unwrap(), b"oldnew");
        b.drop_sealed_segments().unwrap();
        assert_eq!(b.segment_count(), 1);
        assert_eq!(b.read_wal().unwrap(), b"new");
        b.reset_wal().unwrap();
        assert_eq!(b.segment_count(), 1);
        assert!(b.read_wal().unwrap().is_empty());
    }

    #[test]
    fn file_backend_rotates_compacts_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "edgelet-store-test-{}-file-seg",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let b = FileBackend::open(&dir).unwrap();
            b.append(b"seg0").unwrap();
            b.rotate_wal().unwrap();
            b.append_batch(&[FrameRef::whole(b"seg"), FrameRef::whole(b"1")])
                .unwrap();
            b.sync().unwrap();
        }
        assert!(dir.join("wal.0000.log").is_file());
        assert!(dir.join("wal.0001.log").is_file());
        {
            // A restart re-opens the highest segment as active.
            let b = FileBackend::open(&dir).unwrap();
            assert_eq!(
                b.read_wal_segments().unwrap(),
                vec![b"seg0".to_vec(), b"seg1".to_vec()]
            );
            assert_eq!(b.segment_sizes().unwrap(), vec![4, 4]);
            b.append(b"-more").unwrap();
            assert_eq!(b.read_wal().unwrap(), b"seg0seg1-more");
            b.drop_sealed_segments().unwrap();
            assert!(!dir.join("wal.0000.log").is_file());
            assert_eq!(b.read_wal().unwrap(), b"seg1-more");
            b.rotate_wal().unwrap();
            b.append(b"tail").unwrap();
            b.reset_wal().unwrap();
            assert_eq!(b.read_wal_segments().unwrap(), vec![Vec::<u8>::new()]);
        }
        {
            // reset_wal left one empty active segment; appends continue.
            let b = FileBackend::open(&dir).unwrap();
            b.append(b"fresh").unwrap();
            assert_eq!(b.read_wal().unwrap(), b"fresh");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_backend_counts_batched_records_individually() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(3, StorageFaultAction::TornTail { keep: 1 }),
        );
        // Records 1..=4 arrive as one batch: the fault fires at the
        // third record exactly as it would for single-record appends.
        let err = b
            .append_batch(&[
                FrameRef::whole(b"first"),
                FrameRef::whole(b"second"),
                FrameRef::whole(b"third"),
                FrameRef::whole(b"fourth"),
            ])
            .unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(b.inner().read_wal().unwrap(), b"firstsecondt");
        assert!(b.sync().is_err());
    }

    #[test]
    fn faulty_backend_faults_across_a_segment_boundary() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(2, StorageFaultAction::TruncatedRecord { keep: 2 }),
        );
        b.append(b"sealed").unwrap();
        b.rotate_wal().unwrap();
        // The first append of the fresh segment is append #2 overall.
        b.append(b"cut-me").unwrap();
        assert_eq!(
            b.inner().read_wal_segments().unwrap(),
            vec![b"sealed".to_vec(), b"cu".to_vec()]
        );
    }

    #[test]
    fn corrupt_checksum_flips_one_byte() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(1, StorageFaultAction::CorruptChecksum { byte: 1 }),
        );
        b.append(&[0x10, 0x20, 0x30]).unwrap();
        assert_eq!(b.inner().read_wal().unwrap(), vec![0x10, 0xDF, 0x30]);
    }
}
