//! Schemas: named, typed columns shared by every edgelet store.

use crate::value::{ColumnType, Value};
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Reader, Writer};

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema; column names must be unique.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in &columns {
            if !seen.insert(*name) {
                return Err(Error::Schema(format!("duplicate column `{name}`")));
            }
        }
        Ok(Self {
            columns: columns
                .into_iter()
                .map(|(name, ty)| Column {
                    name: name.to_string(),
                    ty,
                })
                .collect(),
        })
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::Schema(format!("unknown column `{name}`")))
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.index_of(name)?])
    }

    /// Checks that a value vector matches the schema (nulls allowed).
    pub fn check_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.arity() {
            return Err(Error::Schema(format!(
                "row arity {} != schema arity {}",
                values.len(),
                self.arity()
            )));
        }
        for (v, c) in values.iter().zip(&self.columns) {
            if let Some(ty) = v.column_type() {
                if ty != c.ty {
                    return Err(Error::Schema(format!(
                        "column `{}` expects {}, got {}",
                        c.name, c.ty, ty
                    )));
                }
            }
        }
        Ok(())
    }

    /// Derives the sub-schema for a projection.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            cols.push(self.column(n)?.clone());
        }
        Ok(Schema { columns: cols })
    }

    /// Column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

impl Encode for Column {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        let tag: u8 = match self.ty {
            ColumnType::Int => 0,
            ColumnType::Float => 1,
            ColumnType::Text => 2,
            ColumnType::Bool => 3,
        };
        tag.encode(w);
    }
}

impl Decode for Column {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let name = String::decode(r)?;
        let ty = match u8::decode(r)? {
            0 => ColumnType::Int,
            1 => ColumnType::Float,
            2 => ColumnType::Text,
            3 => ColumnType::Bool,
            other => return Err(Error::Decode(format!("invalid column type tag {other}"))),
        };
        Ok(Column { name, ty })
    }
}

impl Encode for Schema {
    fn encode(&self, w: &mut Writer) {
        self.columns.encode(w);
    }
}

impl Decode for Schema {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Schema {
            columns: Vec::<Column>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_wire::{from_bytes, to_bytes};

    fn health_schema() -> Schema {
        Schema::new(vec![
            ("age", ColumnType::Int),
            ("bmi", ColumnType::Float),
            ("sex", ColumnType::Text),
            ("diabetic", ColumnType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_and_projection() {
        let s = health_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("bmi").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
        assert_eq!(s.column("sex").unwrap().ty, ColumnType::Text);
        let p = s.project(&["sex", "age"]).unwrap();
        assert_eq!(p.names(), vec!["sex", "age"]);
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Int)]).is_err());
    }

    #[test]
    fn row_checking() {
        let s = health_schema();
        s.check_row(&[
            Value::Int(70),
            Value::Float(24.0),
            Value::Text("F".into()),
            Value::Bool(false),
        ])
        .unwrap();
        // Nulls are allowed anywhere.
        s.check_row(&[Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
        // Wrong arity.
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        // Wrong type.
        assert!(s
            .check_row(&[
                Value::Float(70.0),
                Value::Float(24.0),
                Value::Text("F".into()),
                Value::Bool(false),
            ])
            .is_err());
    }

    #[test]
    fn wire_roundtrip() {
        let s = health_schema();
        let back: Schema = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, s);
    }
}
