//! Secondary indexes: sorted row-id lists for range scans.
//!
//! Snapshot Builders filter on selective predicates (`age > 65`) against
//! stores that, on a home box, live on slow flash; an ordered index turns
//! the per-request scan into a binary search plus a contiguous walk. The
//! index is immutable over a store snapshot (stores are append-only
//! between queries, so builders index once per query epoch).

use crate::expr::CmpOp;
use crate::row::Row;
use crate::store::DataStore;
use crate::value::Value;
use edgelet_util::{Error, Result};
use std::cmp::Ordering;
use std::ops::Bound;

/// A sorted index over one column of a store snapshot.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    column: String,
    /// `(key, row_id)` sorted by key then row id; null keys excluded.
    entries: Vec<(Value, usize)>,
}

impl SortedIndex {
    /// Builds the index over `column`. Fails on unknown columns; null
    /// values are excluded (they match no range predicate anyway).
    pub fn build(store: &DataStore, column: &str) -> Result<SortedIndex> {
        let column_idx = store.schema().index_of(column)?;
        let mut entries: Vec<(Value, usize)> = store
            .rows()
            .iter()
            .enumerate()
            .filter_map(|(i, row)| {
                let v = row.get(column_idx)?.clone();
                (!v.is_null()).then_some((v, i))
            })
            .collect();
        entries
            .sort_by(|(a, ai), (b, bi)| a.compare(b).unwrap_or(Ordering::Equal).then(ai.cmp(bi)));
        // Mixed-type columns cannot be totally ordered; reject them.
        for w in entries.windows(2) {
            if w[0].0.compare(&w[1].0).is_none() {
                return Err(Error::Schema(format!(
                    "column `{column}` mixes incomparable types; cannot index"
                )));
            }
        }
        Ok(SortedIndex {
            column: column.to_string(),
            entries,
        })
    }

    /// The indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of indexed (non-null) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Row ids whose key lies within the bounds, in key order.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<usize> {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => self.lower_bound(v),
            Bound::Excluded(v) => self.upper_bound(v),
        };
        let end = match hi {
            Bound::Unbounded => self.entries.len(),
            Bound::Included(v) => self.upper_bound(v),
            Bound::Excluded(v) => self.lower_bound(v),
        };
        if start >= end {
            return Vec::new();
        }
        self.entries[start..end].iter().map(|(_, i)| *i).collect()
    }

    /// Row ids matching `column op value` (range ops only; `Ne` is not an
    /// index-friendly predicate and returns an error).
    pub fn lookup(&self, op: CmpOp, value: &Value) -> Result<Vec<usize>> {
        Ok(match op {
            CmpOp::Eq => self.range(Bound::Included(value), Bound::Included(value)),
            CmpOp::Lt => self.range(Bound::Unbounded, Bound::Excluded(value)),
            CmpOp::Le => self.range(Bound::Unbounded, Bound::Included(value)),
            CmpOp::Gt => self.range(Bound::Excluded(value), Bound::Unbounded),
            CmpOp::Ge => self.range(Bound::Included(value), Bound::Unbounded),
            CmpOp::Ne => {
                return Err(Error::InvalidQuery(
                    "`!=` cannot use a sorted index; scan instead".into(),
                ))
            }
        })
    }

    /// Materializes the rows for a lookup, in key order.
    pub fn lookup_rows(&self, store: &DataStore, op: CmpOp, value: &Value) -> Result<Vec<Row>> {
        let ids = self.lookup(op, value)?;
        Ok(ids
            .into_iter()
            .filter_map(|i| store.rows().get(i).cloned())
            .collect())
    }

    /// First entry index with key >= v.
    fn lower_bound(&self, v: &Value) -> usize {
        self.entries
            .partition_point(|(k, _)| matches!(k.compare(v), Some(Ordering::Less)))
    }

    /// First entry index with key > v.
    fn upper_bound(&self, v: &Value) -> usize {
        self.entries.partition_point(|(k, _)| {
            matches!(k.compare(v), Some(Ordering::Less) | Some(Ordering::Equal))
        })
    }

    fn key_at(&self, pos: usize) -> &Value {
        &self.entries[pos].0
    }

    /// Smallest indexed key.
    pub fn min_key(&self) -> Option<&Value> {
        (!self.is_empty()).then(|| self.key_at(0))
    }

    /// Largest indexed key.
    pub fn max_key(&self) -> Option<&Value> {
        (!self.is_empty()).then(|| self.key_at(self.entries.len() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use crate::schema::Schema;
    use crate::synth;
    use crate::value::ColumnType;
    use edgelet_util::rng::DetRng;
    use proptest::prelude::*;

    fn store() -> DataStore {
        let mut rng = DetRng::new(1);
        synth::health_store(500, &mut rng)
    }

    #[test]
    fn index_matches_scan_for_every_operator() {
        let s = store();
        let idx = SortedIndex::build(&s, "age").unwrap();
        assert_eq!(idx.column(), "age");
        assert_eq!(idx.len(), 500);
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let via_index = idx.lookup_rows(&s, op, &Value::Int(65)).unwrap().len();
            let via_scan = s.count(&Predicate::cmp("age", op, Value::Int(65))).unwrap();
            assert_eq!(via_index, via_scan, "op {op}");
        }
        assert!(idx.lookup(CmpOp::Ne, &Value::Int(65)).is_err());
    }

    #[test]
    fn range_bounds() {
        let schema = Schema::new(vec![("x", ColumnType::Int)]).unwrap();
        let mut s = DataStore::new(schema);
        for v in [5i64, 1, 3, 3, 9, 7] {
            s.insert(Row::new(vec![Value::Int(v)])).unwrap();
        }
        let idx = SortedIndex::build(&s, "x").unwrap();
        assert_eq!(idx.min_key(), Some(&Value::Int(1)));
        assert_eq!(idx.max_key(), Some(&Value::Int(9)));
        // [3, 7): keys 3, 3, 5.
        let ids = idx.range(
            Bound::Included(&Value::Int(3)),
            Bound::Excluded(&Value::Int(7)),
        );
        assert_eq!(ids.len(), 3);
        // Empty range.
        assert!(idx
            .range(Bound::Excluded(&Value::Int(9)), Bound::Unbounded)
            .is_empty());
        // Unbounded both sides = everything.
        assert_eq!(idx.range(Bound::Unbounded, Bound::Unbounded).len(), 6);
    }

    #[test]
    fn nulls_are_excluded_and_unknown_column_fails() {
        let schema = Schema::new(vec![("x", ColumnType::Int)]).unwrap();
        let mut s = DataStore::new(schema);
        s.insert(Row::new(vec![Value::Int(1)])).unwrap();
        s.insert(Row::new(vec![Value::Null])).unwrap();
        let idx = SortedIndex::build(&s, "x").unwrap();
        assert_eq!(idx.len(), 1);
        assert!(SortedIndex::build(&s, "nope").is_err());
    }

    #[test]
    fn text_index_orders_lexicographically() {
        let schema = Schema::new(vec![("name", ColumnType::Text)]).unwrap();
        let mut s = DataStore::new(schema);
        for n in ["carol", "alice", "bob"] {
            s.insert(Row::new(vec![Value::Text(n.into())])).unwrap();
        }
        let idx = SortedIndex::build(&s, "name").unwrap();
        let rows = idx
            .lookup_rows(&s, CmpOp::Ge, &Value::Text("b".into()))
            .unwrap();
        let names: Vec<String> = rows.iter().map(|r| r.values()[0].to_string()).collect();
        assert_eq!(names, vec!["bob", "carol"]);
    }

    proptest! {
        #[test]
        fn prop_index_equals_scan(
            xs in prop::collection::vec(-50i64..50, 0..200),
            cut in -50i64..50,
        ) {
            let schema = Schema::new(vec![("x", ColumnType::Int)]).unwrap();
            let mut s = DataStore::new(schema);
            for &x in &xs {
                s.insert(Row::new(vec![Value::Int(x)])).unwrap();
            }
            let idx = SortedIndex::build(&s, "x").unwrap();
            for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                let via_index = idx.lookup(op, &Value::Int(cut)).unwrap().len();
                let via_scan = s
                    .count(&Predicate::cmp("x", op, Value::Int(cut)))
                    .unwrap();
                prop_assert_eq!(via_index, via_scan);
            }
        }
    }
}
