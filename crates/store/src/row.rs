//! Rows: ordered value vectors matching a schema.

use crate::schema::Schema;
use crate::value::Value;
use edgelet_util::Result;
use edgelet_wire::{Decode, Encode, Reader, Writer};

/// One tuple.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Wraps a value vector.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at a column index.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value of a named column under `schema`.
    pub fn get_named(&self, schema: &Schema, name: &str) -> Result<&Value> {
        Ok(&self.values[schema.index_of(name)?])
    }

    /// Projects onto the named columns.
    pub fn project(&self, schema: &Schema, names: &[&str]) -> Result<Row> {
        let mut out = Vec::with_capacity(names.len());
        for n in names {
            out.push(self.values[schema.index_of(n)?].clone());
        }
        Ok(Row::new(out))
    }

    /// Consumes into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl Encode for Row {
    fn encode(&self, w: &mut Writer) {
        self.values.encode(w);
    }
}

impl Decode for Row {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Row {
            values: Vec::<Value>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;
    use edgelet_wire::{from_bytes, to_bytes};

    fn schema() -> Schema {
        Schema::new(vec![("age", ColumnType::Int), ("bmi", ColumnType::Float)]).unwrap()
    }

    #[test]
    fn access_and_projection() {
        let s = schema();
        let r = Row::new(vec![Value::Int(70), Value::Float(23.5)]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(0), Some(&Value::Int(70)));
        assert_eq!(r.get(9), None);
        assert_eq!(r.get_named(&s, "bmi").unwrap(), &Value::Float(23.5));
        assert!(r.get_named(&s, "zzz").is_err());
        let p = r.project(&s, &["bmi"]).unwrap();
        assert_eq!(p.values(), &[Value::Float(23.5)]);
        assert_eq!(
            Row::from(vec![Value::Int(1)]).into_values(),
            vec![Value::Int(1)]
        );
    }

    #[test]
    fn wire_roundtrip() {
        let r = Row::new(vec![
            Value::Int(1),
            Value::Null,
            Value::Text("x".into()),
            Value::Bool(true),
            Value::Float(-0.5),
        ]);
        let back: Row = from_bytes(&to_bytes(&r)).unwrap();
        assert_eq!(back, r);
    }
}
