//! Minimal CSV import/export for the examples and debugging.
//!
//! Dialect: comma separator, `"`-quoting for fields containing commas,
//! quotes or newlines, header row mandatory. `NULL` (unquoted) denotes a
//! null value.

use crate::row::Row;
use crate::schema::Schema;
use crate::store::DataStore;
use crate::value::{ColumnType, Value};
use edgelet_util::{Error, Result};
use std::fmt::Write as _;

/// Serializes a store to CSV (header + rows).
pub fn to_csv(store: &DataStore) -> String {
    let mut out = String::new();
    let names: Vec<String> = store
        .schema()
        .columns()
        .iter()
        .map(|c| quote(&c.name))
        .collect();
    let _ = writeln!(out, "{}", names.join(","));
    for row in store.rows() {
        let cells: Vec<String> = row.values().iter().map(format_value).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Parses CSV text into a store under the given schema.
///
/// The header must match the schema's column names exactly (order
/// included); cells are parsed according to the column types.
pub fn from_csv(schema: &Schema, text: &str) -> Result<DataStore> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(Error::Decode("CSV input has no header".into()));
    }
    let header = records.remove(0);
    let expected: Vec<&str> = schema.names();
    if header.len() != expected.len() || header.iter().zip(&expected).any(|(h, e)| h.as_str() != *e)
    {
        return Err(Error::Schema(format!(
            "CSV header {header:?} does not match schema {expected:?}"
        )));
    }
    let mut store = DataStore::new(schema.clone());
    for (line_no, record) in records.into_iter().enumerate() {
        if record.len() != schema.arity() {
            return Err(Error::Decode(format!(
                "record {} has {} fields, schema expects {}",
                line_no + 2,
                record.len(),
                schema.arity()
            )));
        }
        let mut values = Vec::with_capacity(record.len());
        for (cell, col) in record.into_iter().zip(schema.columns()) {
            values.push(parse_value(&cell, col.ty).map_err(|e| {
                Error::Decode(format!(
                    "record {}, column `{}`: {}",
                    line_no + 2,
                    col.name,
                    e.message()
                ))
            })?);
        }
        store.insert(Row::new(values))?;
    }
    Ok(store)
}

fn format_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            // Keep full precision for roundtrips.
            format!("{x:?}")
        }
        Value::Text(t) => quote(t),
        Value::Bool(b) => b.to_string(),
    }
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s == "NULL" {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Splits CSV text into records of raw cells (quotes resolved).
/// Quoted cells are tagged by having been surrounded with quotes; we return
/// the unescaped content and rely on the `NULL` sentinel only for unquoted
/// cells — callers that need "the literal text NULL" quote it.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    let mut was_quoted = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cell.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if cell.is_empty() {
                    in_quotes = true;
                    was_quoted = true;
                } else {
                    return Err(Error::Decode("stray quote inside unquoted cell".into()));
                }
            }
            ',' => {
                record.push(finish_cell(&mut cell, &mut was_quoted));
            }
            '\n' => {
                record.push(finish_cell(&mut cell, &mut was_quoted));
                records.push(std::mem::take(&mut record));
            }
            '\r' => {} // tolerate CRLF
            _ => cell.push(c),
        }
    }
    if in_quotes {
        return Err(Error::Decode("unterminated quoted cell".into()));
    }
    if !cell.is_empty() || !record.is_empty() {
        record.push(finish_cell(&mut cell, &mut was_quoted));
        records.push(record);
    }
    Ok(records)
}

fn finish_cell(cell: &mut String, was_quoted: &mut bool) -> String {
    let out = std::mem::take(cell);
    let quoted = *was_quoted;
    *was_quoted = false;
    if quoted && out == "NULL" {
        // Quoted NULL means the literal text; mark it so parse_value keeps
        // it as text. We use a private sentinel prefix that cannot appear
        // otherwise because quotes are resolved already.
        return format!("\u{0}QUOTED\u{0}{out}");
    }
    out
}

fn parse_value(cell: &str, ty: ColumnType) -> Result<Value> {
    let (literal_text, cell) = match cell.strip_prefix("\u{0}QUOTED\u{0}") {
        Some(rest) => (true, rest),
        None => (false, cell),
    };
    if !literal_text && cell == "NULL" {
        return Ok(Value::Null);
    }
    match ty {
        ColumnType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::Decode(format!("`{cell}` is not an int"))),
        ColumnType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::Decode(format!("`{cell}` is not a float"))),
        ColumnType::Text => Ok(Value::Text(cell.to_string())),
        ColumnType::Bool => match cell {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(Error::Decode(format!("`{cell}` is not a bool"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use edgelet_util::rng::DetRng;

    #[test]
    fn roundtrip_synthetic_data() {
        let mut rng = DetRng::new(5);
        let store = synth::health_store(200, &mut rng);
        let text = to_csv(&store);
        let back = from_csv(store.schema(), &text).unwrap();
        assert_eq!(back.rows(), store.rows());
    }

    #[test]
    fn quoting_and_nulls() {
        let schema =
            Schema::new(vec![("name", ColumnType::Text), ("age", ColumnType::Int)]).unwrap();
        let mut store = DataStore::new(schema.clone());
        store
            .insert(Row::new(vec![
                Value::Text("Doe, \"Jane\"\nMD".into()),
                Value::Null,
            ]))
            .unwrap();
        store
            .insert(Row::new(vec![Value::Text("NULL".into()), Value::Int(3)]))
            .unwrap();
        let text = to_csv(&store);
        let back = from_csv(&schema, &text).unwrap();
        assert_eq!(back.rows(), store.rows());
        // The literal text "NULL" survived as text, the null as null.
        assert_eq!(back.rows()[0].values()[1], Value::Null);
        assert_eq!(back.rows()[1].values()[0], Value::Text("NULL".into()));
    }

    #[test]
    fn header_mismatch_rejected() {
        let schema = Schema::new(vec![("a", ColumnType::Int)]).unwrap();
        assert!(from_csv(&schema, "b\n1\n").is_err());
        assert!(from_csv(&schema, "a,b\n1,2\n").is_err());
        assert!(from_csv(&schema, "").is_err());
    }

    #[test]
    fn bad_cells_rejected_with_context() {
        let schema = Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Bool)]).unwrap();
        let err = from_csv(&schema, "a,b\nxx,true\n").unwrap_err();
        assert!(err.to_string().contains("column `a`"), "{err}");
        let err = from_csv(&schema, "a,b\n1,maybe\n").unwrap_err();
        assert!(err.to_string().contains("not a bool"), "{err}");
        let err = from_csv(&schema, "a,b\n1\n").unwrap_err();
        assert!(err.to_string().contains("fields"), "{err}");
    }

    #[test]
    fn malformed_quotes_rejected() {
        let schema = Schema::new(vec![("a", ColumnType::Text)]).unwrap();
        assert!(from_csv(&schema, "a\n\"unterminated\n").is_err());
        assert!(from_csv(&schema, "a\nab\"cd\n").is_err());
    }
}
