//! Write-ahead-log record framing, recovery scans, and the retrying
//! [`DurableLog`] front end.
//!
//! Every record is framed as
//!
//! ```text
//! +----------------+------------------+------------------+
//! | varint len(N)  | CRC-32 (4B, LE)  | payload (N bytes)|
//! +----------------+------------------+------------------+
//! ```
//!
//! reusing the `edgelet-wire` LEB128 varint and the wire CRC-32
//! ([`edgelet_wire::crc::crc32`]) over the payload. The frame makes two
//! failure modes distinguishable on recovery:
//!
//! * a **torn tail** — the *final* frame is incomplete or fails its
//!   checksum. That is what a crash mid-append leaves behind; the tail
//!   is dropped ([`TailState::TornTail`]) and the log is truncated back
//!   to its last clean frame. The lost record was never acknowledged
//!   durable (its `sync` cannot have returned), so dropping it is safe.
//! * **mid-log corruption** — a frame *before* the end fails its
//!   checksum or its framing. Appends after it were acknowledged but
//!   can no longer be trusted; the scan refuses the log
//!   ([`TailState::Corrupt`]) and the service degrades to read-only
//!   drained mode rather than silently mis-charging a ledger.

use crate::durable::{DurableBackend, FrameRef, StorageError, StorageResult};
use edgelet_util::Payload;
use edgelet_wire::crc::crc32;
use std::ops::Range;
use std::sync::Arc;

/// Upper bound on a single record's payload (16 MiB): a corrupted
/// length prefix must not make the scan "consume" gigabytes.
pub const MAX_RECORD_BYTES: u64 = 16 << 20;

/// Frames one payload as a WAL record.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let (head, n) = frame_header(payload);
    let mut out = Vec::with_capacity(n + payload.len());
    out.extend_from_slice(&head[..n]);
    out.extend_from_slice(payload);
    out
}

/// Frame header bytes for one payload: the length varint followed by
/// the CRC-32, in a fixed stack buffer (second element is the used
/// length). Batch committers pair this with the caller's payload slice
/// (see [`crate::FrameRef`]) so a batch append never gathers records
/// into a second contiguous allocation.
pub fn frame_header(payload: &[u8]) -> ([u8; 13], usize) {
    let mut buf = [0u8; 13];
    let mut n = 0;
    let mut v = payload.len() as u64;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            n += 1;
            break;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
    buf[n..n + 4].copy_from_slice(&crc32(payload).to_le_bytes());
    n += 4;
    (buf, n)
}

/// What the scan found at the end of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailState {
    /// Every frame parsed and verified.
    Clean,
    /// The final frame is incomplete or fails its checksum — a crash
    /// mid-append. Truncating back to `clean_len` repairs the log.
    TornTail {
        /// Log length up to and including the last clean frame.
        clean_len: u64,
        /// Bytes dropped by the repair.
        dropped: u64,
    },
    /// A frame *before* the end is damaged; acknowledged records after
    /// it are unrecoverable, so the log must not be trusted.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// Human-readable cause.
        reason: String,
    },
}

/// The result of scanning a WAL byte string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Payloads of every clean frame, in append order.
    pub records: Vec<Vec<u8>>,
    /// What the end of the log looked like.
    pub tail: TailState,
}

/// The allocation-free form of a scan: byte ranges of every clean
/// frame's payload instead of materialized copies. Recovery slices the
/// ranges out of an [`Payload`]-backed segment buffer zero-copy; tests
/// and tooling that want owned bytes go through [`scan_wal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// Payload byte range of every clean frame, in append order.
    pub frames: Vec<Range<usize>>,
    /// What the end of the log looked like.
    pub tail: TailState,
}

/// One parse attempt at `offset`; `None` means the bytes from `offset`
/// cannot hold a complete frame (candidate torn tail).
enum FrameParse {
    Complete { payload_ok: bool, end: usize },
    Incomplete,
}

fn parse_frame(bytes: &[u8], offset: usize) -> FrameParse {
    let mut pos = offset;
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(pos) else {
            return FrameParse::Incomplete;
        };
        pos += 1;
        len |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift >= 63 {
            // A varint this long is not a length our writer produces;
            // treat as an unparseable (incomplete) frame.
            return FrameParse::Incomplete;
        }
    }
    if len > MAX_RECORD_BYTES {
        return FrameParse::Incomplete;
    }
    let Some(crc_bytes) = bytes.get(pos..pos + 4) else {
        return FrameParse::Incomplete;
    };
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    pos += 4;
    let len = len as usize;
    let Some(payload) = bytes.get(pos..pos + len) else {
        return FrameParse::Incomplete;
    };
    FrameParse::Complete {
        payload_ok: crc32(payload) == stored,
        end: pos + len,
    }
}

/// Scans a WAL byte string into payload ranges plus a tail verdict,
/// without copying any record bytes.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match parse_frame(bytes, offset) {
            FrameParse::Incomplete => {
                // The frame runs past the end of the log: a torn tail.
                return FrameScan {
                    frames,
                    tail: TailState::TornTail {
                        clean_len: offset as u64,
                        dropped: (bytes.len() - offset) as u64,
                    },
                };
            }
            FrameParse::Complete { payload_ok, end } => {
                if !payload_ok {
                    if end == bytes.len() {
                        // Checksum failure on the final frame: the media
                        // tore the write mid-frame. Drop it.
                        return FrameScan {
                            frames,
                            tail: TailState::TornTail {
                                clean_len: offset as u64,
                                dropped: (bytes.len() - offset) as u64,
                            },
                        };
                    }
                    return FrameScan {
                        frames,
                        tail: TailState::Corrupt {
                            offset: offset as u64,
                            reason: "CRC-32 mismatch on a non-final record".into(),
                        },
                    };
                }
                let start = offset + frame_header_len(bytes, offset);
                frames.push(start..end);
                offset = end;
            }
        }
    }
    FrameScan {
        frames,
        tail: TailState::Clean,
    }
}

/// Scans a WAL byte string into materialized records plus a tail
/// verdict. Thin copying wrapper over [`scan_frames`].
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let scan = scan_frames(bytes);
    WalScan {
        records: scan.frames.into_iter().map(|r| bytes[r].to_vec()).collect(),
        tail: scan.tail,
    }
}

/// Header length (varint + CRC) of the complete frame at `offset`.
fn frame_header_len(bytes: &[u8], offset: usize) -> usize {
    let mut n = 0usize;
    while bytes[offset + n] & 0x80 != 0 {
        n += 1;
    }
    n + 1 + 4
}

/// Retry policy for transient backend errors: `attempts` tries with a
/// deterministic exponential backoff (`base_delay << attempt`). The
/// backoff is indexed by attempt count, never by a wall-clock read, so
/// the determinism lint (`E102`) holds by construction.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (including the first).
    pub attempts: u32,
    /// Backoff unit; attempt `i` sleeps `base_delay << i` before retrying.
    pub base_delay: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: std::time::Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps (unit tests).
    pub fn immediate(attempts: u32) -> Self {
        RetryPolicy {
            attempts,
            base_delay: std::time::Duration::ZERO,
        }
    }

    fn run<T>(&self, mut op: impl FnMut() -> StorageResult<T>) -> StorageResult<T> {
        let attempts = self.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < attempts => {
                    if !self.base_delay.is_zero() {
                        std::thread::sleep(self.base_delay * (1 << attempt.min(16)));
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| StorageError::Transient("retry budget exhausted".into())))
    }
}

/// What [`DurableLog::recover`] found.
#[derive(Debug)]
pub struct Recovered {
    /// The checkpoint blob, if one was written.
    pub checkpoint: Option<Vec<u8>>,
    /// Clean WAL record payloads after the checkpoint, in append order,
    /// as zero-copy [`Payload`] slices of the segment buffers they were
    /// read into — replay borrows them without a per-record copy.
    pub records: Vec<Payload>,
    /// Bytes dropped by a torn-tail repair (`None` when the log was
    /// clean).
    pub repaired: Option<u64>,
    /// Number of live WAL segments scanned.
    pub segments: usize,
}

/// The record-level front end over a [`DurableBackend`]: checksummed
/// appends with sync, transient-error retry, checkpointing, and the
/// recovery scan.
pub struct DurableLog {
    backend: Arc<dyn DurableBackend>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("retry", &self.retry)
            .finish()
    }
}

impl DurableLog {
    /// Wraps a backend with a retry policy.
    pub fn new(backend: Arc<dyn DurableBackend>, retry: RetryPolicy) -> Self {
        DurableLog { backend, retry }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &Arc<dyn DurableBackend> {
        &self.backend
    }

    /// Appends one record and syncs it durable. Only after `Ok` may the
    /// caller treat the record as persisted.
    pub fn append(&self, payload: &[u8]) -> StorageResult<()> {
        let frame = frame_record(payload);
        self.retry.run(|| self.backend.append(&frame))?;
        self.retry.run(|| self.backend.sync())
    }

    /// Appends a batch of pre-framed records and syncs them durable
    /// with a **single** sync — the group-commit fast path. Only after
    /// `Ok` may the caller treat any record of the batch as persisted.
    pub fn append_batch(&self, frames: &[FrameRef<'_>]) -> StorageResult<()> {
        self.retry.run(|| self.backend.append_batch(frames))?;
        self.retry.run(|| self.backend.sync())
    }

    /// Atomically replaces the checkpoint and clears the WAL it
    /// subsumes.
    pub fn checkpoint(&self, state: &[u8]) -> StorageResult<()> {
        self.retry.run(|| self.backend.write_checkpoint(state))?;
        self.retry.run(|| self.backend.reset_wal())
    }

    /// Replaces the checkpoint blob without touching the WAL (callers
    /// that rotate/compact segments themselves).
    pub fn write_checkpoint(&self, state: &[u8]) -> StorageResult<()> {
        self.retry.run(|| self.backend.write_checkpoint(state))
    }

    /// Seals the active segment behind a fresh empty one.
    pub fn rotate(&self) -> StorageResult<()> {
        self.retry.run(|| self.backend.rotate_wal())
    }

    /// Deletes every sealed segment (checkpoint-subsumed compaction).
    pub fn drop_sealed(&self) -> StorageResult<()> {
        self.retry.run(|| self.backend.drop_sealed_segments())
    }

    /// Byte length of each live segment, oldest first.
    pub fn segment_sizes(&self) -> StorageResult<Vec<u64>> {
        self.retry.run(|| self.backend.segment_sizes())
    }

    /// Reads checkpoint + WAL segments (oldest first), repairing a torn
    /// tail in the **active** segment (truncating it back to its last
    /// clean frame) and refusing damage anywhere else with
    /// [`StorageError::Unavailable`].
    ///
    /// The per-segment rules: a sealed segment must scan fully clean —
    /// a torn or corrupt frame there sits *before* acknowledged records
    /// in later segments, so the log cannot be trusted. Only the final
    /// (active) segment may end in a torn tail, which is what a crash
    /// mid-append leaves behind.
    ///
    /// Record payloads are returned as zero-copy [`Payload`] slices over
    /// the per-segment read buffers.
    pub fn recover(&self) -> StorageResult<Recovered> {
        let checkpoint = self.retry.run(|| self.backend.read_checkpoint())?;
        let segments = self.retry.run(|| self.backend.read_wal_segments())?;
        let count = segments.len();
        let mut records = Vec::new();
        let mut repaired = None;
        // Absolute offset of the current segment's first byte, for
        // error messages that span the whole log.
        let mut base: u64 = 0;
        for (i, seg) in segments.into_iter().enumerate() {
            let is_active = i + 1 == count;
            let seg_len = seg.len() as u64;
            let buf = Payload::new(seg);
            let scan = scan_frames(buf.as_slice());
            match scan.tail {
                TailState::Clean => {}
                TailState::TornTail { clean_len, dropped } if is_active => {
                    self.retry.run(|| self.backend.truncate_wal(clean_len))?;
                    repaired = Some(dropped);
                }
                TailState::TornTail { clean_len, .. } => {
                    return Err(StorageError::Unavailable(format!(
                        "WAL corrupt at byte {offset}: torn frame in sealed segment {i}; \
                         refusing to replay (acknowledged records after the damage \
                         are unrecoverable)",
                        offset = base + clean_len
                    )));
                }
                TailState::Corrupt { offset, reason } => {
                    return Err(StorageError::Unavailable(format!(
                        "WAL corrupt at byte {offset}: {reason}; refusing to replay \
                         (acknowledged records after the damage are unrecoverable)",
                        offset = base + offset
                    )));
                }
            }
            records.extend(scan.frames.into_iter().map(|r| buf.slice(r)));
            base += seg_len;
        }
        Ok(Recovered {
            checkpoint,
            records,
            repaired,
            segments: count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{FaultyBackend, MemBackend, StorageFaultAction, StorageFaultPlan};

    fn mem_log(backend: Arc<MemBackend>) -> DurableLog {
        DurableLog::new(backend, RetryPolicy::immediate(3))
    }

    fn owned(records: &[Payload]) -> Vec<Vec<u8>> {
        records.iter().map(|p| p.to_vec()).collect()
    }

    #[test]
    fn frames_round_trip_through_scan() {
        let mut wal = Vec::new();
        for payload in [&b"alpha"[..], b"", b"gamma-delta"] {
            wal.extend_from_slice(&frame_record(payload));
        }
        let scan = scan_wal(&wal);
        assert_eq!(scan.tail, TailState::Clean);
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma-delta".to_vec()]
        );
    }

    #[test]
    fn torn_tail_is_detected_and_dropped() {
        let mut wal = Vec::new();
        wal.extend_from_slice(&frame_record(b"kept"));
        let clean_len = wal.len() as u64;
        let torn = frame_record(b"lost-in-the-crash");
        wal.extend_from_slice(&torn[..torn.len() - 5]);
        let scan = scan_wal(&wal);
        assert_eq!(scan.records, vec![b"kept".to_vec()]);
        assert_eq!(
            scan.tail,
            TailState::TornTail {
                clean_len,
                dropped: (torn.len() - 5) as u64
            }
        );
    }

    #[test]
    fn corrupt_final_record_is_a_torn_tail_not_corruption() {
        let mut wal = Vec::new();
        wal.extend_from_slice(&frame_record(b"kept"));
        let clean_len = wal.len() as u64;
        let mut last = frame_record(b"scrambled");
        let n = last.len();
        last[n - 1] ^= 0xFF;
        wal.extend_from_slice(&last);
        let scan = scan_wal(&wal);
        assert_eq!(scan.records, vec![b"kept".to_vec()]);
        assert!(matches!(scan.tail, TailState::TornTail { clean_len: l, .. } if l == clean_len));
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let mut wal = Vec::new();
        let mut first = frame_record(b"damaged");
        first[6] ^= 0xFF; // flip a payload byte of a non-final record
        wal.extend_from_slice(&first);
        wal.extend_from_slice(&frame_record(b"after"));
        let scan = scan_wal(&wal);
        assert!(scan.records.is_empty());
        assert!(
            matches!(scan.tail, TailState::Corrupt { offset: 0, .. }),
            "{:?}",
            scan.tail
        );
    }

    #[test]
    fn hostile_length_prefix_cannot_swallow_the_log() {
        // A length prefix claiming 2^40 bytes must scan as a torn tail
        // (unparseable frame), not attempt a giant allocation.
        let mut wal = frame_record(b"ok").to_vec();
        let clean_len = wal.len() as u64;
        let mut v = 1u64 << 40;
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                wal.push(byte);
                break;
            }
            wal.push(byte | 0x80);
        }
        wal.extend_from_slice(&[0u8; 64]);
        let scan = scan_wal(&wal);
        assert_eq!(scan.records, vec![b"ok".to_vec()]);
        assert!(matches!(scan.tail, TailState::TornTail { clean_len: l, .. } if l == clean_len));
    }

    #[test]
    fn log_appends_and_recovers() {
        let backend = Arc::new(MemBackend::new());
        let log = mem_log(backend.clone());
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        let rec = log.recover().unwrap();
        assert_eq!(rec.checkpoint, None);
        assert_eq!(owned(&rec.records), vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(rec.repaired, None);

        log.checkpoint(b"state-after-two").unwrap();
        log.append(b"three").unwrap();
        let rec = log.recover().unwrap();
        assert_eq!(rec.checkpoint.as_deref(), Some(&b"state-after-two"[..]));
        assert_eq!(owned(&rec.records), vec![b"three".to_vec()]);
    }

    #[test]
    fn recovery_repairs_an_injected_torn_tail() {
        let backend = Arc::new(MemBackend::new());
        {
            let faulty: Arc<dyn crate::durable::DurableBackend> = Arc::new(FaultyBackend::new(
                backend.clone(),
                StorageFaultPlan::new().with(2, StorageFaultAction::TornTail { keep: 6 }),
            ));
            let log = DurableLog::new(faulty, RetryPolicy::immediate(2));
            log.append(b"survives").unwrap();
            assert!(log.append(b"torn-away").is_err());
        }
        // "Restart": recover straight from the inner backend.
        let log = mem_log(backend.clone());
        let rec = log.recover().unwrap();
        assert_eq!(owned(&rec.records), vec![b"survives".to_vec()]);
        assert!(rec.repaired.is_some());
        // The repair truncated the media itself: a second recovery is clean.
        let rec = log.recover().unwrap();
        assert_eq!(rec.repaired, None);
        assert_eq!(owned(&rec.records), vec![b"survives".to_vec()]);
    }

    #[test]
    fn recovery_refuses_mid_log_truncated_record() {
        let backend = Arc::new(MemBackend::new());
        let faulty: Arc<dyn crate::durable::DurableBackend> = Arc::new(FaultyBackend::new(
            backend.clone(),
            StorageFaultPlan::new().with(1, StorageFaultAction::TruncatedRecord { keep: 4 }),
        ));
        let log = DurableLog::new(faulty, RetryPolicy::immediate(2));
        log.append(b"silently-cut").unwrap();
        log.append(b"acknowledged-after").unwrap();
        let err = mem_log(backend).recover().unwrap_err();
        assert!(!err.is_transient());
        assert!(err.message().contains("refusing to replay"), "{err}");
    }

    #[test]
    fn failed_syncs_are_retried_to_success() {
        let backend = Arc::new(MemBackend::new());
        let faulty: Arc<dyn crate::durable::DurableBackend> = Arc::new(FaultyBackend::new(
            backend.clone(),
            StorageFaultPlan::new().with(1, StorageFaultAction::FailedSync { times: 2 }),
        ));
        let log = DurableLog::new(faulty, RetryPolicy::immediate(3));
        log.append(b"rides-out-the-fsync-blip").unwrap();
        let rec = mem_log(backend).recover().unwrap();
        assert_eq!(
            owned(&rec.records),
            vec![b"rides-out-the-fsync-blip".to_vec()]
        );
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let faulty: Arc<dyn crate::durable::DurableBackend> = Arc::new(FaultyBackend::new(
            MemBackend::new(),
            StorageFaultPlan::new().with(1, StorageFaultAction::FailedSync { times: 5 }),
        ));
        let log = DurableLog::new(faulty, RetryPolicy::immediate(3));
        let err = log.append(b"never-durable").unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn corrupt_checksum_on_the_tail_record_is_dropped() {
        let backend = Arc::new(MemBackend::new());
        let faulty: Arc<dyn crate::durable::DurableBackend> = Arc::new(FaultyBackend::new(
            backend.clone(),
            // Byte 8 lands inside the payload of the second frame
            // (header is varint+CRC = 5 bytes here).
            StorageFaultPlan::new().with(2, StorageFaultAction::CorruptChecksum { byte: 8 }),
        ));
        let log = DurableLog::new(faulty, RetryPolicy::immediate(2));
        log.append(b"kept").unwrap();
        log.append(b"flipped").unwrap();
        let rec = mem_log(backend).recover().unwrap();
        assert_eq!(owned(&rec.records), vec![b"kept".to_vec()]);
        assert!(rec.repaired.is_some());
    }
}
