//! Synthetic health-survey data generator.
//!
//! Stands in for the DomYcile medical records (private) and the Santé
//! Publique France survey of the demo scenario. The schema and the
//! dependencies between columns are chosen so that every demo query is
//! meaningful:
//!
//! * `age` — mixture skewed old (home-care population) with a younger tail;
//! * `sex` — `"F"`/`"M"`;
//! * `bmi` — normal around 26, lightly age-dependent;
//! * `systolic_bp` — increases with age;
//! * `gir` — French dependency level 1 (most dependent) … 6 (autonomous),
//!   strongly age-dependent — the K-Means + Group-By demo query looks for
//!   exactly this structure;
//! * `region` — categorical 0..12;
//! * `diabetic` — prevalence increasing with BMI and age.

use crate::row::Row;
use crate::schema::Schema;
use crate::store::DataStore;
use crate::value::{ColumnType, Value};
use edgelet_util::rng::DetRng;

/// Returns the shared health-survey schema.
pub fn health_schema() -> Schema {
    Schema::new(vec![
        ("age", ColumnType::Int),
        ("sex", ColumnType::Text),
        ("bmi", ColumnType::Float),
        ("systolic_bp", ColumnType::Int),
        ("gir", ColumnType::Int),
        ("region", ColumnType::Int),
        ("diabetic", ColumnType::Bool),
    ])
    .unwrap()
}

/// Generates one individual's record.
pub fn health_row(rng: &mut DetRng) -> Row {
    // 70% elderly home-care population, 30% general adult population.
    let age: i64 = if rng.chance(0.7) {
        rng.normal(78.0, 8.0).clamp(65.0, 102.0).round() as i64
    } else {
        rng.normal(45.0, 14.0).clamp(18.0, 64.0).round() as i64
    };
    let sex = if rng.chance(0.55) { "F" } else { "M" };
    let bmi = (rng.normal(26.0, 4.0) + (age as f64 - 60.0) * 0.01).clamp(15.0, 50.0);
    let systolic_bp = (rng.normal(120.0, 12.0) + (age as f64 - 40.0) * 0.35)
        .clamp(90.0, 220.0)
        .round() as i64;
    // Dependency: the older, the lower the GIR (more dependent), with noise.
    let gir_base = match age {
        a if a >= 90 => 1.8,
        a if a >= 80 => 2.6,
        a if a >= 70 => 3.8,
        a if a >= 65 => 4.8,
        _ => 5.8,
    };
    let gir = (rng.normal(gir_base, 0.8).round() as i64).clamp(1, 6);
    let region = rng.range(0..13i64);
    let p_diabetic = 0.04 + 0.010 * (bmi - 22.0).max(0.0) + 0.002 * (age as f64 - 50.0).max(0.0);
    let diabetic = rng.chance(p_diabetic.min(0.65));

    Row::new(vec![
        Value::Int(age),
        Value::Text(sex.to_string()),
        Value::Float(bmi),
        Value::Int(systolic_bp),
        Value::Int(gir),
        Value::Int(region),
        Value::Bool(diabetic),
    ])
}

/// Builds a store holding `n` synthetic individuals.
pub fn health_store(n: usize, rng: &mut DetRng) -> DataStore {
    let mut store = DataStore::new(health_schema());
    for _ in 0..n {
        store
            .insert(health_row(rng))
            .expect("generator respects its own schema");
    }
    store
}

/// Builds `count` single-owner stores (one per edgelet), each holding
/// `rows_per_store` records. The paper's Data Contributors typically hold
/// one personal record each (`rows_per_store = 1`).
pub fn personal_stores(count: usize, rows_per_store: usize, rng: &mut DetRng) -> Vec<DataStore> {
    (0..count)
        .map(|i| {
            let mut dev_rng = rng.fork_indexed("personal-store", i as u64);
            health_store(rows_per_store, &mut dev_rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Predicate};

    #[test]
    fn schema_matches_rows() {
        let mut rng = DetRng::new(1);
        let s = health_store(500, &mut rng);
        assert_eq!(s.len(), 500);
        assert_eq!(s.schema(), &health_schema());
    }

    #[test]
    fn distributions_are_plausible() {
        let mut rng = DetRng::new(2);
        let s = health_store(5_000, &mut rng);
        let elderly = s
            .count(&Predicate::cmp("age", CmpOp::Gt, Value::Int(65)))
            .unwrap();
        let frac = elderly as f64 / 5_000.0;
        assert!(frac > 0.55 && frac < 0.8, "elderly fraction {frac}");

        // GIR correlates with age: mean GIR of 65+ should be clearly lower
        // (more dependent) than the younger group's.
        let gir_mean = |pred: &Predicate| -> f64 {
            let rows = s.scan(pred).unwrap();
            let sum: i64 = rows
                .iter()
                .map(|r| r.get_named(s.schema(), "gir").unwrap().as_i64().unwrap())
                .sum();
            sum as f64 / rows.len() as f64
        };
        let old = gir_mean(&Predicate::cmp("age", CmpOp::Ge, Value::Int(80)));
        let young = gir_mean(&Predicate::cmp("age", CmpOp::Lt, Value::Int(65)));
        assert!(
            young - old > 1.5,
            "dependency must increase with age: old {old}, young {young}"
        );
    }

    #[test]
    fn values_within_domains() {
        let mut rng = DetRng::new(3);
        let s = health_store(2_000, &mut rng);
        for r in s.rows() {
            let age = r.get_named(s.schema(), "age").unwrap().as_i64().unwrap();
            assert!((18..=102).contains(&age));
            let gir = r.get_named(s.schema(), "gir").unwrap().as_i64().unwrap();
            assert!((1..=6).contains(&gir));
            let bmi = r.get_named(s.schema(), "bmi").unwrap().as_f64().unwrap();
            assert!((15.0..=50.0).contains(&bmi));
            let region = r.get_named(s.schema(), "region").unwrap().as_i64().unwrap();
            assert!((0..13).contains(&region));
            let sex = r.get_named(s.schema(), "sex").unwrap();
            assert!(matches!(sex, Value::Text(t) if t == "F" || t == "M"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = health_store(50, &mut DetRng::new(9));
        let b = health_store(50, &mut DetRng::new(9));
        assert_eq!(a.rows(), b.rows());
        let c = health_store(50, &mut DetRng::new(10));
        assert_ne!(a.rows(), c.rows());
    }

    #[test]
    fn personal_stores_are_independent() {
        let mut rng = DetRng::new(4);
        let stores = personal_stores(20, 1, &mut rng);
        assert_eq!(stores.len(), 20);
        assert!(stores.iter().all(|s| s.len() == 1));
        // Not all identical.
        let first = stores[0].rows()[0].clone();
        assert!(stores.iter().any(|s| s.rows()[0] != first));
    }
}
