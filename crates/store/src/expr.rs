//! Predicate language for filtered scans (`age > 65 AND gir <= 3`).

use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Reader, Writer};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equals.
    Eq,
    /// Not equals.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over one row.
///
/// SQL-like null semantics: a comparison involving `NULL` (or incomparable
/// types) is *false*, and `Not` of it is *true* only when the inner
/// predicate evaluated to false for a non-null reason — we keep two-valued
/// logic for simplicity, so `Not(Cmp(NULL > 1))` is `true`. Queries in the
/// paper filter on mandatory attributes, where the distinction is moot.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (select everything).
    True,
    /// Compare a column against a literal.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// Both must hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either must hold.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Column value equals one of the listed literals (`region IN (1,3)`).
    InList {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
}

impl Predicate {
    /// Convenience constructor: `column op value`.
    pub fn cmp(column: &str, op: CmpOp, value: Value) -> Predicate {
        Predicate::Cmp {
            column: column.to_string(),
            op,
            value,
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// `column IN (values...)`.
    pub fn in_list(column: &str, values: Vec<Value>) -> Predicate {
        Predicate::InList {
            column: column.to_string(),
            values,
        }
    }

    /// Validates column references against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Predicate::True => Ok(()),
            Predicate::Cmp { column, .. } => schema.index_of(column).map(|_| ()),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Predicate::Not(p) => p.validate(schema),
            Predicate::InList { column, .. } => schema.index_of(column).map(|_| ()),
        }
    }

    /// Evaluates against a row.
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp { column, op, value } => {
                let idx = schema.index_of(column)?;
                let cell = row
                    .get(idx)
                    .ok_or_else(|| Error::Schema(format!("row too short for column `{column}`")))?;
                Ok(cell.compare(value).map(|o| op.test(o)).unwrap_or(false))
            }
            Predicate::And(a, b) => Ok(a.eval(schema, row)? && b.eval(schema, row)?),
            Predicate::Or(a, b) => Ok(a.eval(schema, row)? || b.eval(schema, row)?),
            Predicate::Not(p) => Ok(!p.eval(schema, row)?),
            Predicate::InList { column, values } => {
                let idx = schema.index_of(column)?;
                let cell = row
                    .get(idx)
                    .ok_or_else(|| Error::Schema(format!("row too short for column `{column}`")))?;
                Ok(values
                    .iter()
                    .any(|v| matches!(cell.compare(v), Some(std::cmp::Ordering::Equal))))
            }
        }
    }

    /// Names of all columns referenced.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp { column, .. } => out.push(column),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::InList { column, .. } => out.push(column),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => f.write_str("TRUE"),
            Predicate::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT {p}"),
            Predicate::InList { column, values } => {
                let vs: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                write!(f, "{column} IN ({})", vs.join(", "))
            }
        }
    }
}

const TAG_TRUE: u64 = 0;
const TAG_CMP: u64 = 1;
const TAG_AND: u64 = 2;
const TAG_OR: u64 = 3;
const TAG_NOT: u64 = 4;
const TAG_IN: u64 = 5;

impl Encode for Predicate {
    fn encode(&self, w: &mut Writer) {
        match self {
            Predicate::True => w.put_varint(TAG_TRUE),
            Predicate::Cmp { column, op, value } => {
                w.put_varint(TAG_CMP);
                column.encode(w);
                let op_tag: u8 = match op {
                    CmpOp::Eq => 0,
                    CmpOp::Ne => 1,
                    CmpOp::Lt => 2,
                    CmpOp::Le => 3,
                    CmpOp::Gt => 4,
                    CmpOp::Ge => 5,
                };
                op_tag.encode(w);
                value.encode(w);
            }
            Predicate::And(a, b) => {
                w.put_varint(TAG_AND);
                a.encode(w);
                b.encode(w);
            }
            Predicate::Or(a, b) => {
                w.put_varint(TAG_OR);
                a.encode(w);
                b.encode(w);
            }
            Predicate::Not(p) => {
                w.put_varint(TAG_NOT);
                p.encode(w);
            }
            Predicate::InList { column, values } => {
                w.put_varint(TAG_IN);
                column.encode(w);
                values.encode(w);
            }
        }
    }
}

impl Decode for Predicate {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.varint()? {
            TAG_TRUE => Ok(Predicate::True),
            TAG_CMP => {
                let column = String::decode(r)?;
                let op = match u8::decode(r)? {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Lt,
                    3 => CmpOp::Le,
                    4 => CmpOp::Gt,
                    5 => CmpOp::Ge,
                    other => return Err(Error::Decode(format!("invalid cmp op tag {other}"))),
                };
                let value = Value::decode(r)?;
                Ok(Predicate::Cmp { column, op, value })
            }
            TAG_AND => Ok(Predicate::And(
                Box::new(Predicate::decode(r)?),
                Box::new(Predicate::decode(r)?),
            )),
            TAG_OR => Ok(Predicate::Or(
                Box::new(Predicate::decode(r)?),
                Box::new(Predicate::decode(r)?),
            )),
            TAG_NOT => Ok(Predicate::Not(Box::new(Predicate::decode(r)?))),
            TAG_IN => Ok(Predicate::InList {
                column: String::decode(r)?,
                values: Vec::<Value>::decode(r)?,
            }),
            other => Err(Error::Decode(format!("invalid predicate tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;
    use edgelet_wire::{from_bytes, to_bytes};

    fn schema() -> Schema {
        Schema::new(vec![
            ("age", ColumnType::Int),
            ("gir", ColumnType::Int),
            ("sex", ColumnType::Text),
        ])
        .unwrap()
    }

    fn row(age: i64, gir: i64, sex: &str) -> Row {
        Row::new(vec![
            Value::Int(age),
            Value::Int(gir),
            Value::Text(sex.into()),
        ])
    }

    #[test]
    fn comparison_operators() {
        let s = schema();
        let r = row(70, 3, "F");
        for (op, expect) in [
            (CmpOp::Eq, false),
            (CmpOp::Ne, true),
            (CmpOp::Lt, false),
            (CmpOp::Le, false),
            (CmpOp::Gt, true),
            (CmpOp::Ge, true),
        ] {
            let p = Predicate::cmp("age", op, Value::Int(65));
            assert_eq!(p.eval(&s, &r).unwrap(), expect, "op {op}");
        }
    }

    #[test]
    fn boolean_connectives() {
        let s = schema();
        let r = row(70, 3, "F");
        let elderly = Predicate::cmp("age", CmpOp::Gt, Value::Int(65));
        let dependent = Predicate::cmp("gir", CmpOp::Le, Value::Int(2));
        let p = elderly.clone().and(dependent.clone());
        assert!(!p.eval(&s, &r).unwrap());
        let p = elderly.clone().or(dependent.clone());
        assert!(p.eval(&s, &r).unwrap());
        let p = dependent.not();
        assert!(p.eval(&s, &r).unwrap());
        assert!(Predicate::True.eval(&s, &r).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let r = Row::new(vec![Value::Null, Value::Int(1), Value::Text("M".into())]);
        let p = Predicate::cmp("age", CmpOp::Gt, Value::Int(65));
        assert!(!p.eval(&s, &r).unwrap());
        let p = Predicate::cmp("age", CmpOp::Eq, Value::Null);
        assert!(!p.eval(&s, &r).unwrap());
        // Incomparable types are false too.
        let p = Predicate::cmp("sex", CmpOp::Eq, Value::Int(1));
        assert!(!p.eval(&s, &r).unwrap());
    }

    #[test]
    fn validation_and_referenced_columns() {
        let s = schema();
        let p = Predicate::cmp("age", CmpOp::Gt, Value::Int(65)).and(Predicate::cmp(
            "sex",
            CmpOp::Eq,
            Value::Text("F".into()),
        ));
        p.validate(&s).unwrap();
        assert_eq!(p.referenced_columns(), vec!["age", "sex"]);
        let bad = Predicate::cmp("height", CmpOp::Gt, Value::Int(0));
        assert!(bad.validate(&s).is_err());
        // Eval on an unknown column errors rather than silently failing.
        assert!(bad.eval(&s, &row(1, 1, "F")).is_err());
    }

    #[test]
    fn in_list_semantics() {
        let s = schema();
        let r = row(70, 3, "F");
        assert!(
            Predicate::in_list("gir", vec![Value::Int(1), Value::Int(3)])
                .eval(&s, &r)
                .unwrap()
        );
        assert!(
            !Predicate::in_list("gir", vec![Value::Int(1), Value::Int(2)])
                .eval(&s, &r)
                .unwrap()
        );
        // Empty list matches nothing; type coercion applies (3 == 3.0).
        assert!(!Predicate::in_list("gir", vec![]).eval(&s, &r).unwrap());
        assert!(Predicate::in_list("gir", vec![Value::Float(3.0)])
            .eval(&s, &r)
            .unwrap());
        // Text membership.
        assert!(Predicate::in_list(
            "sex",
            vec![Value::Text("F".into()), Value::Text("X".into())]
        )
        .eval(&s, &r)
        .unwrap());
        // Unknown column errors; referenced columns include it.
        assert!(Predicate::in_list("zzz", vec![]).validate(&s).is_err());
        let p = Predicate::in_list("gir", vec![Value::Int(1)]).and(Predicate::cmp(
            "age",
            CmpOp::Gt,
            Value::Int(65),
        ));
        assert_eq!(p.referenced_columns(), vec!["age", "gir"]);
        assert_eq!(
            Predicate::in_list("gir", vec![Value::Int(1), Value::Int(2)]).to_string(),
            "gir IN (1, 2)"
        );
    }

    #[test]
    fn wire_roundtrip() {
        let p = Predicate::cmp("age", CmpOp::Ge, Value::Int(65))
            .and(Predicate::cmp("sex", CmpOp::Eq, Value::Text("F".into())))
            .or(Predicate::cmp("gir", CmpOp::Lt, Value::Int(3)).not())
            .and(Predicate::in_list(
                "gir",
                vec![Value::Int(1), Value::Int(2)],
            ));
        let back: Predicate = from_bytes(&to_bytes(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn display() {
        let p = Predicate::cmp("age", CmpOp::Gt, Value::Int(65)).and(Predicate::cmp(
            "gir",
            CmpOp::Le,
            Value::Int(2),
        ));
        assert_eq!(p.to_string(), "(age > 65 AND gir <= 2)");
    }
}
