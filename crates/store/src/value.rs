//! Typed values and column types.

use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Reader, Writer};
use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text (also used for enumerations like `sex`).
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Text => "text",
            ColumnType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A single typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent value.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The column type this value belongs to (`None` for `Null`).
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Text(_) => Some(ColumnType::Text),
            Value::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints coerce to floats); `None` for non-numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison. `None` when either side is null
    /// or the types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                // Numeric coercion across Int/Float.
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// A stable key for grouping. Floats are rejected (grouping on floats
    /// is a query-definition error caught at plan time).
    pub fn group_key(&self) -> Result<GroupKeyPart> {
        match self {
            Value::Null => Ok(GroupKeyPart::Null),
            Value::Int(i) => Ok(GroupKeyPart::Int(*i)),
            Value::Text(t) => Ok(GroupKeyPart::Text(t.clone())),
            Value::Bool(b) => Ok(GroupKeyPart::Bool(*b)),
            Value::Float(_) => Err(Error::InvalidQuery("cannot group by a float column".into())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(t) => write!(f, "{t}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One component of a grouping key (hashable, orderable).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKeyPart {
    /// Null groups together.
    Null,
    /// Integer key.
    Int(i64),
    /// Text key.
    Text(String),
    /// Boolean key.
    Bool(bool),
}

impl GroupKeyPart {
    /// Converts back to a value (for result rows).
    pub fn to_value(&self) -> Value {
        match self {
            GroupKeyPart::Null => Value::Null,
            GroupKeyPart::Int(i) => Value::Int(*i),
            GroupKeyPart::Text(t) => Value::Text(t.clone()),
            GroupKeyPart::Bool(b) => Value::Bool(*b),
        }
    }
}

impl fmt::Display for GroupKeyPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_value())
    }
}

const TAG_NULL: u64 = 0;
const TAG_INT: u64 = 1;
const TAG_FLOAT: u64 = 2;
const TAG_TEXT: u64 = 3;
const TAG_BOOL: u64 = 4;

impl Encode for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Null => w.put_varint(TAG_NULL),
            Value::Int(i) => {
                w.put_varint(TAG_INT);
                i.encode(w);
            }
            Value::Float(x) => {
                w.put_varint(TAG_FLOAT);
                x.encode(w);
            }
            Value::Text(t) => {
                w.put_varint(TAG_TEXT);
                t.encode(w);
            }
            Value::Bool(b) => {
                w.put_varint(TAG_BOOL);
                b.encode(w);
            }
        }
    }
}

impl Decode for Value {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.varint()? {
            TAG_NULL => Ok(Value::Null),
            TAG_INT => Ok(Value::Int(i64::decode(r)?)),
            TAG_FLOAT => Ok(Value::Float(f64::decode(r)?)),
            TAG_TEXT => Ok(Value::Text(String::decode(r)?)),
            TAG_BOOL => Ok(Value::Bool(bool::decode(r)?)),
            other => Err(Error::Decode(format!("invalid value tag {other}"))),
        }
    }
}

impl Encode for GroupKeyPart {
    fn encode(&self, w: &mut Writer) {
        self.to_value().encode(w);
    }
}

impl Decode for GroupKeyPart {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Value::decode(r)?
            .group_key()
            .map_err(|e| Error::Decode(format!("invalid group key: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_wire::{from_bytes, to_bytes};

    #[test]
    fn comparisons() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(3.5).compare(&Value::Int(3)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Text("a".into()).compare(&Value::Text("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Bool(false).compare(&Value::Bool(true)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Text("1".into())), None);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(3.0).as_i64(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.column_type(), None);
        assert_eq!(Value::Bool(true).column_type(), Some(ColumnType::Bool));
    }

    #[test]
    fn group_keys() {
        assert_eq!(Value::Int(5).group_key().unwrap(), GroupKeyPart::Int(5));
        assert_eq!(Value::Null.group_key().unwrap(), GroupKeyPart::Null);
        assert!(Value::Float(1.0).group_key().is_err());
        assert_eq!(
            GroupKeyPart::Text("x".into()).to_value(),
            Value::Text("x".into())
        );
    }

    #[test]
    fn wire_roundtrip() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Float(1.25),
            Value::Text("héllo".into()),
            Value::Bool(true),
        ] {
            let back: Value = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(back, v);
        }
        let k: GroupKeyPart = from_bytes(&to_bytes(&GroupKeyPart::Int(7))).unwrap();
        assert_eq!(k, GroupKeyPart::Int(7));
        // A float value does not decode as a group key.
        assert!(from_bytes::<GroupKeyPart>(&to_bytes(&Value::Float(1.0))).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(ColumnType::Float.to_string(), "float");
        assert_eq!(GroupKeyPart::Bool(true).to_string(), "true");
    }
}
