//! Per-edgelet personal data store.
//!
//! Each edgelet hosts its owner's raw data (the DomYcile box stores the
//! medical record on a micro-SD card; a phone stores its owner's profile).
//! Edgelet computing treats those stores as a horizontal partitioning of a
//! shared logical database: all stores conform to a common [`Schema`].
//!
//! * [`value`] — typed values and column types;
//! * [`schema`] — schemas and column resolution;
//! * [`row`] — rows and their wire encoding;
//! * [`expr`] — the predicate language (`age > 65 AND gir <= 3`);
//! * [`store`] — the store itself: insert, filtered scans, projection,
//!   reservoir sampling;
//! * [`durable`] — durability substrate: the [`DurableBackend`] trait
//!   over a segmented append-only log + checkpoint blob, with in-memory
//!   and file-backed implementations and deterministic storage-fault
//!   injection ([`FaultyBackend`]);
//! * [`wal`] — checksummed, length-prefixed WAL record framing, the
//!   per-segment torn-tail/corruption recovery scan, and the retrying
//!   [`DurableLog`] front end (see `docs/STORAGE.md`);
//! * [`groupcommit`] — the [`GroupCommitLog`] fast path: leader/follower
//!   sync coalescing, size-triggered segment rotation, and
//!   checkpoint-aware compaction;
//! * [`index`] — sorted secondary indexes for range lookups;
//! * [`synth`] — the synthetic health-survey dataset generator standing in
//!   for the private DomYcile data (see DESIGN.md §2);
//! * [`csv`] — plain-text import/export used by the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod durable;
pub mod expr;
pub mod groupcommit;
pub mod index;
pub mod row;
pub mod schema;
pub mod store;
pub mod synth;
pub mod value;
pub mod wal;

pub use durable::{
    DurableBackend, FaultyBackend, FileBackend, FrameRef, MemBackend, StorageError,
    StorageFaultAction, StorageFaultPlan, StorageFaultRule, StorageResult,
};
pub use expr::{CmpOp, Predicate};
pub use groupcommit::{GroupCommitConfig, GroupCommitLog};
pub use index::SortedIndex;
pub use row::Row;
pub use schema::{Column, Schema};
pub use store::DataStore;
pub use value::{ColumnType, Value};
pub use wal::{
    frame_header, frame_record, scan_frames, scan_wal, DurableLog, FrameScan, Recovered,
    RetryPolicy, TailState, WalScan,
};
