//! LEB128 variable-length integers and zigzag mapping.
//!
//! Unsigned integers are encoded 7 bits at a time, least-significant group
//! first, with the high bit of each byte acting as a continuation flag.
//! A `u64` therefore takes 1..=10 bytes. Signed integers are zigzag-mapped
//! (`0, -1, 1, -2, ...` → `0, 1, 2, 3, ...`) before varint encoding so that
//! small magnitudes stay small on the wire.

use edgelet_util::{Error, Result};

/// Maximum encoded size of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the varint encoding of `value` to `out`.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Writes the varint encoding of `value` into a stack buffer, returning
/// the number of bytes used. Allocation-free counterpart of [`write_u64`]
/// for hot encode paths.
pub fn write_u64_into(out: &mut [u8; MAX_VARINT_LEN], mut value: u64) -> usize {
    let mut i = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out[i] = byte;
            return i + 1;
        }
        out[i] = byte | 0x80;
        i += 1;
    }
}

/// Reads a varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed. Rejects truncated
/// input and non-canonical encodings longer than [`MAX_VARINT_LEN`].
#[inline]
pub fn read_u64(input: &[u8]) -> Result<(u64, usize)> {
    // Single-byte fast path: tags, sequence lengths, and small ints —
    // the overwhelming majority of varints on a row-decode path.
    if let Some(&first) = input.first() {
        if first < 0x80 {
            return Ok((u64::from(first), 1));
        }
    }
    read_u64_slow(input)
}

/// Multi-byte / error tail of [`read_u64`], kept out of the inlined
/// fast path.
fn read_u64_slow(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(Error::Decode("varint exceeds 10 bytes".into()));
        }
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only carry the final bit of a u64.
        if shift == 63 && payload > 1 {
            return Err(Error::Decode("varint overflows u64".into()));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(Error::Decode("truncated varint".into()))
}

/// Zigzag-maps a signed integer to unsigned.
#[inline]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Number of bytes [`write_u64`] will emit for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> usize {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let (back, used) = read_u64(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
        assert_eq!(encoded_len(v), buf.len());
        // The allocation-free writer must emit identical bytes.
        let mut stack = [0u8; MAX_VARINT_LEN];
        let n = write_u64_into(&mut stack, v);
        assert_eq!(&stack[..n], buf.as_slice());
        buf.len()
    }

    #[test]
    fn roundtrip_boundaries() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(16_383), 2);
        assert_eq!(roundtrip(16_384), 3);
        assert_eq!(roundtrip(u32::MAX as u64), 5);
        assert_eq!(roundtrip(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_fails() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(read_u64(&buf[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn overlong_encoding_fails() {
        // 11 continuation bytes.
        let buf = [0x80u8; 11];
        assert!(read_u64(&buf).is_err());
        // 10 bytes whose last carries more than the final u64 bit.
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x02);
        assert!(read_u64(&buf).is_err());
    }

    #[test]
    fn reads_only_prefix() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.extend_from_slice(&[1, 2, 3]);
        let (v, used) = read_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-1_000_000i64, -1, 0, 1, 7, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
