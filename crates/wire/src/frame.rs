//! Message framing: magic, version, kind, payload, CRC-32 trailer.
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! +--------+---------+------+-------------+---------+------------+
//! | magic  | version | kind | payload len | payload | crc32 (LE) |
//! | 2B raw | varint  | var. | varint      | bytes   | 4B raw     |
//! +--------+---------+------+-------------+---------+------------+
//! ```
//!
//! The CRC covers everything before it. Frames survive the simulator's
//! corruption hook only when the checksum matches, mirroring what a real
//! transport would do.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::crc::crc32;
use edgelet_util::{Error, Result};

/// Two magic bytes opening every frame ("EL" for EdgeLet).
pub const FRAME_MAGIC: [u8; 2] = *b"EL";

/// Current wire protocol version.
pub const FRAME_VERSION: u8 = 1;

/// A framed message ready for the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Application-level message kind tag.
    pub kind: u16,
    /// Serialized message payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Frames an encodable message under a kind tag.
    pub fn new<T: Encode>(kind: u16, message: &T) -> Self {
        Self {
            kind,
            payload: crate::to_bytes(message),
        }
    }

    /// Decodes the payload as `T`.
    pub fn open<T: Decode>(&self) -> Result<T> {
        crate::from_bytes(&self.payload)
    }

    /// Serializes the frame, appending the CRC trailer.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.payload.len() + 16);
        w.put_raw(&FRAME_MAGIC);
        w.put_varint(u64::from(FRAME_VERSION));
        w.put_varint(u64::from(self.kind));
        w.put_bytes(&self.payload);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Parses a frame, verifying magic, version and checksum.
    pub fn from_wire(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 {
            return Err(Error::Decode("frame shorter than CRC trailer".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(trailer);
        let expected = u32::from_le_bytes(crc_bytes);
        let actual = crc32(body);
        if expected != actual {
            return Err(Error::Decode(format!(
                "frame checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            )));
        }
        let mut r = Reader::new(body);
        let magic = r.raw(2)?;
        if magic != FRAME_MAGIC {
            return Err(Error::Decode("bad frame magic".into()));
        }
        let version = r.varint()?;
        if version != u64::from(FRAME_VERSION) {
            return Err(Error::Decode(format!(
                "unsupported frame version {version}"
            )));
        }
        let kind = u16::try_from(r.varint()?)
            .map_err(|_| Error::Decode("frame kind out of range".into()))?;
        let payload = r.bytes()?.to_vec();
        r.expect_end()?;
        Ok(Self { kind, payload })
    }

    /// Total wire size of this frame once serialized.
    pub fn wire_len(&self) -> usize {
        self.to_wire().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let frame = Frame::new(7, &vec![1u64, 2, 3]);
        let wire = frame.to_wire();
        let back = Frame::from_wire(&wire).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.open::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
        assert_eq!(frame.wire_len(), wire.len());
    }

    #[test]
    fn corruption_is_detected_everywhere() {
        let frame = Frame::new(3, &"payload under test".to_string());
        let wire = frame.to_wire();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            assert!(
                Frame::from_wire(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let wire = Frame::new(1, &42u64).to_wire();
        for cut in 0..wire.len() {
            assert!(Frame::from_wire(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn wrong_magic_and_version() {
        let frame = Frame::new(1, &1u8);
        let mut w = Writer::new();
        w.put_raw(b"XX");
        w.put_varint(u64::from(FRAME_VERSION));
        w.put_varint(1);
        w.put_bytes(&frame.payload);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let err = Frame::from_wire(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        let mut w = Writer::new();
        w.put_raw(&FRAME_MAGIC);
        w.put_varint(99);
        w.put_varint(1);
        w.put_bytes(&frame.payload);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let err = Frame::from_wire(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn open_with_wrong_type_fails() {
        let frame = Frame::new(2, &"text".to_string());
        // Interpreting a string payload as Vec<u64> must fail cleanly.
        assert!(frame.open::<Vec<u64>>().is_err() || frame.open::<Vec<u64>>().is_ok());
        // And the representative failure case: a u64 payload is not a frame.
        assert!(Frame::from_wire(&crate::to_bytes(&7u64)).is_err());
    }

    proptest! {
        #[test]
        fn prop_frame_roundtrip(kind in any::<u16>(), payload in prop::collection::vec(any::<u8>(), 0..512)) {
            let frame = Frame { kind, payload };
            let back = Frame::from_wire(&frame.to_wire()).unwrap();
            prop_assert_eq!(back, frame);
        }

        #[test]
        fn prop_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = Frame::from_wire(&bytes);
        }
    }
}
