//! CRC-32 (IEEE 802.3 polynomial, reflected) implemented from scratch.
//!
//! Used by the frame layer to detect the bit corruption the network
//! simulator can inject, and by the WAL frame layer on the durable
//! submit hot path. Bulk input runs through a slicing-by-16 kernel
//! (sixteen lookup tables folding two `u64`s per step) that produces
//! bit-identical checksums to the byte-at-a-time reference; the tables
//! are computed at first use.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

/// Sixteen derived tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` advances the CRC of byte `b` through `k`
/// additional zero bytes, which lets the kernel fold 16 input bytes
/// with 16 independent lookups per iteration. Doubling the stride over
/// slicing-by-8 halves the serial table-lookup chains per byte, which
/// is what bounds throughput on the WAL framing hot path.
fn tables() -> &'static [[u32; 256]; 16] {
    static TABLES: OnceLock<[[u32; 256]; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 16];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        for k in 1..16 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Advances `state` (the raw, un-inverted CRC register) over `data`.
fn advance(mut state: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        // Fold the register into the first 4 bytes, then look all 16
        // bytes up in parallel tables. Safe code only: `from_le_bytes`
        // on fixed-size copies of the chunk halves.
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&chunk[..8]);
        let lo = u64::from_le_bytes(buf) ^ u64::from(state);
        buf.copy_from_slice(&chunk[8..]);
        let hi = u64::from_le_bytes(buf);
        state = t[15][(lo & 0xFF) as usize]
            ^ t[14][((lo >> 8) & 0xFF) as usize]
            ^ t[13][((lo >> 16) & 0xFF) as usize]
            ^ t[12][((lo >> 24) & 0xFF) as usize]
            ^ t[11][((lo >> 32) & 0xFF) as usize]
            ^ t[10][((lo >> 40) & 0xFF) as usize]
            ^ t[9][((lo >> 48) & 0xFF) as usize]
            ^ t[8][((lo >> 56) & 0xFF) as usize]
            ^ t[7][(hi & 0xFF) as usize]
            ^ t[6][((hi >> 8) & 0xFF) as usize]
            ^ t[5][((hi >> 16) & 0xFF) as usize]
            ^ t[4][((hi >> 24) & 0xFF) as usize]
            ^ t[3][((hi >> 32) & 0xFF) as usize]
            ^ t[2][((hi >> 40) & 0xFF) as usize]
            ^ t[1][((hi >> 48) & 0xFF) as usize]
            ^ t[0][((hi >> 56) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ t[0][((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// Computes the CRC-32 of `data` (same parameters as zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    !advance(0xFFFF_FFFF, data)
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = advance(self.state, data);
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"edgelet computing over opportunistic networks";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"resiliency validity crowd liability".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference);
            }
        }
    }

    /// Byte-at-a-time bitwise reference, independent of the tables.
    fn crc32_reference(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn sliced_kernel_matches_reference_across_lengths() {
        // Cover every remainder length around the 16-byte fold boundary.
        let data: Vec<u8> = (0..96u16)
            .map(|i| (i.wrapping_mul(37) % 251) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "len {len}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_sliced_matches_reference(data in prop::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(crc32(&data), crc32_reference(&data));
        }

        #[test]
        fn prop_split_point_invariance(
            data in prop::collection::vec(any::<u8>(), 0..128),
            split in any::<prop::sample::Index>(),
        ) {
            let cut = if data.is_empty() { 0 } else { split.index(data.len()) };
            let mut h = Crc32::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            prop_assert_eq!(h.finish(), crc32(&data));
        }
    }
}
