//! CRC-32 (IEEE 802.3 polynomial, reflected) implemented from scratch.
//!
//! Used by the frame layer to detect the bit corruption the network
//! simulator can inject. The table is computed at first use.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// Computes the CRC-32 of `data` (same parameters as zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"edgelet computing over opportunistic networks";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"resiliency validity crowd liability".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_split_point_invariance(
            data in prop::collection::vec(any::<u8>(), 0..128),
            split in any::<prop::sample::Index>(),
        ) {
            let cut = if data.is_empty() { 0 } else { split.index(data.len()) };
            let mut h = Crc32::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            prop_assert_eq!(h.finish(), crc32(&data));
        }
    }
}
