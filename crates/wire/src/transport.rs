//! The live-runtime message fabric: epoch-tagged envelopes behind a
//! [`Transport`] trait.
//!
//! The live runtime (`edgelet-live`) hosts the very same protocol actors
//! as the simulator, but messages travel through a pluggable transport
//! instead of the simulator's internal scheduler. On that path every
//! message is wrapped in an [`Envelope`]: a small header carrying the
//! **epoch** (the per-query isolation id the query service assigns), the
//! endpoint addresses, the sender's deterministic sequence number, and
//! the virtual send/delivery timestamps — followed by the unchanged
//! protocol payload bytes (the sealed frames produced by
//! `edgelet-exec`).
//!
//! The envelope is a *versioned extension* of the wire format: it does
//! not alter [`crate::frame::FRAME_VERSION`] (payloads inside an
//! envelope are ordinary frames), but carries its own
//! [`ENVELOPE_VERSION`] so transports can reject headers they do not
//! understand. See `docs/RUNTIME.md` and `docs/PROTOCOL.md`.

use crate::codec::{Decode, Encode, Reader, Writer};
use edgelet_util::ids::DeviceId;
use edgelet_util::{Error, Payload, Result};

/// Version byte of the envelope header. Bump on layout changes.
pub const ENVELOPE_VERSION: u8 = 1;

/// One message in flight on a live transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Per-query isolation id; transports deliver an envelope only to
    /// mailboxes registered under the same epoch.
    pub epoch: u64,
    /// Sending device.
    pub from: DeviceId,
    /// Receiving device.
    pub to: DeviceId,
    /// The sender's deterministic spawn sequence number — together with
    /// `(deliver_at_us, from)` it forms the intrinsic event key the
    /// runtime orders deliveries by.
    pub seq: u64,
    /// Virtual send time, microseconds.
    pub sent_at_us: u64,
    /// Virtual delivery time, microseconds (send time + drawn latency).
    pub deliver_at_us: u64,
    /// The protocol bytes — a sealed `edgelet-exec` frame, untouched.
    pub payload: Payload,
}

impl Envelope {
    /// Serializes the envelope (header + payload) into wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.payload.len() + 32);
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Parses an envelope from wire bytes, requiring full consumption.
    pub fn from_wire(bytes: &[u8]) -> Result<Envelope> {
        let mut r = Reader::new(bytes);
        let env = Envelope::decode(&mut r)?;
        r.expect_end()?;
        Ok(env)
    }
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(ENVELOPE_VERSION as u64);
        w.put_varint(self.epoch);
        w.put_varint(self.from.raw());
        w.put_varint(self.to.raw());
        w.put_varint(self.seq);
        w.put_varint(self.sent_at_us);
        w.put_varint(self.deliver_at_us);
        w.put_bytes(self.payload.as_slice());
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let version = r.varint()?;
        if version != ENVELOPE_VERSION as u64 {
            return Err(Error::Decode(format!(
                "unsupported envelope version {version} (expected {ENVELOPE_VERSION})"
            )));
        }
        let epoch = r.varint()?;
        let from = DeviceId::new(r.varint()?);
        let to = DeviceId::new(r.varint()?);
        let seq = r.varint()?;
        let sent_at_us = r.varint()?;
        let deliver_at_us = r.varint()?;
        let payload = Payload::from(r.bytes()?);
        Ok(Envelope {
            epoch,
            from,
            to,
            seq,
            sent_at_us,
            deliver_at_us,
            payload,
        })
    }
}

/// Why a transport refused an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The envelope's epoch is not registered — a cross-epoch send. The
    /// query service treats this as per-query isolation working as
    /// intended; a protocol bug, not a transient condition.
    UnknownEpoch(u64),
    /// The destination mailbox is full; the sender must hold the
    /// envelope and retry after the receiver drains.
    Backpressure,
    /// The transport is shutting down; no further sends are accepted.
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownEpoch(e) => write!(f, "unknown transport epoch {e}"),
            TransportError::Backpressure => write!(f, "mailbox full (backpressure)"),
            TransportError::Closed => write!(f, "transport closed"),
        }
    }
}

/// A message fabric the live runtime sends envelopes through.
///
/// Implementations must be safe to call from many worker threads at
/// once. The contract the runtime's determinism rests on:
///
/// * `submit` either accepts the envelope (it will appear in exactly one
///   subsequent `drain` of the destination lane) or rejects it with a
///   [`TransportError`] — envelopes are never reordered *within* a lane
///   relative to their `(deliver_at_us, from, seq)` key consumers sort
///   by, and never duplicated;
/// * `drain` returns everything submitted to `(epoch, lane)` before the
///   call (concurrent submits may or may not be included);
/// * `pending` reports what `drain` would currently return, as
///   `(count, min deliver_at_us)`.
pub trait Transport: Send + Sync {
    /// Submits an envelope for delivery.
    fn submit(&self, env: Envelope) -> std::result::Result<(), TransportError>;
    /// Drains every envelope queued for one `(epoch, lane)` mailbox.
    fn drain(&self, epoch: u64, lane: usize) -> Vec<Envelope>;
    /// Count and earliest virtual delivery time of queued envelopes.
    fn pending(&self, epoch: u64, lane: usize) -> Option<(usize, u64)>;
    /// Submits envelopes front-to-back, removing each accepted envelope
    /// from `batch`. Stops at the first rejection and returns its error;
    /// the rejected envelope and everything after it stay in `batch`, in
    /// order. `Ok(())` means the batch was fully accepted (now empty).
    ///
    /// The default forwards to [`Transport::submit`] one envelope at a
    /// time; implementations should override it to amortize per-call
    /// overhead (lock acquisition, registry lookups) when the caller has
    /// already grouped envelopes by destination lane.
    fn submit_batch(&self, batch: &mut Vec<Envelope>) -> std::result::Result<(), TransportError> {
        let mut accepted = 0;
        let mut result = Ok(());
        while accepted < batch.len() {
            match self.submit(batch[accepted].clone()) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        batch.drain(..accepted);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(epoch: u64) -> Envelope {
        Envelope {
            epoch,
            from: DeviceId::new(3),
            to: DeviceId::new(9),
            seq: 41,
            sent_at_us: 1_000,
            deliver_at_us: 11_000,
            payload: Payload::from(vec![1u8, 2, 3, 4]),
        }
    }

    #[test]
    fn envelope_round_trips() {
        let env = envelope(7);
        let bytes = env.to_wire();
        let back = Envelope::from_wire(&bytes).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn envelope_rejects_unknown_version() {
        let mut bytes = envelope(7).to_wire();
        bytes[0] = ENVELOPE_VERSION + 1;
        let err = Envelope::from_wire(&bytes).unwrap_err();
        assert!(matches!(err, Error::Decode(_)));
    }

    #[test]
    fn envelope_rejects_trailing_garbage() {
        let mut bytes = envelope(7).to_wire();
        bytes.push(0xAB);
        assert!(Envelope::from_wire(&bytes).is_err());
    }
}
