//! From-scratch binary wire format for inter-edgelet communication.
//!
//! Every message exchanged between edgelets in the execution protocols is
//! serialized with this crate. The format is deliberately small and fully
//! specified here:
//!
//! * integers use LEB128 **varints** ([`varint`]), signed values are
//!   zigzag-mapped first;
//! * composite values implement [`Encode`]/[`Decode`] ([`codec`]);
//! * on-the-wire messages are wrapped in a **frame** with magic, version,
//!   length and a CRC-32 checksum ([`frame`], [`crc`]), so that the network
//!   simulator can also exercise corruption handling.
//!
//! The format is self-contained (no serde, no external format crate), which
//! keeps message sizes — a first-order cost in opportunistic networks —
//! fully under our control and measurable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod frame;
pub mod transport;
pub mod varint;

pub use codec::{Decode, Encode, Reader, Writer};
pub use frame::{Frame, FRAME_MAGIC, FRAME_VERSION};
pub use transport::{Envelope, Transport, TransportError, ENVELOPE_VERSION};

use edgelet_util::{Payload, Result};

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Encodes a value straight into a shareable [`Payload`] — the encode
/// buffer is handed over, never re-copied, so the result can fan out to
/// any number of recipients for free.
pub fn to_payload<T: Encode>(value: &T) -> Payload {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_payload()
}

/// Decodes a value from bytes, requiring full consumption of the input.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    r.expect_end()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_util::Error;

    #[test]
    fn to_from_bytes_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3, 500_000];
        let bytes = to_bytes(&v);
        let back: Vec<u32> = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn to_payload_matches_to_bytes() {
        let v: Vec<u32> = vec![1, 2, 3, 500_000];
        let payload = to_payload(&v);
        assert_eq!(payload.as_slice(), to_bytes(&v).as_slice());
        let back: Vec<u32> = from_bytes(&payload).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = to_bytes(&42u64);
        bytes.push(0xFF);
        let err = from_bytes::<u64>(&bytes).unwrap_err();
        assert!(matches!(err, Error::Decode(_)));
    }
}
