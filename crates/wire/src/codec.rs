//! `Encode`/`Decode` traits and implementations for the core types.
//!
//! Length-prefixed collections are capped at [`MAX_SEQUENCE_LEN`] elements so
//! a corrupted length byte cannot trigger a multi-gigabyte allocation — the
//! decoder is fed by a simulated lossy network, so hostile-looking input is
//! a normal test case, not an anomaly.

use crate::varint;
use bytes::{BufMut, BytesMut};
use edgelet_util::ids::{DeviceId, MessageId, OperatorId, PartitionId, QueryId};
use edgelet_util::{Error, Payload, Result};
use std::collections::BTreeMap;

/// Upper bound on decoded sequence lengths (elements, not bytes).
pub const MAX_SEQUENCE_LEN: u64 = 16 * 1024 * 1024;

/// Serialization sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self {
            buf: BytesMut::new(),
        }
    }

    /// Creates a writer with a pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends a varint.
    pub fn put_varint(&mut self, v: u64) {
        let mut tmp = [0u8; varint::MAX_VARINT_LEN];
        let n = varint::write_u64_into(&mut tmp, v);
        self.buf.put_slice(&tmp[..n]);
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.put_slice(bytes);
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the encoded bytes, handing over the internal
    /// buffer (no copy).
    pub fn into_bytes(self) -> Vec<u8> {
        Vec::from(self.buf)
    }

    /// Finishes into a shareable [`Payload`], still without copying: the
    /// buffer moves behind the payload's reference count.
    pub fn into_payload(self) -> Payload {
        Payload::from(self.into_bytes())
    }
}

/// Deserialization source with position tracking.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps an input buffer.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Reads a varint.
    #[inline]
    pub fn varint(&mut self) -> Result<u64> {
        let (v, used) = varint::read_u64(&self.input[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    /// Reads exactly `n` raw bytes.
    #[inline]
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Decode(format!(
                "need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a length-prefixed byte string.
    #[inline]
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.varint()?;
        if len > MAX_SEQUENCE_LEN {
            return Err(Error::Decode(format!("byte string length {len} too large")));
        }
        self.raw(len as usize)
    }

    /// Reads a sequence length, enforcing the cap.
    #[inline]
    pub fn seq_len(&mut self) -> Result<usize> {
        let len = self.varint()?;
        if len > MAX_SEQUENCE_LEN {
            return Err(Error::Decode(format!("sequence length {len} too large")));
        }
        Ok(len as usize)
    }

    /// Reads a sequence length and pre-validates it against the input:
    /// every element of a well-formed sequence occupies at least
    /// `min_item_bytes`, so a declared length that cannot possibly fit in
    /// the remaining bytes is rejected here — once, up front — rather
    /// than failing midway through per-item decoding. Because the result
    /// is bounded by the input size, callers can `Vec::with_capacity` it
    /// exactly instead of growing (and re-allocating) per item.
    #[inline]
    pub fn seq_len_for(&mut self, min_item_bytes: usize) -> Result<usize> {
        let len = self.seq_len()?;
        let need = len.saturating_mul(min_item_bytes.max(1));
        if need > self.remaining() {
            return Err(Error::Decode(format!(
                "sequence of {len} items needs >= {need} bytes, have {}",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Fails unless the input is fully consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(Error::Decode(format!(
                "{} trailing bytes after value",
                self.remaining()
            )))
        }
    }
}

/// A value that can be serialized to the Edgelet wire format.
pub trait Encode {
    /// Appends the encoding of `self` to the writer.
    fn encode(&self, w: &mut Writer);
}

/// A value that can be deserialized from the Edgelet wire format.
pub trait Decode: Sized {
    /// Reads one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;
}

// ---- primitive integers ----

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(u64::from(*self));
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                let v = r.varint()?;
                <$ty>::try_from(v)
                    .map_err(|_| Error::Decode(format!("{v} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32);

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self);
    }
}

impl Decode for u64 {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.varint()
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
}

impl Decode for usize {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let v = r.varint()?;
        usize::try_from(v).map_err(|_| Error::Decode(format!("{v} out of range for usize")))
    }
}

macro_rules! impl_sint {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(varint::zigzag(i64::from(*self)));
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                let v = varint::unzigzag(r.varint()?);
                <$ty>::try_from(v)
                    .map_err(|_| Error::Decode(format!("{v} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_sint!(i8, i16, i32);

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(varint::zigzag(*self));
    }
}

impl Decode for i64 {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(varint::unzigzag(r.varint()?))
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(u64::from(*self));
    }
}

impl Decode for bool {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.varint()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Decode(format!("invalid bool {other}"))),
        }
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.to_le_bytes());
    }
}

impl Decode for f64 {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let raw = r.raw(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(raw);
        Ok(f64::from_le_bytes(arr))
    }
}

impl Encode for f32 {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.to_le_bytes());
    }
}

impl Decode for f32 {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let raw = r.raw(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(raw);
        Ok(f32::from_le_bytes(arr))
    }
}

// ---- strings and containers ----

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        // Validate in place, then copy once: rejecting bad UTF-8 before
        // the allocation keeps the error path allocation-free and the
        // happy path a plain memcpy.
        let text =
            std::str::from_utf8(r.bytes()?).map_err(|_| Error::Decode("invalid utf-8".into()))?;
        Ok(text.to_owned())
    }
}

impl Encode for &str {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        // Fast path: the length is pre-validated against the remaining
        // bytes (each element costs at least one), so the buffer can be
        // reserved exactly once — no per-item growth, and a hostile
        // length prefix fails before any allocation proportional to it.
        let len = r.seq_len_for(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_varint(0),
            Some(v) => {
                w.put_varint(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.varint()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(Error::Decode(format!("invalid option tag {other}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.seq_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let raw = r.raw(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(raw);
        Ok(out)
    }
}

// ---- id newtypes ----

macro_rules! impl_id {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(self.raw());
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                Ok(<$ty>::new(r.varint()?))
            }
        }
    )*};
}

impl_id!(DeviceId, OperatorId, QueryId, MessageId, PartitionId);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};
    use proptest::prelude::*;

    #[test]
    fn hostile_sequence_length_is_rejected_before_decoding() {
        // A length prefix claiming 1M items over a 3-byte payload must
        // fail at the length check, not midway through item decoding.
        let mut w = Writer::new();
        w.put_varint(1_000_000);
        w.put_raw(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert!(err.to_string().contains("needs >="), "{err}");
        // Exact pre-reservation still decodes well-formed sequences.
        let v: Vec<u64> = (0..500).collect();
        assert_eq!(from_bytes::<Vec<u64>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(from_bytes::<u8>(&to_bytes(&200u8)).unwrap(), 200);
        assert_eq!(from_bytes::<u16>(&to_bytes(&60_000u16)).unwrap(), 60_000);
        assert_eq!(
            from_bytes::<u32>(&to_bytes(&4_000_000u32)).unwrap(),
            4_000_000
        );
        assert_eq!(from_bytes::<u64>(&to_bytes(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_bytes::<i32>(&to_bytes(&-77i32)).unwrap(), -77);
        assert_eq!(from_bytes::<i64>(&to_bytes(&i64::MIN)).unwrap(), i64::MIN);
        assert!(from_bytes::<bool>(&to_bytes(&true)).unwrap());
        assert_eq!(from_bytes::<f64>(&to_bytes(&-1.5f64)).unwrap(), -1.5);
        assert_eq!(from_bytes::<f32>(&to_bytes(&2.25f32)).unwrap(), 2.25);
        assert_eq!(
            from_bytes::<usize>(&to_bytes(&123_456usize)).unwrap(),
            123_456
        );
    }

    #[test]
    fn out_of_range_narrowing_fails() {
        let wide = to_bytes(&300u64);
        assert!(from_bytes::<u8>(&wide).is_err());
        let neg = to_bytes(&(i64::from(i32::MIN) - 1));
        assert!(from_bytes::<i32>(&neg).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_fail() {
        let two = to_bytes(&2u64);
        assert!(from_bytes::<bool>(&two).is_err());
        assert!(from_bytes::<Option<u64>>(&two).is_err());
    }

    #[test]
    fn string_roundtrip_and_invalid_utf8() {
        let s = "héllo — edgelet".to_string();
        assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        let mut bad = Writer::new();
        bad.put_bytes(&[0xFF, 0xFE]);
        assert!(from_bytes::<String>(&bad.into_bytes()).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![Some(3u32), None, Some(7)];
        assert_eq!(from_bytes::<Vec<Option<u32>>>(&to_bytes(&v)).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        assert_eq!(
            from_bytes::<BTreeMap<String, u64>>(&to_bytes(&m)).unwrap(),
            m
        );
        let t = (1u32, "x".to_string(), -9i64);
        assert_eq!(from_bytes::<(u32, String, i64)>(&to_bytes(&t)).unwrap(), t);
        let arr = [7u8; 16];
        assert_eq!(from_bytes::<[u8; 16]>(&to_bytes(&arr)).unwrap(), arr);
    }

    #[test]
    fn hostile_length_is_rejected_without_allocation() {
        // A vec claiming u64::MAX/2 elements must fail fast.
        let mut w = Writer::new();
        w.put_varint(u64::MAX / 2);
        let bytes = w.into_bytes();
        assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
        assert!(from_bytes::<String>(&bytes).is_err());
    }

    #[test]
    fn ids_roundtrip() {
        let d = DeviceId::new(17);
        assert_eq!(from_bytes::<DeviceId>(&to_bytes(&d)).unwrap(), d);
        let p = PartitionId::new(3);
        assert_eq!(from_bytes::<PartitionId>(&to_bytes(&p)).unwrap(), p);
    }

    #[test]
    fn truncation_always_errors_never_panics() {
        let v: Vec<String> = vec!["alpha".into(), "beta".into()];
        let bytes = to_bytes(&v);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Vec<String>>(&bytes[..cut]).is_err());
        }
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v in any::<u64>()) {
            prop_assert_eq!(from_bytes::<u64>(&to_bytes(&v)).unwrap(), v);
        }

        #[test]
        fn prop_i64_roundtrip(v in any::<i64>()) {
            prop_assert_eq!(from_bytes::<i64>(&to_bytes(&v)).unwrap(), v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".*") {
            prop_assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        }

        #[test]
        fn prop_vec_f64_roundtrip(v in prop::collection::vec(any::<f64>(), 0..64)) {
            let back = from_bytes::<Vec<f64>>(&to_bytes(&v)).unwrap();
            prop_assert_eq!(v.len(), back.len());
            for (a, b) in v.iter().zip(&back) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }

        #[test]
        fn prop_random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary bytes must return Ok or Err, never panic.
            let _ = from_bytes::<Vec<String>>(&bytes);
            let _ = from_bytes::<BTreeMap<String, u64>>(&bytes);
            let _ = from_bytes::<(u64, Option<String>)>(&bytes);
        }
    }
}
