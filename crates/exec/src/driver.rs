//! Wiring a [`QueryPlan`] onto a [`Simulation`] and reporting the outcome.

use crate::config::ExecConfig;
use crate::ledger::{self, Ledger};
use crate::messages::OutcomePayload;
use crate::roles::builder::{BuilderActor, BuilderWiring, SliceWiring};
use crate::roles::combiner::{CombinerActor, CombinerMode, CombinerWiring};
use crate::roles::computer::{ComputerWiring, GroupingComputerActor};
use crate::roles::contributor::ContributorActor;
use crate::roles::kmeans::{KMeansComputerActor, KMeansWiring};
use crate::roles::querier::{self, QuerierActor, SharedRecord};
use crate::roles::{RankGate, Sealer};
use edgelet_ml::distributed::CentroidSet;
use edgelet_ml::grouping::{GroupingQuery, ResultRow, ResultTable};
use edgelet_query::{OperatorRole, QueryPlan, Strategy};
use edgelet_sim::{Actor, Duration, SimMetrics, SimTime, Simulation};
use edgelet_store::value::Value;
use edgelet_store::{DataStore, Schema};
use edgelet_tee::{DeviceClass, Directory};
use edgelet_util::ids::DeviceId;
use edgelet_util::{Error, Result};
use edgelet_wire::from_bytes;
use std::collections::{BTreeMap, BTreeSet};

/// The decoded final result of a query.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// Grouping-Sets result (aggregates in the spec's order).
    Grouping(ResultTable),
    /// K-Means result.
    KMeans {
        /// Combined centroids.
        centroids: CentroidSet,
        /// Per-cluster aggregates (when the spec requested them).
        per_cluster: Option<ResultTable>,
    },
}

/// Everything the demo platform reports about one execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The Querier received a result before the deadline.
    pub completed: bool,
    /// Virtual completion time, seconds.
    pub completion_secs: Option<f64>,
    /// Structural validity: at least `n` *complete* partitions merged.
    pub valid: bool,
    /// Partitions merged into the delivered result.
    pub partitions_merged: u64,
    /// Of which met their cardinality quota.
    pub partitions_complete: u64,
    /// Combiner replica that won the race (0 = primary).
    pub winning_replica: u32,
    /// Result copies the Querier received (Active Backups duplicate).
    pub results_received: u64,
    /// The decoded result.
    pub outcome: Option<QueryOutcome>,
    /// Protocol messages sent.
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages lost to the network.
    pub messages_dropped: u64,
    /// Messages that waited in store-and-forward queues.
    pub messages_deferred: u64,
    /// Devices that crashed during the window.
    pub crashes: u64,
    /// Device disconnections during the window.
    pub disconnections: u64,
    /// Crowd-liability ledger.
    pub ledger: Ledger,
    /// The raw combiner result payload the Querier received, byte for
    /// byte. The cross-engine parity harness compares this between the
    /// simulator and the live runtime.
    pub result_payload: Option<Vec<u8>>,
}

/// The fully wired actor set for one plan, ready to install on any host
/// engine (the simulator or the live runtime).
///
/// Produced by [`assemble_plan`]; the install order is part of the
/// deterministic contract — hosts must install the actors in the order
/// given, because installation consumes per-device event sequence
/// numbers.
pub struct PlanAssembly {
    /// `(device, actor)` pairs in canonical install order.
    pub installs: Vec<(DeviceId, Box<dyn Actor>)>,
    /// The shared crowd-liability ledger all actors charge into.
    pub ledger: ledger::SharedLedger,
    /// The Querier's shared outcome record.
    pub record: SharedRecord,
    /// Per-vertical-group sliced queries (empty for K-Means).
    pub sliced_queries: Vec<GroupingQuery>,
    /// The validated exec config, with `query_deadline` set from the plan.
    pub config: ExecConfig,
}

/// Installs all actors for `plan` on `sim` and runs until the query
/// deadline. The `stores` map provides each Data Contributor's personal
/// store; `device_classes` gives per-device hardware profiles (defaults
/// to SGX PC when absent).
pub fn execute_plan(
    plan: &QueryPlan,
    schema: &Schema,
    stores: &BTreeMap<DeviceId, DataStore>,
    device_classes: &BTreeMap<DeviceId, DeviceClass>,
    sim: &mut Simulation,
    config: &ExecConfig,
    root_secret: [u8; 32],
) -> Result<ExecutionReport> {
    let PlanAssembly {
        installs,
        ledger,
        record,
        sliced_queries,
        ..
    } = assemble_plan(
        plan,
        schema,
        stores,
        device_classes,
        config,
        root_secret,
        sim.now().as_secs_f64(),
    )?;
    for (dev, actor) in installs {
        sim.install_actor(dev, actor);
    }

    // ---- run to the deadline ----
    let deadline = sim.now() + Duration::from_secs_f64(plan.spec.deadline_secs);
    sim.run_until(deadline);
    finish_report(plan, &sliced_queries, &record, &ledger, sim.metrics())
}

/// Performs the static preflight and wires every role actor for `plan`,
/// without touching any engine: the returned [`PlanAssembly`] can be
/// installed on a [`Simulation`] (as [`execute_plan`] does) or handed to
/// the live runtime. `now_secs` is the host's current virtual time,
/// seeding the replica [`RankGate`]s.
pub fn assemble_plan(
    plan: &QueryPlan,
    schema: &Schema,
    stores: &BTreeMap<DeviceId, DataStore>,
    device_classes: &BTreeMap<DeviceId, DeviceClass>,
    config: &ExecConfig,
    root_secret: [u8; 32],
    now_secs: f64,
) -> Result<PlanAssembly> {
    // Deny-by-default static preflight: structure, liability, and
    // deadline feasibility. Subsumes the older `check_plan` invariants.
    edgelet_analyze::preflight(plan)?;
    let mut config = config.clone();
    config.query_deadline = Duration::from_secs_f64(plan.spec.deadline_secs);
    // Timer-ordering sanity (ping vs suspicion, collection vs combine vs
    // deadline): a mis-timed profile fails here, not as an empty run.
    config.validate()?;
    if matches!(plan.spec.kind, edgelet_query::QueryKind::KMeans { .. })
        && plan.strategy == Strategy::Backup
    {
        return Err(Error::InvalidConfig(
            "the Backup strategy does not support iterative K-Means; \
             use Overcollection (see DESIGN.md)"
                .into(),
        ));
    }

    let query = plan.spec.id;
    let ledger = ledger::shared();
    let record = querier::shared_record();
    let class_of = |d: DeviceId| {
        device_classes
            .get(&d)
            .copied()
            .unwrap_or(DeviceClass::SgxPc)
            .profile()
    };
    let sealer_for = |d: DeviceId| Sealer::new(config.encrypt_channels, &root_secret, query, d);
    let mut installs: Vec<(DeviceId, Box<dyn Actor>)> = Vec::new();

    // Guard against double-installation: each device hosts one actor.
    let mut occupied: BTreeSet<DeviceId> = BTreeSet::new();
    let mut claim = |d: DeviceId, role: &str| -> Result<()> {
        if !occupied.insert(d) {
            return Err(Error::InvalidConfig(format!(
                "device {d} would host two actors (second: {role}); \
                 enroll distinct devices for contributor/processor/querier roles"
            )));
        }
        Ok(())
    };

    // ---- contributors ----
    let all_contributors: BTreeSet<DeviceId> =
        plan.contributors.iter().flatten().copied().collect();
    for &dev in &all_contributors {
        let store = stores
            .get(&dev)
            .ok_or_else(|| Error::InvalidConfig(format!("no data store for contributor {dev}")))?;
        claim(dev, "contributor")?;
        installs.push((
            dev,
            Box::new(ContributorActor::new(
                query,
                store.clone(),
                sealer_for(dev),
                ledger.clone(),
                plan.partition_quota,
            )),
        ));
    }

    // ---- index operators ----
    let combiner_ops = plan.combiners();
    let mut combiner_devices: Vec<DeviceId> = Vec::new();
    for c in &combiner_ops {
        combiner_devices.push(c.device);
        combiner_devices.extend(c.backups.iter().copied());
    }

    // The union of referenced computation columns, shipped by builders.
    let mut snapshot_columns: Vec<String> = plan
        .attr_groups
        .iter()
        .flatten()
        .cloned()
        .collect::<Vec<_>>();
    snapshot_columns.sort();
    snapshot_columns.dedup();

    // Sliced grouping queries per vertical group.
    let sliced_queries: Vec<GroupingQuery> = match &plan.spec.kind {
        edgelet_query::QueryKind::GroupingSets(q) => plan
            .attr_group_aggregates
            .iter()
            .map(|idxs| GroupingQuery {
                sets: q.sets.clone(),
                aggregates: idxs.iter().map(|&i| q.aggregates[i].clone()).collect(),
            })
            .collect(),
        edgelet_query::QueryKind::KMeans { .. } => Vec::new(),
    };

    // Computer devices per (partition, group): primary + backups.
    let mut computer_targets: BTreeMap<(u64, u32), Vec<DeviceId>> = BTreeMap::new();
    for op in &plan.operators {
        if let OperatorRole::Computer {
            partition,
            attr_group,
        } = op.role
        {
            let entry = computer_targets
                .entry((partition.raw(), attr_group))
                .or_default();
            entry.push(op.device);
            entry.extend(op.backups.iter().copied());
        }
    }

    // All K-Means computer devices (peer broadcast set).
    let kmeans_peers: Vec<DeviceId> = plan
        .operators
        .iter()
        .filter(|o| matches!(o.role, OperatorRole::Computer { .. }))
        .map(|o| o.device)
        .collect();

    // ---- builders and computers ----
    for op in &plan.operators {
        match op.role {
            OperatorRole::SnapshotBuilder { partition } => {
                let slices: Vec<SliceWiring> = (0..plan.attr_groups.len())
                    .map(|g| SliceWiring {
                        attr_group: g as u32,
                        columns: plan.attr_groups[g].clone(),
                        targets: computer_targets[&(partition.raw(), g as u32)].clone(),
                    })
                    .collect();
                let wiring = BuilderWiring {
                    query,
                    partition,
                    quota: plan.partition_quota,
                    filter: plan.spec.filter.clone(),
                    columns: snapshot_columns.clone(),
                    contributors: plan.contributors[partition.index()].clone(),
                    slices,
                    profile: class_of(op.device),
                };
                let replica_chain: Vec<DeviceId> = std::iter::once(op.device)
                    .chain(op.backups.iter().copied())
                    .collect();
                for (rank, &dev) in replica_chain.iter().enumerate() {
                    claim(dev, "snapshot-builder")?;
                    let gate = RankGate::new(rank as u32, replica_chain[..rank].to_vec(), now_secs);
                    let mut wiring = wiring.clone();
                    wiring.profile = class_of(dev);
                    installs.push((
                        dev,
                        Box::new(BuilderActor::new(
                            wiring,
                            config.clone(),
                            sealer_for(dev),
                            ledger.clone(),
                            schema.clone(),
                            gate,
                        )),
                    ));
                }
            }
            OperatorRole::Computer {
                partition,
                attr_group,
            } => match &plan.spec.kind {
                edgelet_query::QueryKind::GroupingSets(_) => {
                    let wiring = ComputerWiring {
                        query,
                        partition,
                        attr_group,
                        sliced_query: sliced_queries[attr_group as usize].clone(),
                        combiners: combiner_devices.clone(),
                        profile: class_of(op.device),
                    };
                    let replica_chain: Vec<DeviceId> = std::iter::once(op.device)
                        .chain(op.backups.iter().copied())
                        .collect();
                    for (rank, &dev) in replica_chain.iter().enumerate() {
                        claim(dev, "computer")?;
                        let gate =
                            RankGate::new(rank as u32, replica_chain[..rank].to_vec(), now_secs);
                        let mut wiring = wiring.clone();
                        wiring.profile = class_of(dev);
                        installs.push((
                            dev,
                            Box::new(GroupingComputerActor::new(
                                wiring,
                                config.clone(),
                                sealer_for(dev),
                                ledger.clone(),
                                schema.clone(),
                                gate,
                            )),
                        ));
                    }
                }
                edgelet_query::QueryKind::KMeans {
                    k,
                    features,
                    heartbeats,
                    per_cluster_aggregates,
                } => {
                    claim(op.device, "kmeans-computer")?;
                    let peers: Vec<DeviceId> = kmeans_peers
                        .iter()
                        .copied()
                        .filter(|&d| d != op.device)
                        .collect();
                    let wiring = KMeansWiring {
                        query,
                        partition,
                        k: *k,
                        features: features.clone(),
                        per_cluster_aggregates: per_cluster_aggregates.clone(),
                        heartbeats: *heartbeats,
                        peers,
                        combiners: combiner_devices.clone(),
                    };
                    installs.push((
                        op.device,
                        Box::new(KMeansComputerActor::new(
                            wiring,
                            config.clone(),
                            sealer_for(op.device),
                            ledger.clone(),
                            schema.clone(),
                        )),
                    ));
                }
            },
            OperatorRole::Combiner { replica } => {
                let mode = match &plan.spec.kind {
                    edgelet_query::QueryKind::GroupingSets(_) => CombinerMode::Grouping {
                        attr_groups: plan.attr_groups.len() as u32,
                    },
                    edgelet_query::QueryKind::KMeans { .. } => CombinerMode::KMeans,
                };
                let wiring = CombinerWiring {
                    query,
                    n: plan.n,
                    mode,
                    querier: plan.querier().device,
                    replica,
                };
                let replica_chain: Vec<DeviceId> = std::iter::once(op.device)
                    .chain(op.backups.iter().copied())
                    .collect();
                for (rank, &dev) in replica_chain.iter().enumerate() {
                    claim(dev, "combiner")?;
                    let mut gate =
                        RankGate::new(rank as u32, replica_chain[..rank].to_vec(), now_secs);
                    // Overcollection's Active Backup replicas run in
                    // parallel by design.
                    if plan.strategy != Strategy::Backup {
                        gate.force_active();
                    }
                    installs.push((
                        dev,
                        Box::new(CombinerActor::new(
                            wiring.clone(),
                            config.clone(),
                            sealer_for(dev),
                            ledger.clone(),
                            gate,
                        )),
                    ));
                }
            }
            OperatorRole::Querier => {
                claim(op.device, "querier")?;
                installs.push((
                    op.device,
                    Box::new(QuerierActor::new(
                        query,
                        sealer_for(op.device),
                        record.clone(),
                    )),
                ));
            }
        }
    }

    Ok(PlanAssembly {
        installs,
        ledger,
        record,
        sliced_queries,
        config,
    })
}

/// Assembles the [`ExecutionReport`] for a finished run from the shared
/// state an assembly's actors wrote into, plus the host's metrics.
pub fn finish_report(
    plan: &QueryPlan,
    sliced_queries: &[GroupingQuery],
    record: &SharedRecord,
    ledger: &ledger::SharedLedger,
    metrics: &SimMetrics,
) -> Result<ExecutionReport> {
    let rec = record.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let outcome = match &rec.payload {
        None => None,
        Some(bytes) => Some(decode_outcome(plan, sliced_queries, bytes)?),
    };
    let valid = rec.payload.is_some() && rec.partitions_complete >= plan.n;
    let final_ledger = ledger.lock().unwrap_or_else(|e| e.into_inner()).clone();
    Ok(ExecutionReport {
        completed: rec.payload.is_some(),
        completion_secs: rec.completed_at.map(SimTime::as_secs_f64),
        valid,
        partitions_merged: rec.partitions_merged,
        partitions_complete: rec.partitions_complete,
        winning_replica: rec.winning_replica,
        results_received: rec.results_received,
        outcome,
        messages_sent: metrics.messages_sent,
        bytes_sent: metrics.bytes_sent,
        messages_dropped: metrics.messages_dropped,
        messages_deferred: metrics.messages_deferred,
        crashes: metrics.crashes,
        disconnections: metrics.disconnections,
        ledger: final_ledger,
        result_payload: rec.payload,
    })
}

/// Decodes and reassembles the combiner payload into the final outcome.
fn decode_outcome(
    plan: &QueryPlan,
    sliced_queries: &[GroupingQuery],
    bytes: &[u8],
) -> Result<QueryOutcome> {
    let payload: OutcomePayload = from_bytes(bytes)?;
    match (payload, &plan.spec.kind) {
        (OutcomePayload::Grouping(groups), edgelet_query::QueryKind::GroupingSets(q)) => {
            // Reassemble: per-slice tables joined on (set, key), aggregate
            // values placed at their original indices.
            let total_aggs = q.aggregates.len();
            let mut assembled: BTreeMap<(u32, Vec<String>, Vec<String>), Vec<Value>> =
                BTreeMap::new();
            for (g, partial) in &groups {
                let sliced = sliced_queries
                    .get(*g as usize)
                    .ok_or_else(|| Error::Protocol(format!("unknown slice {g}")))?;
                let table = sliced.finalize(partial);
                let agg_indices = &plan.attr_group_aggregates[*g as usize];
                for row in table.rows {
                    let key_repr: Vec<String> = row.key.iter().map(|v| v.to_string()).collect();
                    let entry = assembled
                        .entry((row.set_index, row.group_columns.clone(), key_repr))
                        .or_insert_with(|| vec![Value::Null; total_aggs]);
                    for (local, &orig) in agg_indices.iter().enumerate() {
                        entry[orig] = row.aggregates[local].clone();
                    }
                }
            }
            // Keys were stringified for map ordering; rebuild result rows
            // with the original typed keys by re-walking the tables.
            let mut rows: Vec<ResultRow> = Vec::with_capacity(assembled.len());
            let mut seen: BTreeSet<(u32, Vec<String>, Vec<String>)> = BTreeSet::new();
            for (g, partial) in &groups {
                let sliced = &sliced_queries[*g as usize];
                let table = sliced.finalize(partial);
                for row in table.rows {
                    let key_repr: Vec<String> = row.key.iter().map(|v| v.to_string()).collect();
                    let map_key = (row.set_index, row.group_columns.clone(), key_repr);
                    if !seen.insert(map_key.clone()) {
                        continue;
                    }
                    let aggregates = assembled[&map_key].clone();
                    rows.push(ResultRow {
                        set_index: row.set_index,
                        group_columns: row.group_columns,
                        key: row.key,
                        aggregates,
                    });
                }
            }
            rows.sort_by(|a, b| {
                (a.set_index, format!("{:?}", a.key)).cmp(&(b.set_index, format!("{:?}", b.key)))
            });
            Ok(QueryOutcome::Grouping(ResultTable {
                aggregate_names: q.aggregates.iter().map(|a| a.to_string()).collect(),
                rows,
            }))
        }
        (
            OutcomePayload::KMeans {
                centroids,
                per_cluster,
            },
            edgelet_query::QueryKind::KMeans {
                per_cluster_aggregates,
                ..
            },
        ) => {
            let table = if per_cluster_aggregates.is_empty() {
                None
            } else {
                let q = GroupingQuery {
                    sets: vec![vec!["__cluster".to_string()]],
                    aggregates: per_cluster_aggregates.clone(),
                };
                Some(q.finalize(&per_cluster))
            };
            Ok(QueryOutcome::KMeans {
                centroids,
                per_cluster: table,
            })
        }
        _ => Err(Error::Protocol(
            "result payload does not match the query kind".into(),
        )),
    }
}

/// Convenience used by tests and the platform crate: enrolls `n` devices
/// in a directory and returns matching per-device stores.
pub fn enroll_crowd(
    directory: &mut Directory,
    sim: &mut Simulation,
    contributors: usize,
    processors: usize,
    class: DeviceClass,
    rows_per_contributor: usize,
    rng: &mut edgelet_util::rng::DetRng,
) -> (BTreeMap<DeviceId, DataStore>, Vec<DeviceId>) {
    use edgelet_sim::DeviceConfig;
    let mut stores = BTreeMap::new();
    let mut devices = Vec::new();
    for i in 0..(contributors + processors) {
        let dev = sim.add_device(DeviceConfig::default());
        let is_contributor = i < contributors;
        directory.enroll(dev, class, is_contributor, !is_contributor, rng);
        if is_contributor {
            let mut store_rng = rng.fork_indexed("crowd-store", dev.raw());
            stores.insert(
                dev,
                edgelet_store::synth::health_store(rows_per_contributor, &mut store_rng),
            );
        }
        devices.push(dev);
    }
    (stores, devices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_ml::grouping::GroupingQuery;
    use edgelet_ml::{AggKind, AggSpec};
    use edgelet_query::plan::build_plan;
    use edgelet_query::{PrivacyConfig, QueryKind, QuerySpec, ResilienceConfig, Strategy};
    use edgelet_sim::{DeviceConfig, NetworkModel, SimConfig, Simulation};
    use edgelet_store::synth::health_schema;
    use edgelet_store::{CmpOp, Predicate};
    use edgelet_util::ids::QueryId;
    use edgelet_util::rng::DetRng;

    fn grouping_spec(c: usize) -> QuerySpec {
        QuerySpec {
            id: QueryId::new(1),
            filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            snapshot_cardinality: c,
            kind: QueryKind::GroupingSets(GroupingQuery::new(
                &[&["sex"], &[]],
                vec![
                    AggSpec::count_star(),
                    AggSpec::over(AggKind::Avg, "bmi"),
                    AggSpec::over(AggKind::Max, "systolic_bp"),
                ],
            )),
            deadline_secs: 600.0,
        }
    }

    struct World {
        sim: Simulation,
        directory: Directory,
        stores: BTreeMap<DeviceId, DataStore>,
        querier: DeviceId,
        rng: DetRng,
    }

    fn reliable_world(contributors: usize, processors: usize, seed: u64) -> World {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(edgelet_sim::Duration::from_millis(20)),
                ..SimConfig::default()
            },
            seed,
        );
        let mut directory = Directory::new();
        let mut rng = DetRng::new(seed ^ 0xfeed);
        let (stores, _) = enroll_crowd(
            &mut directory,
            &mut sim,
            contributors,
            processors,
            DeviceClass::SgxPc,
            1,
            &mut rng,
        );
        let querier = sim.add_device(DeviceConfig::default());
        World {
            sim,
            directory,
            stores,
            querier,
            rng,
        }
    }

    fn run(
        world: &mut World,
        spec: &QuerySpec,
        privacy: PrivacyConfig,
        res: ResilienceConfig,
    ) -> ExecutionReport {
        let plan = build_plan(
            spec,
            &health_schema(),
            &privacy,
            &res,
            &world.directory,
            world.querier,
            &mut world.rng,
        )
        .unwrap();
        execute_plan(
            &plan,
            &health_schema(),
            &world.stores,
            &BTreeMap::new(),
            &mut world.sim,
            &ExecConfig::fast(),
            [0u8; 32],
        )
        .unwrap()
    }

    #[test]
    fn grouping_query_completes_and_matches_centralized_totals() {
        // Plenty of contributors: every bucket of the overcollected plan
        // must be able to fill its quota from its ~64% elderly share.
        let mut world = reliable_world(3000, 120, 1);
        let spec = grouping_spec(400);
        let report = run(
            &mut world,
            &spec,
            PrivacyConfig::none().with_max_tuples(100),
            ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.1,
                ..ResilienceConfig::default()
            },
        );
        assert!(report.completed, "query must complete: {report:?}");
        assert!(report.valid, "no failures injected -> valid");
        assert_eq!(report.partitions_merged, 4); // n = 400/100
        assert_eq!(report.partitions_complete, 4);
        let Some(QueryOutcome::Grouping(table)) = &report.outcome else {
            panic!("expected grouping outcome");
        };
        // Grand total COUNT(*) = C exactly.
        let total = table
            .rows
            .iter()
            .find(|r| r.set_index == 1)
            .expect("grand total row");
        assert_eq!(total.aggregates[0], Value::Int(400));
        // AVG(bmi) within the data's plausible range.
        let avg_bmi = total.aggregates[1].as_f64().unwrap();
        assert!((20.0..35.0).contains(&avg_bmi), "avg bmi {avg_bmi}");
        // Per-sex counts sum to the total.
        let by_sex: i64 = table
            .rows
            .iter()
            .filter(|r| r.set_index == 0)
            .map(|r| r.aggregates[0].as_i64().unwrap())
            .sum();
        assert_eq!(by_sex, 400);
        // Liability is spread: nobody saw more than one partition's quota.
        assert!(report.ledger.max_raw_tuples() <= 100);
        assert!(report.messages_sent > 0);
    }

    #[test]
    fn vertical_slices_reassemble_full_aggregate_list() {
        let mut world = reliable_world(1200, 120, 2);
        let spec = grouping_spec(300);
        let report = run(
            &mut world,
            &spec,
            PrivacyConfig::none()
                .with_max_tuples(100)
                .separate("bmi", "systolic_bp"),
            ResilienceConfig {
                strategy: Strategy::Naive,
                ..ResilienceConfig::default()
            },
        );
        assert!(report.completed);
        let Some(QueryOutcome::Grouping(table)) = &report.outcome else {
            panic!("expected grouping outcome");
        };
        let total = table.rows.iter().find(|r| r.set_index == 1).unwrap();
        // All three aggregates present despite living on separate slices.
        assert_eq!(total.aggregates[0], Value::Int(300));
        assert!(
            total.aggregates[1].as_f64().is_some(),
            "avg bmi from slice A"
        );
        assert!(
            total.aggregates[2].as_i64().is_some(),
            "max bp from slice B"
        );
    }

    #[test]
    fn kmeans_query_completes() {
        let mut world = reliable_world(900, 40, 3);
        let spec = QuerySpec {
            id: QueryId::new(2),
            filter: Predicate::True,
            snapshot_cardinality: 300,
            kind: QueryKind::KMeans {
                k: 3,
                features: vec!["age".into(), "bmi".into()],
                heartbeats: 4,
                per_cluster_aggregates: vec![AggSpec::over(AggKind::Avg, "gir")],
            },
            deadline_secs: 600.0,
        };
        let report = run(
            &mut world,
            &spec,
            PrivacyConfig::none().with_max_tuples(100),
            ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.1,
                ..ResilienceConfig::default()
            },
        );
        assert!(report.completed, "{report:?}");
        let Some(QueryOutcome::KMeans {
            centroids,
            per_cluster,
        }) = &report.outcome
        else {
            panic!("expected kmeans outcome");
        };
        assert_eq!(centroids.k(), 3);
        assert!(centroids.total_weight() > 0.0);
        let table = per_cluster.as_ref().expect("per-cluster aggregates");
        assert!(!table.rows.is_empty());
    }

    #[test]
    fn backup_strategy_rejected_for_kmeans() {
        let mut world = reliable_world(300, 60, 4);
        let spec = QuerySpec {
            id: QueryId::new(3),
            filter: Predicate::True,
            snapshot_cardinality: 100,
            kind: QueryKind::KMeans {
                k: 2,
                features: vec!["age".into()],
                heartbeats: 2,
                per_cluster_aggregates: vec![],
            },
            deadline_secs: 600.0,
        };
        let plan = build_plan(
            &spec,
            &health_schema(),
            &PrivacyConfig::none().with_max_tuples(50),
            &ResilienceConfig {
                strategy: Strategy::Backup,
                ..ResilienceConfig::default()
            },
            &world.directory,
            world.querier,
            &mut world.rng,
        )
        .unwrap();
        let err = execute_plan(
            &plan,
            &health_schema(),
            &world.stores,
            &BTreeMap::new(),
            &mut world.sim,
            &ExecConfig::fast(),
            [0u8; 32],
        );
        assert!(err.is_err());
    }

    #[test]
    fn missing_store_is_a_config_error() {
        let mut world = reliable_world(300, 40, 5);
        let spec = grouping_spec(100);
        let plan = build_plan(
            &spec,
            &health_schema(),
            &PrivacyConfig::none().with_max_tuples(50),
            &ResilienceConfig::default(),
            &world.directory,
            world.querier,
            &mut world.rng,
        )
        .unwrap();
        let empty_stores = BTreeMap::new();
        let err = execute_plan(
            &plan,
            &health_schema(),
            &empty_stores,
            &BTreeMap::new(),
            &mut world.sim,
            &ExecConfig::fast(),
            [0u8; 32],
        );
        assert!(err.is_err());
    }

    #[test]
    fn mis_timed_config_is_rejected_at_entry() {
        let mut world = reliable_world(300, 40, 6);
        let spec = grouping_spec(100);
        let plan = build_plan(
            &spec,
            &health_schema(),
            &PrivacyConfig::none().with_max_tuples(50),
            &ResilienceConfig::default(),
            &world.directory,
            world.querier,
            &mut world.rng,
        )
        .unwrap();
        let mut config = ExecConfig::fast();
        config.ping_period = config.suspect_timeout + Duration::from_secs(1);
        let err = execute_plan(
            &plan,
            &health_schema(),
            &world.stores,
            &BTreeMap::new(),
            &mut world.sim,
            &config,
            [0u8; 32],
        );
        match err {
            Err(Error::InvalidConfig(msg)) => {
                assert!(msg.contains("ping_period"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn duplicated_partials_are_merged_and_charged_once() {
        // Regression: before the combiner's idempotence guard, a
        // duplicated GroupingPartial was ledger-charged once per copy,
        // inflating aggregates_seen past the per-slot bound.
        let run_with = |duplicate: bool| {
            let mut world = reliable_world(3000, 120, 7);
            if duplicate {
                world
                    .sim
                    .set_classifier(Box::new(crate::messages::classify_payload));
                world.sim.set_fault_plan(
                    edgelet_sim::FaultPlan::new().rule(
                        edgelet_sim::FaultRule::new(edgelet_sim::FaultAction::Duplicate {
                            extra_delay: edgelet_sim::Duration::from_millis(5),
                        })
                        .on_kinds(&[crate::messages::kind::GROUPING_PARTIAL]),
                    ),
                );
            }
            let spec = grouping_spec(400);
            let report = run(
                &mut world,
                &spec,
                PrivacyConfig::none().with_max_tuples(100),
                ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.1,
                    ..ResilienceConfig::default()
                },
            );
            assert!(report.valid, "{report:?}");
            report
        };
        let base = run_with(false);
        let dup = run_with(true);
        let table = |r: &ExecutionReport| match &r.outcome {
            Some(QueryOutcome::Grouping(t)) => format!("{t}"),
            other => panic!("expected grouping outcome, got {other:?}"),
        };
        assert_eq!(
            table(&base),
            table(&dup),
            "duplicated partials must not change the result"
        );
        assert_eq!(
            base.ledger.entries(),
            dup.ledger.entries(),
            "duplicated partials must not inflate the liability ledger"
        );
    }

    #[test]
    fn extra_collection_rounds_recover_contributions_lost_early() {
        // With the fast profile (5s collection window) a builder's
        // request rounds land at t = 0 and 2.5s for one retry, and at
        // t = 0, 1.25s, 2.5s, 3.75s for three. An outage that swallows
        // every contribution sent before t = 2.6s therefore defeats the
        // single-retry builder completely, while the third extra round
        // escapes it and refills the snapshot.
        let run_with_retries = |retries: u32| {
            let mut world = reliable_world(3000, 120, 8);
            world
                .sim
                .set_classifier(Box::new(crate::messages::classify_payload));
            world.sim.set_fault_plan(
                edgelet_sim::FaultPlan::new().rule(
                    edgelet_sim::FaultRule::new(edgelet_sim::FaultAction::Drop)
                        .on_kinds(&[crate::messages::kind::CONTRIBUTION])
                        .until(edgelet_sim::SimTime::from_micros(2_600_000)),
                ),
            );
            let spec = grouping_spec(400);
            let plan = build_plan(
                &spec,
                &health_schema(),
                &PrivacyConfig::none().with_max_tuples(100),
                &ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.1,
                    ..ResilienceConfig::default()
                },
                &world.directory,
                world.querier,
                &mut world.rng,
            )
            .unwrap();
            let mut config = ExecConfig::fast();
            config.collection_retries = retries;
            let report = execute_plan(
                &plan,
                &health_schema(),
                &world.stores,
                &BTreeMap::new(),
                &mut world.sim,
                &config,
                [0u8; 32],
            )
            .unwrap();
            (report, plan.n)
        };
        let (one_retry, _) = run_with_retries(1);
        assert_eq!(
            one_retry.partitions_complete, 0,
            "both rounds fell inside the outage: {one_retry:?}"
        );
        assert!(!one_retry.valid);
        let (three_retries, n) = run_with_retries(3);
        assert!(
            three_retries.valid,
            "the late round must recover the crowd: {three_retries:?}"
        );
        assert!(three_retries.partitions_complete >= n);
    }
}
