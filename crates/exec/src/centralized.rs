//! Centralized reference execution.
//!
//! The Validity property compares the decentralized result to "the one
//! obtained in a centralized context" (§1). This module evaluates the same
//! query over the union of all matching rows on a single node, exactly
//! what the demo's verification step does ("take the same dataset ... and
//! run the processing centrally", §3.2).

use edgelet_ml::gen::rows_to_points;
use edgelet_ml::grouping::{GroupingQuery, ResultTable};
use edgelet_ml::kmeans::{inertia, KMeans, KMeansConfig};
use edgelet_ml::AggSpec;
use edgelet_store::value::Value;
use edgelet_store::{ColumnType, DataStore, Predicate, Row, Schema};
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::Result;
use std::collections::BTreeMap;

/// Collects every row matching `filter` across all contributor stores,
/// projected onto `columns` (the data a perfect, lossless collection
/// would gather).
pub fn eligible_rows(
    stores: &BTreeMap<DeviceId, DataStore>,
    filter: &Predicate,
    columns: &[String],
) -> Result<Vec<Row>> {
    let names: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut out = Vec::new();
    for store in stores.values() {
        out.extend(store.scan_project(filter, &names)?);
    }
    Ok(out)
}

/// Runs a Grouping-Sets query centrally over the given rows.
pub fn run_grouping(
    schema: &Schema,
    columns: &[String],
    rows: &[Row],
    query: &GroupingQuery,
) -> Result<ResultTable> {
    let names: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let sub_schema = schema.project(&names)?;
    let partial = query.compute(&sub_schema, rows)?;
    Ok(query.finalize(&partial))
}

/// Centralized K-Means outcome.
#[derive(Debug, Clone)]
pub struct CentralKMeans {
    /// Fitted model.
    pub model: KMeans,
    /// Final inertia over the input points.
    pub inertia: f64,
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Per-cluster aggregates (if requested).
    pub per_cluster: Option<ResultTable>,
}

/// Runs K-Means centrally over the given rows.
pub fn run_kmeans(
    schema: &Schema,
    columns: &[String],
    rows: &[Row],
    k: usize,
    features: &[String],
    per_cluster_aggregates: &[AggSpec],
    rng: &mut DetRng,
) -> Result<CentralKMeans> {
    let names: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let sub_schema = schema.project(&names)?;
    let feature_names: Vec<&str> = features.iter().map(|s| s.as_str()).collect();
    let points = rows_to_points(&sub_schema, rows, &feature_names)?;
    let config = KMeansConfig {
        k,
        max_iterations: 100,
        tolerance: 1e-9,
    };
    let mut model = KMeans::seed(&points, &config, rng)?;
    model.fit(&points, &config)?;
    let assignments = model.assign(&points);
    let final_inertia = inertia(&model.centroids, &points);

    let per_cluster = if per_cluster_aggregates.is_empty() {
        None
    } else {
        // Augment rows with their cluster and aggregate per cluster.
        let mut aug_cols: Vec<(&str, ColumnType)> = vec![("__cluster", ColumnType::Int)];
        for c in sub_schema.columns() {
            aug_cols.push((c.name.as_str(), c.ty));
        }
        let aug_schema = Schema::new(aug_cols)?;
        let feat_idx: Vec<usize> = feature_names
            .iter()
            .map(|c| sub_schema.index_of(c))
            .collect::<Result<_>>()?;
        let mut aug_rows = Vec::with_capacity(rows.len());
        'rows: for row in rows {
            let mut p = Vec::with_capacity(feat_idx.len());
            for &i in &feat_idx {
                match row.get(i).and_then(|v| v.as_f64()) {
                    Some(x) => p.push(x),
                    None => continue 'rows,
                }
            }
            let cluster = edgelet_ml::kmeans::nearest(&model.centroids, &p);
            let mut values = Vec::with_capacity(row.arity() + 1);
            values.push(Value::Int(cluster as i64));
            values.extend(row.values().iter().cloned());
            aug_rows.push(Row::new(values));
        }
        let q = GroupingQuery {
            sets: vec![vec!["__cluster".to_string()]],
            aggregates: per_cluster_aggregates.to_vec(),
        };
        let partial = q.compute(&aug_schema, &aug_rows)?;
        Some(q.finalize(&partial))
    };

    Ok(CentralKMeans {
        model,
        inertia: final_inertia,
        assignments,
        per_cluster,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_ml::{AggKind, AggSpec};
    use edgelet_store::synth;
    use edgelet_store::CmpOp;

    fn stores(n: usize) -> BTreeMap<DeviceId, DataStore> {
        let mut rng = DetRng::new(1);
        synth::personal_stores(n, 1, &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (DeviceId::new(i as u64), s))
            .collect()
    }

    #[test]
    fn eligible_rows_filters_and_projects() {
        let stores = stores(200);
        let filter = Predicate::cmp("age", CmpOp::Gt, Value::Int(65));
        let cols = vec!["age".to_string(), "gir".to_string()];
        let rows = eligible_rows(&stores, &filter, &cols).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.len() < 200);
        for r in &rows {
            assert_eq!(r.arity(), 2);
            assert!(r.values()[0].as_i64().unwrap() > 65);
        }
    }

    #[test]
    fn run_grouping_counts_match() {
        let stores = stores(300);
        let cols = vec!["gir".to_string(), "sex".to_string()];
        let rows = eligible_rows(&stores, &Predicate::True, &cols).unwrap();
        let q = GroupingQuery::new(&[&[]], vec![AggSpec::count_star()]);
        let table = run_grouping(&synth::health_schema(), &cols, &rows, &q).unwrap();
        assert_eq!(table.rows[0].aggregates[0], Value::Int(300));
    }

    #[test]
    fn run_kmeans_produces_k_clusters_and_aggregates() {
        let stores = stores(400);
        let cols = vec!["age".to_string(), "bmi".to_string(), "gir".to_string()];
        let rows = eligible_rows(&stores, &Predicate::True, &cols).unwrap();
        let mut rng = DetRng::new(5);
        let out = run_kmeans(
            &synth::health_schema(),
            &cols,
            &rows,
            3,
            &["age".to_string(), "bmi".to_string()],
            &[AggSpec::over(AggKind::Avg, "gir")],
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.model.centroids.len(), 3);
        assert_eq!(out.assignments.len(), 400);
        assert!(out.inertia > 0.0);
        let table = out.per_cluster.unwrap();
        assert!(!table.rows.is_empty() && table.rows.len() <= 3);
        // Cluster counts... every assignment maps to a cluster in 0..3.
        assert!(out.assignments.iter().all(|&a| a < 3));
    }
}
