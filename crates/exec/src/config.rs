//! Execution configuration.

use edgelet_sim::Duration;
use edgelet_util::{Error, Result};

/// Knobs controlling how a plan executes.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// How long Snapshot Builders wait for contributions before shipping
    /// what they have.
    pub collection_timeout: Duration,
    /// Extra contribution-request rounds a builder sends to contributors
    /// that have not answered yet (loss recovery at the collection stage).
    /// Retries are spread evenly within the collection timeout.
    pub collection_retries: u32,
    /// How long Combiners wait for partials before finalizing (the
    /// "right before the query deadline" margin of §2.2).
    pub combine_timeout: Duration,
    /// Heartbeat period cadencing K-Means iterations.
    pub heartbeat_period: Duration,
    /// Lloyd steps a Computer runs per heartbeat (local convergence).
    pub lloyd_steps_per_heartbeat: usize,
    /// Whether inter-operator payloads are AEAD-sealed under a query key.
    pub encrypt_channels: bool,
    /// Whether to charge device compute time (via timers) for kernels.
    pub charge_compute_time: bool,
    /// K-Means: fraction of the local partition used per heartbeat
    /// (`None` = full partition; `Some(f)` resamples a fresh mini-batch
    /// each heartbeat, the Mini-batch-K-Means behaviour of §2.2).
    pub minibatch_fraction: Option<f64>,
    /// Backup strategy: replica liveness probe period.
    pub ping_period: Duration,
    /// Backup strategy: silence span after which a replica is suspected.
    pub suspect_timeout: Duration,
    /// Virtual-time horizon after which periodic timers (pings,
    /// heartbeats) stop re-arming. The driver sets this to the query
    /// deadline so the simulation quiesces.
    pub query_deadline: Duration,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            collection_timeout: Duration::from_secs(120),
            collection_retries: 1,
            combine_timeout: Duration::from_secs(480),
            heartbeat_period: Duration::from_secs(30),
            lloyd_steps_per_heartbeat: 3,
            encrypt_channels: false,
            charge_compute_time: true,
            minibatch_fraction: None,
            ping_period: Duration::from_secs(20),
            suspect_timeout: Duration::from_secs(60),
            query_deadline: Duration::from_secs(3_600),
        }
    }
}

impl ExecConfig {
    /// A profile for fast unit tests: tight timers, no crypto.
    pub fn fast() -> Self {
        Self {
            collection_timeout: Duration::from_secs(5),
            collection_retries: 1,
            combine_timeout: Duration::from_secs(30),
            heartbeat_period: Duration::from_secs(2),
            lloyd_steps_per_heartbeat: 2,
            encrypt_channels: false,
            charge_compute_time: false,
            minibatch_fraction: None,
            ping_period: Duration::from_secs(2),
            suspect_timeout: Duration::from_secs(6),
            query_deadline: Duration::from_secs(120),
        }
    }

    /// A profile matching opportunistic-network time scales (minutes to
    /// hours), used by the OppNet experiments.
    pub fn opportunistic() -> Self {
        Self {
            collection_timeout: Duration::from_secs(3_600),
            collection_retries: 2,
            combine_timeout: Duration::from_secs(4 * 3_600),
            heartbeat_period: Duration::from_secs(1_800),
            lloyd_steps_per_heartbeat: 5,
            encrypt_channels: false,
            charge_compute_time: true,
            minibatch_fraction: None,
            ping_period: Duration::from_secs(900),
            suspect_timeout: Duration::from_secs(2_700),
            query_deadline: Duration::from_secs(24 * 3_600),
        }
    }

    /// Checks the timer orderings the protocol silently assumes.
    ///
    /// * `ping_period < suspect_timeout` — a replica must get at least
    ///   one probe round inside the suspicion span, or every Backup
    ///   replica immediately suspects its lowers and activates.
    /// * `collection_timeout ≤ combine_timeout` — builders must be able
    ///   to ship partitions before combiners give up waiting for them.
    /// * `combine_timeout ≤ query_deadline` — combiners finalize
    ///   "right before the query deadline" (§2.2), never after it.
    ///
    /// Called at `execute_plan` entry so a mis-timed profile fails fast
    /// with a clear error instead of producing an empty, invalid run.
    pub fn validate(&self) -> Result<()> {
        let err = |msg: String| Err(Error::InvalidConfig(msg));
        if self.ping_period >= self.suspect_timeout {
            return err(format!(
                "ping_period ({:.1}s) must be shorter than suspect_timeout ({:.1}s): \
                 replicas need at least one probe round before suspicion",
                self.ping_period.as_secs_f64(),
                self.suspect_timeout.as_secs_f64()
            ));
        }
        if self.collection_timeout > self.combine_timeout {
            return err(format!(
                "collection_timeout ({:.1}s) must not exceed combine_timeout ({:.1}s): \
                 builders would still be collecting when combiners finalize",
                self.collection_timeout.as_secs_f64(),
                self.combine_timeout.as_secs_f64()
            ));
        }
        if self.combine_timeout > self.query_deadline {
            return err(format!(
                "combine_timeout ({:.1}s) must not exceed query_deadline ({:.1}s): \
                 combiners must finalize before the deadline",
                self.combine_timeout.as_secs_f64(),
                self.query_deadline.as_secs_f64()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_sensibly() {
        let fast = ExecConfig::fast();
        let def = ExecConfig::default();
        let opp = ExecConfig::opportunistic();
        assert!(fast.collection_timeout < def.collection_timeout);
        assert!(def.collection_timeout < opp.collection_timeout);
        assert!(fast.heartbeat_period < opp.heartbeat_period);
        assert!(opp.suspect_timeout > opp.ping_period);
        assert!(def.suspect_timeout > def.ping_period);
    }

    #[test]
    fn shipped_profiles_validate() {
        ExecConfig::fast().validate().unwrap();
        ExecConfig::default().validate().unwrap();
        ExecConfig::opportunistic().validate().unwrap();
    }

    fn expect_invalid(config: ExecConfig, needle: &str) {
        match config.validate() {
            Err(Error::InvalidConfig(msg)) => {
                assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn ping_period_must_undershoot_suspect_timeout() {
        let mut config = ExecConfig::fast();
        config.ping_period = config.suspect_timeout;
        expect_invalid(config, "ping_period");
    }

    #[test]
    fn collection_timeout_must_fit_combine_timeout() {
        let mut config = ExecConfig::fast();
        config.collection_timeout = config.combine_timeout + Duration::from_secs(1);
        expect_invalid(config, "collection_timeout");
    }

    #[test]
    fn combine_timeout_must_fit_query_deadline() {
        let mut config = ExecConfig::fast();
        config.query_deadline = config.combine_timeout - Duration::from_secs(1);
        expect_invalid(config, "combine_timeout");
    }
}
