//! The Computer actor for Grouping-Sets queries: evaluates its vertical
//! slice of the aggregation over one partition and forwards the mergeable
//! partial to the Combiner replicas.

use crate::config::ExecConfig;
use crate::ledger::SharedLedger;
use crate::messages::Msg;
use crate::roles::{RankGate, Sealer};
use edgelet_ml::grouping::GroupingQuery;
use edgelet_sim::{Actor, Context, Duration, TimerToken};
use edgelet_store::{Row, Schema};
use edgelet_tee::DeviceProfile;
use edgelet_util::ids::{DeviceId, PartitionId, QueryId};
use edgelet_util::Payload;

/// Static wiring of one grouping-computer replica.
#[derive(Debug, Clone)]
pub struct ComputerWiring {
    /// Query id.
    pub query: QueryId,
    /// Partition handled.
    pub partition: PartitionId,
    /// Vertical group index.
    pub attr_group: u32,
    /// The slice of the grouping query this computer evaluates (all
    /// grouping sets, the subset of aggregates whose columns live here).
    pub sliced_query: GroupingQuery,
    /// Devices hosting the Combiner replicas.
    pub combiners: Vec<DeviceId>,
    /// Host performance profile.
    pub profile: DeviceProfile,
}

/// The grouping Computer actor.
pub struct GroupingComputerActor {
    wiring: ComputerWiring,
    config: ExecConfig,
    sealer: Sealer,
    ledger: SharedLedger,
    schema: Schema,
    gate: RankGate,
    compute_timer: Option<TimerToken>,
    ping_timer: Option<TimerToken>,
    staged: Option<(Vec<String>, Vec<Row>, bool)>,
    pending_output: Vec<(DeviceId, Payload)>,
    done: bool,
}

impl GroupingComputerActor {
    /// Creates a computer replica.
    pub fn new(
        wiring: ComputerWiring,
        config: ExecConfig,
        sealer: Sealer,
        ledger: SharedLedger,
        schema: Schema,
        gate: RankGate,
    ) -> Self {
        Self {
            wiring,
            config,
            sealer,
            ledger,
            schema,
            gate,
            compute_timer: None,
            ping_timer: None,
            staged: None,
            pending_output: Vec::new(),
            done: false,
        }
    }

    fn compute_and_forward(&mut self, ctx: &mut Context<'_>) {
        let Some((columns, rows, complete)) = self.staged.take() else {
            return;
        };
        let names: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
        let Ok(sub_schema) = self.schema.project(&names) else {
            ctx.observe("schema_errors", 1.0);
            return;
        };
        let partial = match self.wiring.sliced_query.compute(&sub_schema, &rows) {
            Ok(p) => p,
            Err(_) => {
                ctx.observe("compute_errors", 1.0);
                return;
            }
        };
        self.done = true;
        let msg = Msg::GroupingPartial {
            query: self.wiring.query,
            partition: self.wiring.partition,
            attr_group: self.wiring.attr_group,
            partial,
            tuples: rows.len() as u64,
            complete,
        };
        let bytes = self.sealer.wrap(&msg);
        let combiners = self.wiring.combiners.clone();
        for target in combiners {
            if self.gate.is_active() {
                ctx.send(target, bytes.share());
            } else {
                self.pending_output.push((target, bytes.share()));
            }
        }
    }

    fn arm_ping(&mut self, ctx: &mut Context<'_>) {
        let finished = self.gate.is_active() && self.done && self.pending_output.is_empty();
        let past_deadline = ctx.now().as_secs_f64() >= self.config.query_deadline.as_secs_f64();
        if self.gate.rank > 0 && !finished && !past_deadline {
            self.ping_timer = Some(ctx.set_timer(self.config.ping_period));
        }
    }
}

impl Actor for GroupingComputerActor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .host_operator(ctx.device());
        self.arm_ping(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, payload: &[u8]) {
        let Ok(msg) = self.sealer.unwrap(payload) else {
            ctx.observe("corrupt_messages", 1.0);
            return;
        };
        match msg {
            Msg::PartitionData {
                query,
                partition,
                attr_group,
                columns,
                rows,
                complete,
            } if query == self.wiring.query
                && partition == self.wiring.partition
                && attr_group == self.wiring.attr_group =>
            {
                if self.done || self.staged.is_some() {
                    return; // duplicate delivery (replicated builder)
                }
                self.ledger
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .raw_tuples(ctx.device(), rows.len() as u64);
                let tuple_count = rows.len();
                self.staged = Some((columns, rows, complete));
                if self.config.charge_compute_time {
                    let secs = self.wiring.profile.compute_seconds(tuple_count);
                    self.compute_timer = Some(ctx.set_timer(Duration::from_secs_f64(secs)));
                } else {
                    self.compute_and_forward(ctx);
                }
            }
            Msg::Ping { query, .. } if query == self.wiring.query => {
                let pong = Msg::Pong {
                    query,
                    from_rank: self.gate.rank,
                };
                let bytes = self.sealer.wrap(&pong);
                ctx.send(from, bytes);
            }
            Msg::Pong { query, .. } if query == self.wiring.query => {
                self.gate.saw(from, ctx.now().as_secs_f64());
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if Some(token) == self.compute_timer {
            self.compute_timer = None;
            self.compute_and_forward(ctx);
        } else if Some(token) == self.ping_timer {
            let ping = Msg::Ping {
                query: self.wiring.query,
                from_rank: self.gate.rank,
            };
            let bytes = self.sealer.wrap(&ping);
            ctx.broadcast(self.gate.lower.clone(), bytes);
            if self.gate.evaluate(
                ctx.now().as_secs_f64(),
                self.config.suspect_timeout.as_secs_f64(),
            ) {
                ctx.observe("backup_takeovers", 1.0);
                for (target, bytes) in std::mem::take(&mut self.pending_output) {
                    ctx.send(target, bytes);
                }
            }
            self.arm_ping(ctx);
        }
    }
}
