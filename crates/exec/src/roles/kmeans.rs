//! The Computer actor for iterative K-Means (§2.2).
//!
//! Each computer alternates a *local convergence* phase (Lloyd steps on
//! its partition) and a *synchronization* phase (merging peer knowledge),
//! cadenced by a Heartbeat clock: rounds advance even when no peer
//! messages arrived. Right before the deadline (after the configured
//! number of heartbeats) the knowledge goes to the Combiner replicas.
//!
//! Centroid alignment: index-wise merging is only meaningful when peers
//! share a seeding. Every computer initially seeds k-means++ on its own
//! partition and tags its knowledge with a *seed origin* (its partition
//! id). On hearing knowledge with a lower origin it adopts that basis;
//! under loss some computers may stay on their own basis, which shows up
//! as accuracy degradation — exactly what experiment E4 measures.

use crate::config::ExecConfig;
use crate::ledger::SharedLedger;
use crate::messages::Msg;
use crate::roles::Sealer;
use edgelet_ml::distributed::CentroidSet;
use edgelet_ml::gen::rows_to_points;
use edgelet_ml::grouping::{GroupedPartial, GroupingQuery};
use edgelet_ml::kmeans::{kmeans_pp_seed, nearest, KMeans, LloydScratch};
use edgelet_ml::{AggSpec, Matrix};
use edgelet_sim::{Actor, Context, TimerToken};
use edgelet_store::value::Value;
use edgelet_store::{ColumnType, Row, Schema};
use edgelet_util::ids::{DeviceId, PartitionId, QueryId};

/// Static wiring of one K-Means computer.
#[derive(Debug, Clone)]
pub struct KMeansWiring {
    /// Query id.
    pub query: QueryId,
    /// Partition handled.
    pub partition: PartitionId,
    /// Number of clusters.
    pub k: usize,
    /// Feature column names.
    pub features: Vec<String>,
    /// Aggregates computed per resulting cluster.
    pub per_cluster_aggregates: Vec<AggSpec>,
    /// Total heartbeat rounds before finalization.
    pub heartbeats: usize,
    /// Peer computers (knowledge broadcast targets).
    pub peers: Vec<DeviceId>,
    /// Combiner replica devices.
    pub combiners: Vec<DeviceId>,
}

/// The iterative K-Means Computer actor.
pub struct KMeansComputerActor {
    wiring: KMeansWiring,
    config: ExecConfig,
    sealer: Sealer,
    ledger: SharedLedger,
    schema: Schema,
    heartbeat_timer: Option<TimerToken>,
    round: u32,
    /// Local data: full rows (for per-cluster aggregates) and points.
    rows: Vec<Row>,
    row_columns: Vec<String>,
    points: Matrix,
    complete: bool,
    km: Option<KMeans>,
    seed_origin: PartitionId,
    /// Peer knowledge received since the last synchronization.
    mailbox: Vec<(PartitionId, CentroidSet)>,
    finished: bool,
}

impl KMeansComputerActor {
    /// Creates a K-Means computer.
    pub fn new(
        wiring: KMeansWiring,
        config: ExecConfig,
        sealer: Sealer,
        ledger: SharedLedger,
        schema: Schema,
    ) -> Self {
        let seed_origin = wiring.partition;
        Self {
            wiring,
            config,
            sealer,
            ledger,
            schema,
            heartbeat_timer: None,
            round: 0,
            rows: Vec::new(),
            row_columns: Vec::new(),
            points: Matrix::default(),
            complete: false,
            km: None,
            seed_origin,
            mailbox: Vec::new(),
            finished: false,
        }
    }

    fn sub_schema(&self) -> Option<Schema> {
        let names: Vec<&str> = self.row_columns.iter().map(|s| s.as_str()).collect();
        self.schema.project(&names).ok()
    }

    fn seed_if_needed(&mut self, ctx: &mut Context<'_>) {
        if self.km.is_some() || self.points.is_empty() {
            return;
        }
        let mut seeds =
            // lint: allow(E104 the points-empty case returns early two lines up)
            kmeans_pp_seed(&self.points, self.wiring.k, ctx.rng()).expect("points non-empty");
        // Keep k consistent across the crowd even on tiny partitions.
        while seeds.len() < self.wiring.k {
            let last = seeds.row(seeds.len() - 1).to_vec();
            seeds.push_row(&last);
        }
        self.km = Some(KMeans::from_centroids(seeds));
    }

    /// Local convergence on (a mini-batch of) the local partition.
    fn local_convergence(&mut self, ctx: &mut Context<'_>) {
        let Some(km) = self.km.as_mut() else { return };
        if self.points.is_empty() {
            return;
        }
        // Full batches borrow the stored matrix directly; mini-batches
        // gather the sampled rows into one contiguous buffer.
        let sampled;
        let batch: &Matrix = match self.config.minibatch_fraction {
            None => &self.points,
            Some(f) => {
                let size =
                    ((self.points.len() as f64 * f).ceil() as usize).clamp(1, self.points.len());
                let indices = ctx.rng().sample_indices(self.points.len(), size);
                sampled = self.points.gather(&indices);
                &sampled
            }
        };
        let mut scratch = LloydScratch::default();
        for _ in 0..self.config.lloyd_steps_per_heartbeat {
            if !km.lloyd_step_with(batch, &mut scratch) {
                break;
            }
        }
        // Refresh weights to the local assignment counts once more (the
        // final lloyd_step already did; this guards the zero-step case).
        if self.config.lloyd_steps_per_heartbeat == 0 {
            km.lloyd_step_with(batch, &mut scratch);
        }
    }

    /// Synchronization: adopt lower-origin bases, merge same-origin peers.
    fn synchronize(&mut self, ctx: &mut Context<'_>) {
        let mailbox = std::mem::take(&mut self.mailbox);
        for (origin, knowledge) in mailbox {
            if self.km.is_none() {
                // No local data yet: adopt any knowledge as the basis.
                self.km = Some(KMeans {
                    centroids: knowledge.centroids.clone(),
                    weights: knowledge.weights.clone(),
                });
                self.seed_origin = origin;
                continue;
            }
            if origin < self.seed_origin {
                // Lower origin wins: re-base on the peer's centroids.
                self.km = Some(KMeans {
                    centroids: knowledge.centroids.clone(),
                    weights: vec![0.0; knowledge.centroids.len()],
                });
                self.seed_origin = origin;
                ctx.observe("seed_rebase", 1.0);
            } else if origin == self.seed_origin {
                // lint: allow(E104 the km-is-none arm continues the loop above)
                let km = self.km.as_mut().expect("checked above");
                let mut mine = CentroidSet {
                    centroids: km.centroids.clone(),
                    weights: km.weights.clone(),
                };
                if mine.merge(&knowledge).is_ok() {
                    km.centroids = mine.centroids;
                    km.weights = mine.weights;
                }
            }
            // Higher origin: stale basis, ignored.
        }
    }

    fn broadcast_knowledge(&mut self, ctx: &mut Context<'_>) {
        let Some(km) = &self.km else { return };
        let Ok(centroids) = CentroidSet::new(km.centroids.clone(), km.weights.clone()) else {
            return;
        };
        let msg = Msg::Knowledge {
            query: self.wiring.query,
            partition: self.wiring.partition,
            round: self.round,
            seed_origin: self.seed_origin,
            centroids,
        };
        let bytes = self.sealer.wrap(&msg);
        ctx.broadcast(self.wiring.peers.clone(), bytes);
    }

    /// Per-cluster aggregates over the local rows under the final model.
    fn per_cluster_partial(&self) -> GroupedPartial {
        let empty = GroupedPartial::default();
        let Some(km) = &self.km else { return empty };
        let Some(sub_schema) = self.sub_schema() else {
            return empty;
        };
        if self.wiring.per_cluster_aggregates.is_empty() {
            return empty;
        }
        // Augment each row with its cluster id and aggregate per cluster.
        let mut aug_cols: Vec<(&str, ColumnType)> = vec![("__cluster", ColumnType::Int)];
        for c in sub_schema.columns() {
            aug_cols.push((c.name.as_str(), c.ty));
        }
        let Ok(aug_schema) = Schema::new(aug_cols) else {
            return empty;
        };
        let feature_names: Vec<&str> = self.wiring.features.iter().map(|s| s.as_str()).collect();
        let Ok(feat_idx) = feature_names
            .iter()
            .map(|c| sub_schema.index_of(c))
            .collect::<edgelet_util::Result<Vec<usize>>>()
        else {
            return empty;
        };
        let mut aug_rows = Vec::with_capacity(self.rows.len());
        'rows: for row in &self.rows {
            let mut p = Vec::with_capacity(feat_idx.len());
            for &i in &feat_idx {
                match row.get(i).and_then(|v| v.as_f64()) {
                    Some(x) => p.push(x),
                    None => continue 'rows,
                }
            }
            let cluster = nearest(&km.centroids, &p);
            let mut values = Vec::with_capacity(row.arity() + 1);
            values.push(Value::Int(cluster as i64));
            values.extend(row.values().iter().cloned());
            aug_rows.push(Row::new(values));
        }
        let q = GroupingQuery {
            sets: vec![vec!["__cluster".to_string()]],
            aggregates: self.wiring.per_cluster_aggregates.clone(),
        };
        q.compute(&aug_schema, &aug_rows).unwrap_or(empty)
    }

    fn finalize(&mut self, ctx: &mut Context<'_>) {
        self.finished = true;
        let Some(km) = &self.km else {
            return; // never got data nor knowledge: this partition is lost
        };
        let Ok(centroids) = CentroidSet::new(km.centroids.clone(), km.weights.clone()) else {
            return;
        };
        let per_cluster = self.per_cluster_partial();
        let msg = Msg::KMeansFinal {
            query: self.wiring.query,
            partition: self.wiring.partition,
            seed_origin: self.seed_origin,
            centroids,
            per_cluster,
            tuples: self.points.len() as u64,
            complete: self.complete,
        };
        let bytes = self.sealer.wrap(&msg);
        ctx.broadcast(self.wiring.combiners.clone(), bytes);
        ctx.observe("kmeans_rounds_completed", f64::from(self.round));
    }
}

impl Actor for KMeansComputerActor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .host_operator(ctx.device());
        // The Heartbeat cadences the COMPUTATION phase: it starts ticking
        // when the partition data arrives (see on_message), not before.
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
        let Ok(msg) = self.sealer.unwrap(payload) else {
            ctx.observe("corrupt_messages", 1.0);
            return;
        };
        match msg {
            Msg::PartitionData {
                query,
                partition,
                columns,
                rows,
                complete,
                ..
            } if query == self.wiring.query && partition == self.wiring.partition => {
                if !self.rows.is_empty() {
                    return; // duplicate
                }
                self.ledger
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .raw_tuples(ctx.device(), rows.len() as u64);
                self.row_columns = columns;
                self.rows = rows;
                self.complete = complete;
                if let Some(sub_schema) = self.sub_schema() {
                    let feature_names: Vec<&str> =
                        self.wiring.features.iter().map(|s| s.as_str()).collect();
                    if let Ok(points) = rows_to_points(&sub_schema, &self.rows, &feature_names) {
                        self.points = points;
                    }
                }
                self.seed_if_needed(ctx);
                if self.heartbeat_timer.is_none() && !self.finished {
                    self.heartbeat_timer = Some(ctx.set_timer(self.config.heartbeat_period));
                }
            }
            Msg::Knowledge {
                query,
                partition,
                seed_origin,
                centroids,
                ..
            } if query == self.wiring.query && partition != self.wiring.partition => {
                self.ledger
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .aggregates(ctx.device(), 1);
                self.mailbox.push((seed_origin, centroids));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if Some(token) != self.heartbeat_timer || self.finished {
            return;
        }
        self.round += 1;
        // Synchronization first (integrate what we heard), then local
        // convergence, then broadcast the improved knowledge.
        self.synchronize(ctx);
        self.seed_if_needed(ctx);
        self.local_convergence(ctx);
        self.broadcast_knowledge(ctx);
        if (self.round as usize) >= self.wiring.heartbeats {
            self.finalize(ctx);
        } else {
            self.heartbeat_timer = Some(ctx.set_timer(self.config.heartbeat_period));
        }
    }
}
