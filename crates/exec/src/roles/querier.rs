//! The Querier actor: receives the final result and records the outcome.

use crate::messages::Msg;
use crate::roles::Sealer;
use edgelet_sim::{Actor, Context, SimTime};
use edgelet_util::ids::{DeviceId, QueryId};
use std::sync::{Arc, Mutex};

/// What the querier observed, extracted by the driver after the run.
#[derive(Debug, Clone, Default)]
pub struct QuerierRecord {
    /// First result's raw payload (wire-encoded `OutcomePayload`).
    pub payload: Option<Vec<u8>>,
    /// Virtual time the first result arrived.
    pub completed_at: Option<SimTime>,
    /// Partitions merged into the first result.
    pub partitions_merged: u64,
    /// Of which complete.
    pub partitions_complete: u64,
    /// Replica index that won the race.
    pub winning_replica: u32,
    /// Total results received (duplicates from Active Backups).
    pub results_received: u64,
}

/// Shared handle to the querier record.
pub type SharedRecord = Arc<Mutex<QuerierRecord>>;

/// Creates a fresh shared record.
pub fn shared_record() -> SharedRecord {
    Arc::new(Mutex::new(QuerierRecord::default()))
}

/// The Querier actor.
pub struct QuerierActor {
    query: QueryId,
    sealer: Sealer,
    record: SharedRecord,
}

impl QuerierActor {
    /// Creates the querier endpoint.
    pub fn new(query: QueryId, sealer: Sealer, record: SharedRecord) -> Self {
        Self {
            query,
            sealer,
            record,
        }
    }
}

impl Actor for QuerierActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
        let Ok(msg) = self.sealer.unwrap(payload) else {
            ctx.observe("corrupt_messages", 1.0);
            return;
        };
        let Msg::FinalResult {
            query,
            payload,
            partitions_merged,
            partitions_complete,
            replica,
        } = msg
        else {
            return;
        };
        if query != self.query {
            return;
        }
        let mut rec = self.record.lock().unwrap_or_else(|e| e.into_inner());
        rec.results_received += 1;
        if rec.payload.is_none() {
            rec.payload = Some(payload);
            rec.completed_at = Some(ctx.now());
            rec.partitions_merged = partitions_merged;
            rec.partitions_complete = partitions_complete;
            rec.winning_replica = replica;
            ctx.observe("query_completed", ctx.now().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_sim::{DeviceConfig, Duration, NetworkModel, SimConfig, Simulation};

    struct SendResults {
        target: DeviceId,
        sealer: Sealer,
    }
    impl Actor for SendResults {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for replica in 0..2u32 {
                let msg = Msg::FinalResult {
                    query: QueryId::new(5),
                    payload: vec![replica as u8],
                    partitions_merged: 4,
                    partitions_complete: 3,
                    replica,
                };
                let bytes = self.sealer.wrap(&msg);
                ctx.send(self.target, bytes);
            }
        }
        fn on_message(&mut self, _c: &mut Context<'_>, _f: DeviceId, _p: &[u8]) {}
    }

    #[test]
    fn first_result_wins_duplicates_counted() {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(1)),
                ..SimConfig::default()
            },
            1,
        );
        let q_dev = sim.add_device(DeviceConfig::default());
        let c_dev = sim.add_device(DeviceConfig::default());
        let record = shared_record();
        sim.install_actor(
            q_dev,
            Box::new(QuerierActor::new(
                QueryId::new(5),
                Sealer::new(false, &[0u8; 32], QueryId::new(5), q_dev),
                record.clone(),
            )),
        );
        sim.install_actor(
            c_dev,
            Box::new(SendResults {
                target: q_dev,
                sealer: Sealer::new(false, &[0u8; 32], QueryId::new(5), c_dev),
            }),
        );
        sim.run();
        let rec = record.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(rec.results_received, 2);
        assert_eq!(rec.payload.as_deref(), Some(&[0u8][..]));
        assert_eq!(rec.partitions_merged, 4);
        assert_eq!(rec.partitions_complete, 3);
        assert!(rec.completed_at.is_some());
    }
}
