//! Protocol actors, one per operator role, plus shared plumbing.

pub mod builder;
pub mod combiner;
pub mod computer;
pub mod contributor;
pub mod kmeans;
pub mod querier;

use crate::messages::Msg;
use edgelet_crypto::aead::ChaCha20Poly1305;
use edgelet_crypto::hmac::hkdf;
use edgelet_util::ids::{DeviceId, QueryId};
use edgelet_util::{Error, Payload, Result};
use edgelet_wire::Frame;

/// Wraps/unwraps protocol messages for the network, optionally sealing
/// them with a query-scoped AEAD key.
///
/// On the wire: `0x00 || frame` (plaintext) or `0x01 || nonce(12) ||
/// ciphertext` (sealed). Real deployments derive pairwise channel keys
/// via attested X25519 handshakes (see `edgelet_tee::channel`); sealing
/// under one query key models the byte and CPU cost without simulating a
/// handshake per operator pair.
#[derive(Debug, Clone)]
pub struct Sealer {
    cipher: Option<ChaCha20Poly1305>,
    device: DeviceId,
    counter: u64,
}

impl Sealer {
    /// Derives the query-scoped key from a root secret, or passes through
    /// when `encrypt` is false.
    pub fn new(encrypt: bool, root: &[u8; 32], query: QueryId, device: DeviceId) -> Self {
        let cipher = encrypt.then(|| {
            let info = query.raw().to_le_bytes();
            let key_bytes = hkdf(b"edgelet-query-key", root, &info, 32);
            let mut key = [0u8; 32];
            key.copy_from_slice(&key_bytes);
            ChaCha20Poly1305::new(key)
        });
        Self {
            cipher,
            device,
            counter: 0,
        }
    }

    /// Serializes a message for the network. The result is a shareable
    /// [`Payload`]: sending it to every replica of an operator reuses one
    /// buffer instead of copying the bytes per recipient.
    pub fn wrap(&mut self, msg: &Msg) -> Payload {
        let frame = msg.to_frame().to_wire();
        let out = match &self.cipher {
            None => {
                let mut out = Vec::with_capacity(frame.len() + 1);
                out.push(0x00);
                out.extend_from_slice(&frame);
                out
            }
            Some(cipher) => {
                let mut nonce = [0u8; 12];
                nonce[..4].copy_from_slice(&(self.device.raw() as u32).to_le_bytes());
                nonce[4..].copy_from_slice(&self.counter.to_le_bytes());
                self.counter += 1;
                let sealed = cipher.seal(&nonce, &[], &frame);
                let mut out = Vec::with_capacity(sealed.len() + 13);
                out.push(0x01);
                out.extend_from_slice(&nonce);
                out.extend_from_slice(&sealed);
                out
            }
        };
        Payload::new(out)
    }

    /// Parses bytes from the network. Fails on corruption, tampering, or
    /// an encryption-mode mismatch.
    pub fn unwrap(&self, bytes: &[u8]) -> Result<Msg> {
        let (&marker, rest) = bytes
            .split_first()
            .ok_or_else(|| Error::Decode("empty network payload".into()))?;
        match (marker, &self.cipher) {
            (0x00, None) => Msg::from_frame(&Frame::from_wire(rest)?),
            (0x01, Some(cipher)) => {
                if rest.len() < 12 {
                    return Err(Error::Decode("sealed payload shorter than nonce".into()));
                }
                let mut nonce = [0u8; 12];
                nonce.copy_from_slice(&rest[..12]);
                let frame = cipher.open(&nonce, &[], &rest[12..])?;
                Msg::from_frame(&Frame::from_wire(&frame)?)
            }
            (m, _) => Err(Error::Decode(format!(
                "encryption-mode mismatch (marker {m:#04x})"
            ))),
        }
    }
}

/// Rank-based output gating for the Backup strategy.
///
/// Replicas of one operator all receive the inputs and compute; only the
/// *active* replica forwards output. Rank 0 starts active; a higher rank
/// activates once every lower rank has stayed silent past the suspicion
/// timeout (crash presumption).
#[derive(Debug, Clone)]
pub struct RankGate {
    /// This replica's rank (0 = primary).
    pub rank: u32,
    /// Devices hosting lower-ranked replicas, by rank.
    pub lower: Vec<DeviceId>,
    /// Virtual time (seconds) of the last sign of life per lower rank.
    last_seen: Vec<f64>,
    active: bool,
}

impl RankGate {
    /// Creates a gate; `lower[i]` hosts rank `i`.
    pub fn new(rank: u32, lower: Vec<DeviceId>, now_secs: f64) -> Self {
        debug_assert_eq!(rank as usize, lower.len());
        let n = lower.len();
        Self {
            rank,
            lower,
            last_seen: vec![now_secs; n],
            active: rank == 0,
        }
    }

    /// Whether this replica currently forwards output.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Permanently forces activity (used by Overcollection's Active
    /// Backup, which runs in parallel by design).
    pub fn force_active(&mut self) {
        self.active = true;
    }

    /// Records a sign of life from a lower-ranked replica device.
    pub fn saw(&mut self, device: DeviceId, now_secs: f64) {
        for (i, d) in self.lower.iter().enumerate() {
            if *d == device {
                self.last_seen[i] = now_secs;
            }
        }
    }

    /// Re-evaluates activation. Returns `true` if this call activated the
    /// replica (edge trigger, so pending output is flushed exactly once).
    pub fn evaluate(&mut self, now_secs: f64, suspect_timeout_secs: f64) -> bool {
        if self.active {
            return false;
        }
        let all_suspected = self
            .last_seen
            .iter()
            .all(|&t| now_secs - t > suspect_timeout_secs);
        if all_suspected {
            self.active = true;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Msg {
        Msg::Ping {
            query: QueryId::new(3),
            from_rank: 1,
        }
    }

    #[test]
    fn plaintext_roundtrip() {
        let mut s = Sealer::new(false, &[0u8; 32], QueryId::new(3), DeviceId::new(1));
        let bytes = s.wrap(&msg());
        assert_eq!(bytes[0], 0x00);
        assert_eq!(s.unwrap(&bytes).unwrap(), msg());
    }

    #[test]
    fn sealed_roundtrip_and_tamper() {
        let root = [7u8; 32];
        let mut a = Sealer::new(true, &root, QueryId::new(3), DeviceId::new(1));
        let b = Sealer::new(true, &root, QueryId::new(3), DeviceId::new(2));
        let bytes = a.wrap(&msg());
        assert_eq!(bytes[0], 0x01);
        assert_eq!(b.unwrap(&bytes).unwrap(), msg());
        // Tampering is caught.
        let mut bad = bytes.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(b.unwrap(&bad).is_err());
        // Distinct nonces for repeated sends.
        let bytes2 = a.wrap(&msg());
        assert_ne!(bytes, bytes2);
    }

    #[test]
    fn mode_mismatch_rejected() {
        let mut plain = Sealer::new(false, &[0u8; 32], QueryId::new(3), DeviceId::new(1));
        let sealed = Sealer::new(true, &[0u8; 32], QueryId::new(3), DeviceId::new(2));
        let bytes = plain.wrap(&msg());
        assert!(sealed.unwrap(&bytes).is_err());
        assert!(plain.unwrap(&[]).is_err());
    }

    #[test]
    fn different_query_keys_do_not_interoperate() {
        let root = [9u8; 32];
        let mut a = Sealer::new(true, &root, QueryId::new(1), DeviceId::new(1));
        let b = Sealer::new(true, &root, QueryId::new(2), DeviceId::new(2));
        let bytes = a.wrap(&msg());
        assert!(b.unwrap(&bytes).is_err());
    }

    #[test]
    fn rank_gate_activation() {
        let d0 = DeviceId::new(10);
        let mut gate = RankGate::new(1, vec![d0], 0.0);
        assert!(!gate.is_active());
        // Primary alive at t=5: no activation at t=10 with timeout 8.
        gate.saw(d0, 5.0);
        assert!(!gate.evaluate(10.0, 8.0));
        // Silence past the timeout activates (edge-triggered once).
        assert!(gate.evaluate(14.0, 8.0));
        assert!(gate.is_active());
        assert!(!gate.evaluate(20.0, 8.0), "activation fires once");
    }

    #[test]
    fn rank_zero_starts_active() {
        let mut gate = RankGate::new(0, vec![], 0.0);
        assert!(gate.is_active());
        assert!(!gate.evaluate(100.0, 1.0));
    }

    #[test]
    fn force_active() {
        let mut gate = RankGate::new(1, vec![DeviceId::new(1)], 0.0);
        gate.force_active();
        assert!(gate.is_active());
    }
}
