//! The Data Contributor actor: answers contribution requests from its
//! owner's personal store.

use crate::ledger::SharedLedger;
use crate::messages::Msg;
use crate::roles::Sealer;
use edgelet_sim::{Actor, Context};
use edgelet_store::DataStore;
use edgelet_util::ids::{DeviceId, QueryId};

/// Actor holding one individual's data store.
pub struct ContributorActor {
    query: QueryId,
    store: DataStore,
    sealer: Sealer,
    ledger: SharedLedger,
    /// Upper bound on rows contributed per request (the owner's consent
    /// may cap how much leaves the device; usually 1 record anyway).
    max_rows: usize,
}

impl ContributorActor {
    /// Creates a contributor endpoint.
    pub fn new(
        query: QueryId,
        store: DataStore,
        sealer: Sealer,
        ledger: SharedLedger,
        max_rows: usize,
    ) -> Self {
        Self {
            query,
            store,
            sealer,
            ledger,
            max_rows,
        }
    }
}

impl Actor for ContributorActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, payload: &[u8]) {
        let Ok(msg) = self.sealer.unwrap(payload) else {
            ctx.observe("corrupt_messages", 1.0);
            return;
        };
        let Msg::ContributeRequest {
            query,
            filter,
            columns,
        } = msg
        else {
            return; // contributors only serve contribution requests
        };
        if query != self.query {
            return;
        }
        let names: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
        let rows = match self.store.scan_project(&filter, &names) {
            Ok(mut rows) => {
                rows.truncate(self.max_rows);
                rows
            }
            Err(_) => Vec::new(), // schema mismatch: contribute nothing
        };
        if rows.is_empty() {
            return; // nothing matching; silence = no contribution
        }
        let reply = Msg::Contribution {
            query: self.query,
            rows,
        };
        let bytes = self.sealer.wrap(&reply);
        self.ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .host_operator(ctx.device());
        ctx.send(from, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger;
    use edgelet_sim::{DeviceConfig, Duration, NetworkModel, SimConfig, Simulation};
    use edgelet_store::synth;
    use edgelet_store::{CmpOp, Predicate, Value};
    use edgelet_util::rng::DetRng;
    use std::sync::{Arc, Mutex};

    struct Probe {
        target: DeviceId,
        request: Msg,
        sealer: Sealer,
        got: Arc<Mutex<Vec<Msg>>>,
    }
    impl Actor for Probe {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let bytes = self.sealer.wrap(&self.request);
            ctx.send(self.target, bytes);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
            self.got
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(self.sealer.unwrap(payload).unwrap());
        }
    }

    fn run_request(request: Msg, store_rows: usize) -> Vec<Msg> {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(5)),
                ..SimConfig::default()
            },
            42,
        );
        let probe_dev = sim.add_device(DeviceConfig::default());
        let contrib_dev = sim.add_device(DeviceConfig::default());
        let mut rng = DetRng::new(9);
        let store = synth::health_store(store_rows, &mut rng);
        let sealer = Sealer::new(false, &[0u8; 32], QueryId::new(1), contrib_dev);
        sim.install_actor(
            contrib_dev,
            Box::new(ContributorActor::new(
                QueryId::new(1),
                store,
                sealer,
                ledger::shared(),
                10,
            )),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        sim.install_actor(
            probe_dev,
            Box::new(Probe {
                target: contrib_dev,
                request,
                sealer: Sealer::new(false, &[0u8; 32], QueryId::new(1), probe_dev),
                got: got.clone(),
            }),
        );
        sim.run();
        let out = got.lock().unwrap_or_else(|e| e.into_inner()).clone();
        out
    }

    #[test]
    fn contributes_matching_projected_rows() {
        let got = run_request(
            Msg::ContributeRequest {
                query: QueryId::new(1),
                filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(0)),
                columns: vec!["age".into(), "gir".into()],
            },
            5,
        );
        assert_eq!(got.len(), 1);
        let Msg::Contribution { rows, .. } = &got[0] else {
            panic!("expected contribution")
        };
        assert!(!rows.is_empty() && rows.len() <= 5);
        assert!(rows.iter().all(|r| r.arity() == 2));
    }

    #[test]
    fn silent_when_nothing_matches_or_wrong_query() {
        let got = run_request(
            Msg::ContributeRequest {
                query: QueryId::new(1),
                filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(500)),
                columns: vec!["age".into()],
            },
            5,
        );
        assert!(got.is_empty());

        let got = run_request(
            Msg::ContributeRequest {
                query: QueryId::new(99),
                filter: Predicate::True,
                columns: vec!["age".into()],
            },
            5,
        );
        assert!(got.is_empty());
    }

    #[test]
    fn bad_predicate_contributes_nothing() {
        let got = run_request(
            Msg::ContributeRequest {
                query: QueryId::new(1),
                filter: Predicate::cmp("no_such_column", CmpOp::Eq, Value::Int(1)),
                columns: vec!["age".into()],
            },
            5,
        );
        assert!(got.is_empty());
    }

    #[test]
    fn max_rows_cap_applies() {
        let got = run_request(
            Msg::ContributeRequest {
                query: QueryId::new(1),
                filter: Predicate::True,
                columns: vec!["age".into()],
            },
            50,
        );
        let Msg::Contribution { rows, .. } = &got[0] else {
            panic!("expected contribution")
        };
        assert_eq!(rows.len(), 10, "cap of 10 applies");
    }
}
