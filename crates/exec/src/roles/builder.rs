//! The Snapshot Builder actor: collects one partition's share of the
//! representative snapshot and ships vertical slices to its Computers.

use crate::config::ExecConfig;
use crate::ledger::SharedLedger;
use crate::messages::Msg;
use crate::roles::{RankGate, Sealer};
use edgelet_sim::{Actor, Context, Duration, TimerToken};
use edgelet_store::{Predicate, Row, Schema};
use edgelet_tee::DeviceProfile;
use edgelet_util::ids::{DeviceId, PartitionId, QueryId};
use edgelet_util::Payload;
use std::collections::BTreeSet;

/// One vertical slice this builder must produce.
#[derive(Debug, Clone)]
pub struct SliceWiring {
    /// Vertical group index.
    pub attr_group: u32,
    /// Columns of the slice.
    pub columns: Vec<String>,
    /// Devices hosting the Computer for this slice (primary + backups).
    pub targets: Vec<DeviceId>,
}

/// Static wiring of one builder replica.
#[derive(Debug, Clone)]
pub struct BuilderWiring {
    /// Query id.
    pub query: QueryId,
    /// Partition handled.
    pub partition: PartitionId,
    /// Tuples to collect (`C / n`).
    pub quota: usize,
    /// Selection predicate contributors apply.
    pub filter: Predicate,
    /// All columns to collect (union of slice columns).
    pub columns: Vec<String>,
    /// Contributors assigned to this partition.
    pub contributors: Vec<DeviceId>,
    /// Slices to produce.
    pub slices: Vec<SliceWiring>,
    /// Host device performance profile.
    pub profile: DeviceProfile,
}

enum Phase {
    Collecting,
    Computing,
    Shipped,
}

/// The Snapshot Builder actor.
pub struct BuilderActor {
    wiring: BuilderWiring,
    config: ExecConfig,
    sealer: Sealer,
    ledger: SharedLedger,
    schema: Schema,
    gate: RankGate,
    collected: Vec<Row>,
    responded: BTreeSet<DeviceId>,
    retries_left: u32,
    phase: Phase,
    collection_timer: Option<TimerToken>,
    retry_timer: Option<TimerToken>,
    compute_timer: Option<TimerToken>,
    ping_timer: Option<TimerToken>,
    pending_output: Vec<(DeviceId, Payload)>,
}

impl BuilderActor {
    /// Creates a builder replica. `schema` is the shared database schema;
    /// `gate` carries the replica rank (rank 0 for the primary).
    pub fn new(
        wiring: BuilderWiring,
        config: ExecConfig,
        sealer: Sealer,
        ledger: SharedLedger,
        schema: Schema,
        gate: RankGate,
    ) -> Self {
        let config_retries = config.collection_retries;
        Self {
            wiring,
            config,
            sealer,
            ledger,
            schema,
            gate,
            collected: Vec::new(),
            responded: BTreeSet::new(),
            retries_left: config_retries,
            phase: Phase::Collecting,
            collection_timer: None,
            retry_timer: None,
            compute_timer: None,
            ping_timer: None,
            pending_output: Vec::new(),
        }
    }

    /// Sub-schema of the collected rows (columns in collection order).
    fn collected_schema(&self) -> Schema {
        let names: Vec<&str> = self.wiring.columns.iter().map(|s| s.as_str()).collect();
        self.schema
            .project(&names)
            // lint: allow(E104 wiring columns are validated by the plan preflight)
            .expect("wiring columns validated at plan time")
    }

    fn finish_collection(&mut self, ctx: &mut Context<'_>) {
        self.phase = Phase::Computing;
        if let Some(t) = self.collection_timer.take() {
            ctx.cancel_timer(t);
        }
        if let Some(t) = self.retry_timer.take() {
            ctx.cancel_timer(t);
        }
        self.ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .raw_tuples(ctx.device(), self.collected.len() as u64);
        if self.config.charge_compute_time {
            let secs = self.wiring.profile.compute_seconds(self.collected.len());
            self.compute_timer = Some(ctx.set_timer(Duration::from_secs_f64(secs)));
        } else {
            self.ship(ctx);
        }
    }

    fn ship(&mut self, ctx: &mut Context<'_>) {
        self.phase = Phase::Shipped;
        let complete = self.collected.len() >= self.wiring.quota;
        let sub_schema = self.collected_schema();
        ctx.observe(
            "partition_fill",
            self.collected.len() as f64 / self.wiring.quota.max(1) as f64,
        );
        let slices = self.wiring.slices.clone();
        for slice in &slices {
            let names: Vec<&str> = slice.columns.iter().map(|s| s.as_str()).collect();
            let rows: Vec<Row> = self
                .collected
                .iter()
                .map(|r| {
                    r.project(&sub_schema, &names)
                        // lint: allow(E104 slices are planned as subsets of the collected columns)
                        .expect("slice columns are a subset of collected columns")
                })
                .collect();
            let msg = Msg::PartitionData {
                query: self.wiring.query,
                partition: self.wiring.partition,
                attr_group: slice.attr_group,
                columns: slice.columns.clone(),
                rows,
                complete,
            };
            let bytes = self.sealer.wrap(&msg);
            for &target in &slice.targets {
                if self.gate.is_active() {
                    ctx.send(target, bytes.share());
                } else {
                    self.pending_output.push((target, bytes.share()));
                }
            }
        }
    }

    fn flush_pending(&mut self, ctx: &mut Context<'_>) {
        for (target, bytes) in std::mem::take(&mut self.pending_output) {
            ctx.send(target, bytes);
        }
    }

    /// Interval between contribution-request rounds.
    fn retry_interval(&self) -> Duration {
        Duration::from_secs_f64(
            self.config.collection_timeout.as_secs_f64()
                / (f64::from(self.config.collection_retries) + 1.0),
        )
    }

    fn request_contributions(&mut self, ctx: &mut Context<'_>, targets: Vec<DeviceId>) {
        if targets.is_empty() {
            return;
        }
        let request = Msg::ContributeRequest {
            query: self.wiring.query,
            filter: self.wiring.filter.clone(),
            columns: self.wiring.columns.clone(),
        };
        let bytes = self.sealer.wrap(&request);
        ctx.broadcast(targets, bytes);
    }

    fn arm_ping(&mut self, ctx: &mut Context<'_>) {
        // Backups monitor lower ranks until they either take over (and
        // have flushed) or the query deadline passes; actives never ping.
        let done = self.gate.is_active()
            && matches!(self.phase, Phase::Shipped)
            && self.pending_output.is_empty();
        let past_deadline = ctx.now().as_secs_f64() >= self.config.query_deadline.as_secs_f64();
        if self.gate.rank > 0 && !done && !past_deadline {
            self.ping_timer = Some(ctx.set_timer(self.config.ping_period));
        }
    }
}

impl Actor for BuilderActor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .host_operator(ctx.device());
        let contributors = self.wiring.contributors.clone();
        self.request_contributions(ctx, contributors);
        self.collection_timer = Some(ctx.set_timer(self.config.collection_timeout));
        if self.retries_left > 0 {
            self.retry_timer = Some(ctx.set_timer(self.retry_interval()));
        }
        self.arm_ping(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, payload: &[u8]) {
        let Ok(msg) = self.sealer.unwrap(payload) else {
            ctx.observe("corrupt_messages", 1.0);
            return;
        };
        match msg {
            Msg::Contribution { query, rows } if query == self.wiring.query => {
                if !matches!(self.phase, Phase::Collecting) {
                    return; // late contribution; snapshot already built
                }
                if !self.responded.insert(from) {
                    return; // duplicate answer (a retry round crossed it)
                }
                let room = self.wiring.quota.saturating_sub(self.collected.len());
                self.collected.extend(rows.into_iter().take(room));
                if self.collected.len() >= self.wiring.quota {
                    self.finish_collection(ctx);
                }
            }
            Msg::Ping { query, .. } if query == self.wiring.query => {
                let pong = Msg::Pong {
                    query,
                    from_rank: self.gate.rank,
                };
                let bytes = self.sealer.wrap(&pong);
                ctx.send(from, bytes);
            }
            Msg::Pong { query, .. } if query == self.wiring.query => {
                self.gate.saw(from, ctx.now().as_secs_f64());
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if Some(token) == self.collection_timer {
            self.collection_timer = None;
            if matches!(self.phase, Phase::Collecting) {
                self.finish_collection(ctx);
            }
        } else if Some(token) == self.retry_timer {
            self.retry_timer = None;
            if matches!(self.phase, Phase::Collecting)
                && self.retries_left > 0
                && self.collected.len() < self.wiring.quota
            {
                self.retries_left -= 1;
                ctx.observe("collection_retries", 1.0);
                let silent: Vec<DeviceId> = self
                    .wiring
                    .contributors
                    .iter()
                    .copied()
                    .filter(|d| !self.responded.contains(d))
                    .collect();
                self.request_contributions(ctx, silent);
                if self.retries_left > 0 {
                    self.retry_timer = Some(ctx.set_timer(self.retry_interval()));
                }
            }
        } else if Some(token) == self.compute_timer {
            self.compute_timer = None;
            self.ship(ctx);
        } else if Some(token) == self.ping_timer {
            // Probe lower ranks and re-evaluate activation.
            let ping = Msg::Ping {
                query: self.wiring.query,
                from_rank: self.gate.rank,
            };
            let bytes = self.sealer.wrap(&ping);
            ctx.broadcast(self.gate.lower.clone(), bytes);
            if self.gate.evaluate(
                ctx.now().as_secs_f64(),
                self.config.suspect_timeout.as_secs_f64(),
            ) {
                ctx.observe("backup_takeovers", 1.0);
                self.flush_pending(ctx);
            }
            self.arm_ping(ctx);
        }
    }
}
