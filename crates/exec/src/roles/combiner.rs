//! The Computing Combiner actor (and its Active Backup).
//!
//! Buffers Computer outputs per partition, finalizes as soon as `n`
//! *complete* partitions are usable — or at the combine timeout with the
//! best partitions it has — and reports to the Querier. Under
//! Overcollection the Active Backup replica runs the identical logic in
//! parallel (§2.2); the Querier keeps the first result. Under Backup the
//! replicas are rank-gated like every other operator.

use crate::config::ExecConfig;
use crate::ledger::SharedLedger;
use crate::messages::{Msg, OutcomePayload};
use crate::roles::{RankGate, Sealer};
use edgelet_ml::distributed::CentroidSet;
use edgelet_ml::grouping::GroupedPartial;
use edgelet_sim::{Actor, Context, TimerToken};
use edgelet_util::ids::{DeviceId, PartitionId, QueryId};
use edgelet_util::Payload;
use edgelet_wire::to_bytes;
use std::collections::{BTreeMap, BTreeSet};

/// Which kind of partials this combiner merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinerMode {
    /// Grouping-Sets partials across `attr_groups` vertical slices.
    Grouping {
        /// Number of vertical groups per partition.
        attr_groups: u32,
    },
    /// K-Means knowledge.
    KMeans,
}

/// Static wiring of one combiner replica.
#[derive(Debug, Clone)]
pub struct CombinerWiring {
    /// Query id.
    pub query: QueryId,
    /// Minimum partitions for a valid result.
    pub n: u64,
    /// Mode.
    pub mode: CombinerMode,
    /// The Querier device.
    pub querier: DeviceId,
    /// This replica's index (0 = primary, 1 = Active Backup, ...).
    pub replica: u32,
}

#[derive(Debug, Default, Clone)]
struct GroupingPartition {
    slices: BTreeMap<u32, (GroupedPartial, bool)>,
}

#[derive(Debug, Clone)]
struct KMeansPartition {
    seed_origin: PartitionId,
    centroids: CentroidSet,
    per_cluster: GroupedPartial,
    complete: bool,
}

/// The Computing Combiner actor.
pub struct CombinerActor {
    wiring: CombinerWiring,
    config: ExecConfig,
    sealer: Sealer,
    ledger: SharedLedger,
    gate: RankGate,
    grouping_buf: BTreeMap<PartitionId, GroupingPartition>,
    kmeans_buf: BTreeMap<PartitionId, KMeansPartition>,
    /// Partial-result slots already accepted, keyed by
    /// (partition, attr_group, sender). A duplicated or replayed partial
    /// must be merged — and ledger-charged — at most once per slot.
    seen_partials: BTreeSet<(PartitionId, u32, DeviceId)>,
    combine_timer: Option<TimerToken>,
    ping_timer: Option<TimerToken>,
    finalized: bool,
    pending_output: Option<Payload>,
}

impl CombinerActor {
    /// Creates a combiner replica.
    pub fn new(
        wiring: CombinerWiring,
        config: ExecConfig,
        sealer: Sealer,
        ledger: SharedLedger,
        gate: RankGate,
    ) -> Self {
        Self {
            wiring,
            config,
            sealer,
            ledger,
            gate,
            grouping_buf: BTreeMap::new(),
            kmeans_buf: BTreeMap::new(),
            seen_partials: BTreeSet::new(),
            combine_timer: None,
            ping_timer: None,
            finalized: false,
            pending_output: None,
        }
    }

    /// Partitions ready to merge, as `(partition, complete)` sorted by
    /// (complete desc, id asc).
    fn ready_partitions(&self) -> Vec<(PartitionId, bool)> {
        let mut out: Vec<(PartitionId, bool)> = match self.wiring.mode {
            CombinerMode::Grouping { attr_groups } => self
                .grouping_buf
                .iter()
                .filter(|(_, p)| p.slices.len() as u32 == attr_groups)
                .map(|(id, p)| (*id, p.slices.values().all(|(_, c)| *c)))
                .collect(),
            CombinerMode::KMeans => self
                .kmeans_buf
                .iter()
                .map(|(id, p)| (*id, p.complete))
                .collect(),
        };
        out.sort_by_key(|(id, complete)| (!complete, *id));
        out
    }

    fn try_early_finalize(&mut self, ctx: &mut Context<'_>) {
        if self.finalized {
            return;
        }
        let complete_ready = self.ready_partitions().iter().filter(|(_, c)| *c).count() as u64;
        if complete_ready >= self.wiring.n {
            self.finalize(ctx);
        }
    }

    fn finalize(&mut self, ctx: &mut Context<'_>) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        if let Some(t) = self.combine_timer.take() {
            ctx.cancel_timer(t);
        }
        let chosen: Vec<(PartitionId, bool)> = self
            .ready_partitions()
            .into_iter()
            .take(self.wiring.n as usize)
            .collect();
        if chosen.is_empty() {
            ctx.observe("combiner_empty_finalize", 1.0);
            return;
        }
        let payload = match self.wiring.mode {
            CombinerMode::Grouping { attr_groups } => {
                let mut merged: Vec<(u32, GroupedPartial)> = (0..attr_groups)
                    .map(|g| (g, GroupedPartial::default()))
                    .collect();
                for (pid, _) in &chosen {
                    let part = &self.grouping_buf[pid];
                    for (g, (partial, _)) in &part.slices {
                        // Merge failures cannot occur across well-formed
                        // partials of one query; guard anyway.
                        let _ = merged[*g as usize].1.merge(partial);
                    }
                }
                OutcomePayload::Grouping(merged)
            }
            CombinerMode::KMeans => {
                // Majority seed origin wins (ties: lowest origin).
                let mut counts: BTreeMap<PartitionId, usize> = BTreeMap::new();
                for (pid, _) in &chosen {
                    *counts.entry(self.kmeans_buf[pid].seed_origin).or_default() += 1;
                }
                let best_origin = counts
                    .iter()
                    .max_by_key(|(origin, count)| (**count, std::cmp::Reverse(**origin)))
                    .map(|(o, _)| *o)
                    // lint: allow(E104 combine fires only once a quorum of partials arrived)
                    .expect("chosen non-empty");
                let mut merged_centroids: Option<CentroidSet> = None;
                let mut merged_clusters = GroupedPartial::default();
                let mut used = 0u64;
                for (pid, _) in &chosen {
                    let part = &self.kmeans_buf[pid];
                    if part.seed_origin != best_origin {
                        continue;
                    }
                    used += 1;
                    let _ = merged_clusters.merge(&part.per_cluster);
                    merged_centroids = Some(match merged_centroids.take() {
                        None => part.centroids.clone(),
                        Some(mut acc) => {
                            let _ = acc.merge(&part.centroids);
                            acc
                        }
                    });
                }
                ctx.observe("kmeans_aligned_partitions", used as f64);
                OutcomePayload::KMeans {
                    // lint: allow(E104 the majority origin has at least one member by construction)
                    centroids: merged_centroids.expect("at least one aligned partition"),
                    per_cluster: merged_clusters,
                }
            }
        };

        let complete_count = chosen.iter().filter(|(_, c)| *c).count() as u64;
        let msg = Msg::FinalResult {
            query: self.wiring.query,
            payload: to_bytes(&payload),
            partitions_merged: chosen.len() as u64,
            partitions_complete: complete_count,
            replica: self.wiring.replica,
        };
        let bytes = self.sealer.wrap(&msg);
        if self.gate.is_active() {
            ctx.send(self.wiring.querier, bytes);
        } else {
            self.pending_output = Some(bytes);
        }
    }

    fn arm_ping(&mut self, ctx: &mut Context<'_>) {
        let done = self.gate.is_active() && self.finalized && self.pending_output.is_none();
        let past_deadline = ctx.now().as_secs_f64() >= self.config.query_deadline.as_secs_f64();
        if self.gate.rank > 0 && !done && !past_deadline {
            self.ping_timer = Some(ctx.set_timer(self.config.ping_period));
        }
    }
}

impl Actor for CombinerActor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .host_operator(ctx.device());
        self.combine_timer = Some(ctx.set_timer(self.config.combine_timeout));
        self.arm_ping(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, payload: &[u8]) {
        let Ok(msg) = self.sealer.unwrap(payload) else {
            ctx.observe("corrupt_messages", 1.0);
            return;
        };
        match msg {
            Msg::GroupingPartial {
                query,
                partition,
                attr_group,
                partial,
                complete,
                ..
            } if query == self.wiring.query => {
                if self.finalized {
                    return;
                }
                if !self.seen_partials.insert((partition, attr_group, from)) {
                    ctx.observe("duplicate_partials", 1.0);
                    return;
                }
                self.ledger
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .aggregates(ctx.device(), 1);
                self.grouping_buf
                    .entry(partition)
                    .or_default()
                    .slices
                    .entry(attr_group)
                    .or_insert((partial, complete));
                self.try_early_finalize(ctx);
            }
            Msg::KMeansFinal {
                query,
                partition,
                seed_origin,
                centroids,
                per_cluster,
                complete,
                ..
            } if query == self.wiring.query => {
                if self.finalized {
                    return;
                }
                if !self.seen_partials.insert((partition, 0, from)) {
                    ctx.observe("duplicate_partials", 1.0);
                    return;
                }
                self.ledger
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .aggregates(ctx.device(), 1);
                self.kmeans_buf.entry(partition).or_insert(KMeansPartition {
                    seed_origin,
                    centroids,
                    per_cluster,
                    complete,
                });
                self.try_early_finalize(ctx);
            }
            Msg::Ping { query, .. } if query == self.wiring.query => {
                let pong = Msg::Pong {
                    query,
                    from_rank: self.gate.rank,
                };
                let bytes = self.sealer.wrap(&pong);
                ctx.send(from, bytes);
            }
            Msg::Pong { query, .. } if query == self.wiring.query => {
                self.gate.saw(from, ctx.now().as_secs_f64());
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if Some(token) == self.combine_timer {
            self.combine_timer = None;
            self.finalize(ctx);
        } else if Some(token) == self.ping_timer {
            let ping = Msg::Ping {
                query: self.wiring.query,
                from_rank: self.gate.rank,
            };
            let bytes = self.sealer.wrap(&ping);
            ctx.broadcast(self.gate.lower.clone(), bytes);
            if self.gate.evaluate(
                ctx.now().as_secs_f64(),
                self.config.suspect_timeout.as_secs_f64(),
            ) {
                ctx.observe("backup_takeovers", 1.0);
                if let Some(bytes) = self.pending_output.take() {
                    ctx.send(self.wiring.querier, bytes);
                }
            }
            self.arm_ping(ctx);
        }
    }
}
