//! The inter-operator wire protocol.
//!
//! Every message is wire-encoded ([`edgelet_wire`]) and wrapped in a
//! [`Frame`] whose kind tag identifies the variant; optionally the frame
//! payload is sealed with ChaCha20-Poly1305 under a query-scoped key (the
//! paper's "only aggregated, encrypted data travels between operators").

use edgelet_ml::distributed::CentroidSet;
use edgelet_ml::grouping::GroupedPartial;
use edgelet_store::{Predicate, Row};
use edgelet_util::ids::{PartitionId, QueryId};
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Frame, Reader, Writer};

/// Frame kind tags.
pub mod kind {
    /// Builder → contributor: request data.
    pub const CONTRIBUTE_REQUEST: u16 = 1;
    /// Contributor → builder: rows.
    pub const CONTRIBUTION: u16 = 2;
    /// Builder → computer: a partition slice.
    pub const PARTITION_DATA: u16 = 3;
    /// Computer → combiner: grouping partial.
    pub const GROUPING_PARTIAL: u16 = 4;
    /// Computer ↔ computer: K-Means knowledge broadcast.
    pub const KNOWLEDGE: u16 = 5;
    /// Computer → combiner: final K-Means knowledge + per-cluster partial.
    pub const KMEANS_FINAL: u16 = 6;
    /// Combiner → querier: final result.
    pub const FINAL_RESULT: u16 = 7;
    /// Replica liveness probe.
    pub const PING: u16 = 8;
    /// Liveness reply.
    pub const PONG: u16 = 9;
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Builder asks a contributor for its matching rows.
    ContributeRequest {
        /// Query id.
        query: QueryId,
        /// Selection predicate the contributor applies locally.
        filter: Predicate,
        /// Columns to return (the query's referenced columns only).
        columns: Vec<String>,
    },
    /// Contributor returns its matching (projected) rows.
    Contribution {
        /// Query id.
        query: QueryId,
        /// Projected rows.
        rows: Vec<Row>,
    },
    /// Builder ships one attribute-group slice of its partition.
    PartitionData {
        /// Query id.
        query: QueryId,
        /// Partition index.
        partition: PartitionId,
        /// Vertical group index.
        attr_group: u32,
        /// Column names of the slice, in row order.
        columns: Vec<String>,
        /// The rows (projected onto `columns`).
        rows: Vec<Row>,
        /// Whether the partition met its cardinality quota.
        complete: bool,
    },
    /// Computer sends its grouping partial to a combiner.
    GroupingPartial {
        /// Query id.
        query: QueryId,
        /// Partition index.
        partition: PartitionId,
        /// Vertical group index.
        attr_group: u32,
        /// The mergeable partial.
        partial: GroupedPartial,
        /// Tuples that backed the partial.
        tuples: u64,
        /// Whether the source partition met its quota.
        complete: bool,
    },
    /// K-Means knowledge broadcast between computers.
    Knowledge {
        /// Query id.
        query: QueryId,
        /// Sender's partition.
        partition: PartitionId,
        /// Heartbeat round.
        round: u32,
        /// Partition id whose seed proposal these centroids derive from
        /// (the alignment origin).
        seed_origin: PartitionId,
        /// The knowledge.
        centroids: CentroidSet,
    },
    /// Computer's final knowledge for the combiner.
    KMeansFinal {
        /// Query id.
        query: QueryId,
        /// Partition.
        partition: PartitionId,
        /// Seed-proposal origin the centroids are aligned to.
        seed_origin: PartitionId,
        /// Final centroids.
        centroids: CentroidSet,
        /// Per-cluster aggregates over the local partition.
        per_cluster: GroupedPartial,
        /// Tuples that backed the knowledge.
        tuples: u64,
        /// Whether the partition met its quota.
        complete: bool,
    },
    /// Combiner delivers the result to the querier.
    FinalResult {
        /// Query id.
        query: QueryId,
        /// Serialized outcome (see driver::QueryOutcome wire form).
        payload: Vec<u8>,
        /// Partitions merged into the result.
        partitions_merged: u64,
        /// Of which complete (met quota).
        partitions_complete: u64,
        /// Combiner replica that produced it.
        replica: u32,
    },
    /// Replica liveness probe (Backup strategy).
    Ping {
        /// Query id.
        query: QueryId,
        /// Prober's replica rank.
        from_rank: u32,
    },
    /// Liveness reply.
    Pong {
        /// Query id.
        query: QueryId,
        /// Responder's replica rank.
        from_rank: u32,
    },
}

impl Msg {
    /// Frame kind tag for this message.
    pub fn kind(&self) -> u16 {
        match self {
            Msg::ContributeRequest { .. } => kind::CONTRIBUTE_REQUEST,
            Msg::Contribution { .. } => kind::CONTRIBUTION,
            Msg::PartitionData { .. } => kind::PARTITION_DATA,
            Msg::GroupingPartial { .. } => kind::GROUPING_PARTIAL,
            Msg::Knowledge { .. } => kind::KNOWLEDGE,
            Msg::KMeansFinal { .. } => kind::KMEANS_FINAL,
            Msg::FinalResult { .. } => kind::FINAL_RESULT,
            Msg::Ping { .. } => kind::PING,
            Msg::Pong { .. } => kind::PONG,
        }
    }

    /// Encodes into a frame (optionally sealed by the caller afterwards).
    pub fn to_frame(&self) -> Frame {
        Frame::new(self.kind(), self)
    }

    /// Decodes from a frame.
    pub fn from_frame(frame: &Frame) -> Result<Msg> {
        let msg: Msg = frame.open()?;
        if msg.kind() != frame.kind {
            return Err(Error::Decode(format!(
                "frame kind {} does not match payload kind {}",
                frame.kind,
                msg.kind()
            )));
        }
        Ok(msg)
    }
}

/// Classifies a sealed on-the-wire payload (as produced by
/// [`crate::roles::Sealer::wrap`]) into its protocol [`kind`], without
/// decoding the body.
///
/// Plaintext-mode payloads (`0x00 || frame`) expose the kind in the
/// frame header; encrypted payloads (`0x01 || …`) are opaque and
/// classify as `None` — which is exactly the visibility an on-path
/// adversary has, so protocol-position fault rules share it. Intended as
/// the simulator's pluggable classifier
/// ([`edgelet_sim::Simulation::set_classifier`]).
pub fn classify_payload(bytes: &[u8]) -> Option<u16> {
    match bytes.split_first() {
        Some((0x00, frame)) => Frame::from_wire(frame).ok().map(|f| f.kind),
        _ => None,
    }
}

impl Encode for Msg {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(u64::from(self.kind()));
        match self {
            Msg::ContributeRequest {
                query,
                filter,
                columns,
            } => {
                query.encode(w);
                filter.encode(w);
                columns.encode(w);
            }
            Msg::Contribution { query, rows } => {
                query.encode(w);
                rows.encode(w);
            }
            Msg::PartitionData {
                query,
                partition,
                attr_group,
                columns,
                rows,
                complete,
            } => {
                query.encode(w);
                partition.encode(w);
                attr_group.encode(w);
                columns.encode(w);
                rows.encode(w);
                complete.encode(w);
            }
            Msg::GroupingPartial {
                query,
                partition,
                attr_group,
                partial,
                tuples,
                complete,
            } => {
                query.encode(w);
                partition.encode(w);
                attr_group.encode(w);
                partial.encode(w);
                tuples.encode(w);
                complete.encode(w);
            }
            Msg::Knowledge {
                query,
                partition,
                round,
                seed_origin,
                centroids,
            } => {
                query.encode(w);
                partition.encode(w);
                round.encode(w);
                seed_origin.encode(w);
                centroids.encode(w);
            }
            Msg::KMeansFinal {
                query,
                partition,
                seed_origin,
                centroids,
                per_cluster,
                tuples,
                complete,
            } => {
                query.encode(w);
                partition.encode(w);
                seed_origin.encode(w);
                centroids.encode(w);
                per_cluster.encode(w);
                tuples.encode(w);
                complete.encode(w);
            }
            Msg::FinalResult {
                query,
                payload,
                partitions_merged,
                partitions_complete,
                replica,
            } => {
                query.encode(w);
                w.put_bytes(payload);
                partitions_merged.encode(w);
                partitions_complete.encode(w);
                replica.encode(w);
            }
            Msg::Ping { query, from_rank } | Msg::Pong { query, from_rank } => {
                query.encode(w);
                from_rank.encode(w);
            }
        }
    }
}

impl Decode for Msg {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let tag = u16::try_from(r.varint()?)
            .map_err(|_| Error::Decode("message tag out of range".into()))?;
        Ok(match tag {
            kind::CONTRIBUTE_REQUEST => Msg::ContributeRequest {
                query: Decode::decode(r)?,
                filter: Decode::decode(r)?,
                columns: Decode::decode(r)?,
            },
            kind::CONTRIBUTION => Msg::Contribution {
                query: Decode::decode(r)?,
                rows: Decode::decode(r)?,
            },
            kind::PARTITION_DATA => Msg::PartitionData {
                query: Decode::decode(r)?,
                partition: Decode::decode(r)?,
                attr_group: Decode::decode(r)?,
                columns: Decode::decode(r)?,
                rows: Decode::decode(r)?,
                complete: Decode::decode(r)?,
            },
            kind::GROUPING_PARTIAL => Msg::GroupingPartial {
                query: Decode::decode(r)?,
                partition: Decode::decode(r)?,
                attr_group: Decode::decode(r)?,
                partial: Decode::decode(r)?,
                tuples: Decode::decode(r)?,
                complete: Decode::decode(r)?,
            },
            kind::KNOWLEDGE => Msg::Knowledge {
                query: Decode::decode(r)?,
                partition: Decode::decode(r)?,
                round: Decode::decode(r)?,
                seed_origin: Decode::decode(r)?,
                centroids: Decode::decode(r)?,
            },
            kind::KMEANS_FINAL => Msg::KMeansFinal {
                query: Decode::decode(r)?,
                partition: Decode::decode(r)?,
                seed_origin: Decode::decode(r)?,
                centroids: Decode::decode(r)?,
                per_cluster: Decode::decode(r)?,
                tuples: Decode::decode(r)?,
                complete: Decode::decode(r)?,
            },
            kind::FINAL_RESULT => Msg::FinalResult {
                query: Decode::decode(r)?,
                payload: r.bytes()?.to_vec(),
                partitions_merged: Decode::decode(r)?,
                partitions_complete: Decode::decode(r)?,
                replica: Decode::decode(r)?,
            },
            kind::PING => Msg::Ping {
                query: Decode::decode(r)?,
                from_rank: Decode::decode(r)?,
            },
            kind::PONG => Msg::Pong {
                query: Decode::decode(r)?,
                from_rank: Decode::decode(r)?,
            },
            other => return Err(Error::Decode(format!("unknown message tag {other}"))),
        })
    }
}

/// The decoded content of a [`Msg::FinalResult`] payload.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomePayload {
    /// Grouping-Sets: merged partial per vertical attribute group.
    Grouping(Vec<(u32, GroupedPartial)>),
    /// K-Means: combined knowledge and per-cluster aggregates.
    KMeans {
        /// Combined centroids.
        centroids: CentroidSet,
        /// Merged per-cluster aggregates (grouped by cluster id).
        per_cluster: GroupedPartial,
    },
}

impl Encode for OutcomePayload {
    fn encode(&self, w: &mut Writer) {
        match self {
            OutcomePayload::Grouping(groups) => {
                w.put_varint(0);
                groups.encode(w);
            }
            OutcomePayload::KMeans {
                centroids,
                per_cluster,
            } => {
                w.put_varint(1);
                centroids.encode(w);
                per_cluster.encode(w);
            }
        }
    }
}

impl Decode for OutcomePayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.varint()? {
            0 => Ok(OutcomePayload::Grouping(Decode::decode(r)?)),
            1 => Ok(OutcomePayload::KMeans {
                centroids: Decode::decode(r)?,
                per_cluster: Decode::decode(r)?,
            }),
            other => Err(Error::Decode(format!("invalid outcome tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_ml::Matrix;
    use edgelet_store::{CmpOp, Value};
    use edgelet_wire::{from_bytes, to_bytes};

    fn sample_messages() -> Vec<Msg> {
        vec![
            Msg::ContributeRequest {
                query: QueryId::new(1),
                filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
                columns: vec!["age".into(), "bmi".into()],
            },
            Msg::Contribution {
                query: QueryId::new(1),
                rows: vec![Row::new(vec![Value::Int(70), Value::Float(25.0)])],
            },
            Msg::PartitionData {
                query: QueryId::new(1),
                partition: PartitionId::new(2),
                attr_group: 1,
                columns: vec!["bmi".into()],
                rows: vec![Row::new(vec![Value::Float(25.0)])],
                complete: true,
            },
            Msg::GroupingPartial {
                query: QueryId::new(1),
                partition: PartitionId::new(2),
                attr_group: 0,
                partial: GroupedPartial::default(),
                tuples: 500,
                complete: false,
            },
            Msg::Knowledge {
                query: QueryId::new(1),
                partition: PartitionId::new(0),
                round: 3,
                seed_origin: PartitionId::new(0),
                centroids: CentroidSet::new(Matrix::from_rows(&[vec![1.0, 2.0]]), vec![10.0])
                    .unwrap(),
            },
            Msg::KMeansFinal {
                query: QueryId::new(1),
                partition: PartitionId::new(1),
                seed_origin: PartitionId::new(0),
                centroids: CentroidSet::new(Matrix::from_rows(&[vec![0.5]]), vec![3.0]).unwrap(),
                per_cluster: GroupedPartial::default(),
                tuples: 100,
                complete: true,
            },
            Msg::FinalResult {
                query: QueryId::new(1),
                payload: vec![1, 2, 3],
                partitions_merged: 4,
                partitions_complete: 4,
                replica: 0,
            },
            Msg::Ping {
                query: QueryId::new(1),
                from_rank: 2,
            },
            Msg::Pong {
                query: QueryId::new(1),
                from_rank: 0,
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for msg in sample_messages() {
            let bytes = to_bytes(&msg);
            let back: Msg = from_bytes(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn frame_roundtrip_and_kind_consistency() {
        for msg in sample_messages() {
            let frame = msg.to_frame();
            assert_eq!(frame.kind, msg.kind());
            let wire = frame.to_wire();
            let parsed = Frame::from_wire(&wire).unwrap();
            assert_eq!(Msg::from_frame(&parsed).unwrap(), msg);
        }
    }

    #[test]
    fn kind_mismatch_detected() {
        let msg = Msg::Ping {
            query: QueryId::new(1),
            from_rank: 0,
        };
        let bogus = Frame::new(kind::PONG, &msg);
        assert!(Msg::from_frame(&bogus).is_err());
    }

    #[test]
    fn outcome_payload_roundtrip() {
        for p in [
            OutcomePayload::Grouping(vec![(0, GroupedPartial::default())]),
            OutcomePayload::KMeans {
                centroids: CentroidSet::new(Matrix::from_rows(&[vec![1.0]]), vec![2.0]).unwrap(),
                per_cluster: GroupedPartial::default(),
            },
        ] {
            let back: OutcomePayload = from_bytes(&to_bytes(&p)).unwrap();
            assert_eq!(back, p);
        }
        assert!(from_bytes::<OutcomePayload>(&to_bytes(&9u64)).is_err());
    }

    #[test]
    fn corrupted_frame_rejected() {
        let msg = Msg::Contribution {
            query: QueryId::new(1),
            rows: vec![Row::new(vec![Value::Int(5)])],
        };
        let mut wire = msg.to_frame().to_wire();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x10;
        assert!(Frame::from_wire(&wire).is_err());
    }
}
