//! Distributed execution of Edgelet query plans over the simulator.
//!
//! This crate turns a [`edgelet_query::QueryPlan`] into protocol actors
//! installed on simulated devices, runs the three phases of §3.2
//! (collection → computation → combination), and reports what the demo
//! platform visualizes: completion, validity, accuracy, message costs and
//! the crowd-liability spread.
//!
//! * [`messages`] — the wire protocol between operators;
//! * [`config`] — execution knobs (timeouts, heartbeat period, channel
//!   encryption);
//! * [`ledger`] — crowd-liability accounting;
//! * [`roles`] — one actor per operator role: Data Contributor, Snapshot
//!   Builder, Computer (grouping and K-Means variants), Computing Combiner
//!   (+ Active Backup), Querier;
//! * [`centralized`] — the reference executor used for validity checks;
//! * [`driver`] — wiring, execution, and the [`driver::ExecutionReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod config;
pub mod driver;
pub mod ledger;
pub mod messages;
pub mod roles;

pub use config::ExecConfig;
pub use driver::{
    assemble_plan, execute_plan, finish_report, ExecutionReport, PlanAssembly, QueryOutcome,
};
pub use ledger::Ledger;
