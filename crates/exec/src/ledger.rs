//! Crowd-liability accounting.
//!
//! Edgelet computing's third property shifts processing liability from a
//! single data controller to the crowd: every participant does a bounded,
//! comparable share. The ledger records, per device, what it hosted and
//! how much raw data it saw, so experiments can verify the spread.

use edgelet_util::ids::DeviceId;
use edgelet_wire::{Decode, Encode, Reader, Writer};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One device's liability record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiabilityEntry {
    /// Operator instances hosted (primary or activated backup).
    pub operators_hosted: u32,
    /// Raw (pre-aggregation) tuples processed in cleartext.
    pub raw_tuples_seen: u64,
    /// Aggregated records processed (partials, knowledge).
    pub aggregates_seen: u64,
}

/// The crowd-liability ledger for one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    entries: BTreeMap<DeviceId, LiabilityEntry>,
}

/// Shared handle actors use to record liability while the simulation runs.
/// A `Mutex` (not `RefCell`) because the sharded engine may run actors on
/// worker threads; contention is nil — devices touch it once per message.
pub type SharedLedger = Arc<Mutex<Ledger>>;

/// Creates a fresh shared ledger.
pub fn shared() -> SharedLedger {
    Arc::new(Mutex::new(Ledger::default()))
}

impl Ledger {
    /// Records an operator hosted on a device.
    pub fn host_operator(&mut self, device: DeviceId) {
        self.entries.entry(device).or_default().operators_hosted += 1;
    }

    /// Records raw tuples processed on a device.
    pub fn raw_tuples(&mut self, device: DeviceId, tuples: u64) {
        self.entries.entry(device).or_default().raw_tuples_seen += tuples;
    }

    /// Records aggregated records processed on a device.
    pub fn aggregates(&mut self, device: DeviceId, records: u64) {
        self.entries.entry(device).or_default().aggregates_seen += records;
    }

    /// All entries.
    pub fn entries(&self) -> &BTreeMap<DeviceId, LiabilityEntry> {
        &self.entries
    }

    /// Folds another ledger's balances into this one (the durable
    /// service accumulates per-query ledgers into a crowd-lifetime
    /// ledger this way; see `docs/STORAGE.md`).
    pub fn merge(&mut self, other: &Ledger) {
        for (device, e) in &other.entries {
            let mine = self.entries.entry(*device).or_default();
            mine.operators_hosted += e.operators_hosted;
            mine.raw_tuples_seen += e.raw_tuples_seen;
            mine.aggregates_seen += e.aggregates_seen;
        }
    }

    /// Largest number of raw tuples any single device saw.
    pub fn max_raw_tuples(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.raw_tuples_seen)
            .max()
            .unwrap_or(0)
    }

    /// Largest operator count any single device hosted.
    pub fn max_operators(&self) -> u32 {
        self.entries
            .values()
            .map(|e| e.operators_hosted)
            .max()
            .unwrap_or(0)
    }

    /// Gini coefficient of the raw-tuple distribution over participating
    /// devices (0 = perfectly even liability, →1 = concentrated).
    pub fn raw_tuple_gini(&self) -> f64 {
        let xs: Vec<f64> = self
            .entries
            .values()
            .map(|e| e.raw_tuples_seen as f64)
            .collect();
        Self::gini(xs)
    }

    /// Gini coefficient restricted to devices that processed raw data —
    /// the Data Processors among whom the paper wants liability spread
    /// evenly (contributors only ever touch their own record).
    pub fn processor_gini(&self) -> f64 {
        let xs: Vec<f64> = self
            .entries
            .values()
            .filter(|e| e.raw_tuples_seen > 0)
            .map(|e| e.raw_tuples_seen as f64)
            .collect();
        Self::gini(xs)
    }

    fn gini(mut xs: Vec<f64>) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(|a, b| a.total_cmp(b));

        let n = xs.len() as f64;
        let total: f64 = xs.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let weighted: f64 = xs
            .iter()
            .enumerate()
            .map(|(i, x)| (i as f64 + 1.0) * x)
            .sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }
}

impl Encode for LiabilityEntry {
    fn encode(&self, w: &mut Writer) {
        self.operators_hosted.encode(w);
        self.raw_tuples_seen.encode(w);
        self.aggregates_seen.encode(w);
    }
}

impl Decode for LiabilityEntry {
    fn decode(r: &mut Reader<'_>) -> edgelet_util::Result<Self> {
        Ok(Self {
            operators_hosted: u32::decode(r)?,
            raw_tuples_seen: u64::decode(r)?,
            aggregates_seen: u64::decode(r)?,
        })
    }
}

impl Encode for Ledger {
    fn encode(&self, w: &mut Writer) {
        self.entries.encode(w);
    }
}

impl Decode for Ledger {
    fn decode(r: &mut Reader<'_>) -> edgelet_util::Result<Self> {
        Ok(Self {
            entries: BTreeMap::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut l = Ledger::default();
        l.host_operator(DeviceId::new(1));
        l.host_operator(DeviceId::new(1));
        l.raw_tuples(DeviceId::new(1), 500);
        l.aggregates(DeviceId::new(2), 3);
        assert_eq!(l.entries()[&DeviceId::new(1)].operators_hosted, 2);
        assert_eq!(l.entries()[&DeviceId::new(1)].raw_tuples_seen, 500);
        assert_eq!(l.entries()[&DeviceId::new(2)].aggregates_seen, 3);
        assert_eq!(l.max_raw_tuples(), 500);
        assert_eq!(l.max_operators(), 2);
    }

    #[test]
    fn gini_even_vs_concentrated() {
        let mut even = Ledger::default();
        for i in 0..10 {
            even.raw_tuples(DeviceId::new(i), 100);
        }
        assert!(even.raw_tuple_gini().abs() < 1e-9);

        let mut concentrated = Ledger::default();
        concentrated.raw_tuples(DeviceId::new(0), 1000);
        for i in 1..10 {
            concentrated.raw_tuples(DeviceId::new(i), 0);
        }
        assert!(concentrated.raw_tuple_gini() > 0.8);

        assert_eq!(Ledger::default().raw_tuple_gini(), 0.0);
    }

    #[test]
    fn processor_gini_excludes_zero_raw_devices() {
        let mut l = Ledger::default();
        // Four processors with equal shares, many zero-raw contributors.
        for i in 0..4 {
            l.raw_tuples(DeviceId::new(i), 250);
        }
        for i in 10..100 {
            l.aggregates(DeviceId::new(i), 1);
        }
        assert!(l.processor_gini().abs() < 1e-9, "{}", l.processor_gini());
        assert!(l.raw_tuple_gini() > 0.5);
    }

    #[test]
    fn wire_roundtrip() {
        let mut l = Ledger::default();
        l.host_operator(DeviceId::new(3));
        l.raw_tuples(DeviceId::new(3), 42);
        l.aggregates(DeviceId::new(9), 7);
        let bytes = edgelet_wire::to_bytes(&l);
        let back: Ledger = edgelet_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back.entries(), l.entries());
        // Re-encoding is byte-stable (BTreeMap order is canonical).
        assert_eq!(edgelet_wire::to_bytes(&back), bytes);
    }

    #[test]
    fn merge_adds_entrywise() {
        let mut a = Ledger::default();
        a.host_operator(DeviceId::new(1));
        a.raw_tuples(DeviceId::new(1), 10);

        let mut b = Ledger::default();
        b.host_operator(DeviceId::new(1));
        b.raw_tuples(DeviceId::new(1), 5);
        b.aggregates(DeviceId::new(2), 4);

        a.merge(&b);
        assert_eq!(a.entries()[&DeviceId::new(1)].operators_hosted, 2);
        assert_eq!(a.entries()[&DeviceId::new(1)].raw_tuples_seen, 15);
        assert_eq!(a.entries()[&DeviceId::new(2)].aggregates_seen, 4);

        // Merging an empty ledger is a no-op.
        let before = a.clone();
        a.merge(&Ledger::default());
        assert_eq!(a.entries(), before.entries());
    }

    #[test]
    fn shared_handle_mutates() {
        let handle = shared();
        handle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .host_operator(DeviceId::new(7));
        assert_eq!(
            handle
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .max_operators(),
            1
        );
    }
}
