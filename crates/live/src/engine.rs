//! The live engine: a conservative-window parallel event executor that
//! hosts [`edgelet_sim::Actor`]s on std threads, with every message
//! crossing a [`Transport`] as real wire bytes.
//!
//! # Bit-equivalence to the simulator
//!
//! The engine re-implements the simulator's windowed executor
//! (`edgelet_sim::engine::run_windowed_*`) over live worker threads and
//! an external message fabric, preserving the invariants that make the
//! simulator deterministic:
//!
//! * **Intrinsic event keys.** Every event carries `(at, origin, seq)`
//!   where `seq` comes from the *spawning* device's private counter.
//!   Workers process events in key order inside each window, and ordered
//!   side effects (trace records, metric observations) are journaled and
//!   replayed at the barrier in the canonical `(at, origin, seq, intra)`
//!   order — exactly the simulator's merge.
//! * **Per-sender RNG streams.** Network fate and latency draw from the
//!   sender's own RNG fork, so draws are independent of thread
//!   interleaving.
//! * **Conservative lookahead.** Each window spans `[m, m + L)` where
//!   `m` is the global minimum pending time and `L` the network's
//!   minimum latency — the same dynamic geometry as the simulator. A
//!   message sent at `now ≥ m` is delivered at `now + latency ≥ m + L`,
//!   never inside the window that sent it. Routing **all** deliveries
//!   through the transport and draining them at the next window start
//!   therefore cannot reorder processing relative to the simulator,
//!   which short-circuits same-shard deliveries. Only timers can fire
//!   inside their spawning window, and timers never leave their
//!   worker-local heap.
//! * **Barrier-mediated backpressure.** A full transport lane parks the
//!   envelope in the window report; the coordinator re-submits parked
//!   envelopes at the barrier (spilling to worker mailboxes if the lane
//!   is still full), *before* choosing the next window from the global
//!   minimum pending time. Every envelope is thus visible to its
//!   destination before the window that must process it opens, so
//!   backpressure changes pacing, never outcomes.
//!
//! The round machinery itself — per-worker heaps, event dispatch,
//! journaling, delta accumulation — lives in [`crate::round`]; this
//! module owns world construction and the in-process threaded driver.
//! The socket runtime (`edgelet-net`) drives the same rounds across
//! processes via [`LiveEngine::into_parts`].
//!
//! The restrictions relative to the simulator: always-up devices (no
//! churn), non-zero lookahead, and no fault-injection plans. Everything
//! the query protocols use — timers, broadcasts, crashes, tracing,
//! observations — behaves identically.

use crate::round::{fold_min, lock, LiveEnv, LiveKind, LiveWorker, RoundReport};
use edgelet_sim::{
    Availability, CrashCause, DeviceConfig, NetworkModel, SimMetrics, SimTime, Trace,
};
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::sync::EpochGate;
use edgelet_util::Result;
use edgelet_wire::{Envelope, Transport};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maps payload bytes to a protocol message kind for `MsgKind` trace
/// records (the live mirror of `edgelet_sim::Classifier`).
pub type PayloadClassifier = fn(&[u8]) -> Option<u16>;

/// Global live-engine parameters (the live mirror of
/// [`edgelet_sim::SimConfig`]).
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The link model applied to every message.
    pub network: NetworkModel,
    /// Hard cap on processed events (runaway-protocol backstop).
    pub max_events: u64,
    /// Ring-buffer capacity of the event trace (0 disables tracing).
    pub trace_capacity: usize,
    /// Worker threads hosting the device population (0 is treated as 1).
    pub workers: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            network: NetworkModel::default(),
            max_events: 50_000_000,
            trace_capacity: 0,
            workers: 1,
        }
    }
}

/// Why a [`LiveEngine::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// No runnable work remains (the simulator's `run_until == false`).
    Quiescent,
    /// The virtual deadline passed with events still pending (the
    /// simulator's `run_until == true`).
    Deadline,
    /// The event budget (`max_events`) was exhausted.
    Budget,
    /// The external abort flag was raised (wall-clock deadline or
    /// service shutdown); virtual state stops at the last barrier.
    Aborted,
}

/// Shared coordination block; one generation = one window. Both
/// barrier directions park instead of spinning ([`EpochGate`]), so an
/// oversubscribed host degrades to blocking rather than a scheduler
/// fight.
#[derive(Default)]
struct Ctl {
    /// Window generation; bumped by the coordinator to open a window.
    generation: EpochGate,
    /// Cumulative count of worker window completions.
    done: EpochGate,
    stop: AtomicBool,
    window_end: AtomicU64,
    clip: AtomicU64,
    budget: AtomicU64,
}

/// Cooperative lane-decode staging shared by one run's workers. At the
/// start of each window every transport lane must be drained and its
/// wire bytes decoded; instead of each worker decoding only its own
/// lane (serializing the window on the busiest lane), workers claim
/// lanes round-robin and decode whichever is next, publishing the
/// envelopes to the owning worker's staging buffer.
struct StealCtx {
    /// Monotone lane-claim ticket; window `g` owns tickets
    /// `[(g-1)·W, g·W)` for `W` lanes, claimed by bounded CAS so a
    /// window can never consume the next window's tickets.
    claim: AtomicU64,
    /// Cumulative count of decoded lanes; window `g` is fully staged
    /// once this reaches `g·W`.
    decoded: EpochGate,
    /// Decoded envelopes awaiting ingestion by the owning worker.
    staging: Vec<Mutex<Vec<Envelope>>>,
}

/// Worker thread body: parks for each window generation, joins the
/// cooperative lane-decode phase, runs its round with a recycled
/// report, and publishes the result.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: &mut LiveWorker,
    env: &LiveEnv<'_>,
    ctl: &Ctl,
    steal: &StealCtx,
    mailboxes: &[Mutex<Vec<Envelope>>],
    slots: &[Mutex<Option<RoundReport>>],
) {
    let me = worker.idx();
    let lanes = steal.staging.len() as u64;
    let mut seen = 0u64;
    loop {
        ctl.generation.wait_min(seen + 1);
        if ctl.stop.load(Ordering::Acquire) {
            return;
        }
        seen += 1;
        // Phase 1 — work-stealing lane decode: claim any lane not yet
        // drained this window, decode its wire bytes, and stage the
        // envelopes for the owning worker. A lane carrying most of the
        // window's traffic is no longer a serialization point.
        loop {
            let ticket = steal.claim.load(Ordering::Acquire);
            if ticket >= seen * lanes {
                break;
            }
            if steal
                .claim
                .compare_exchange(ticket, ticket + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let lane = (ticket % lanes) as usize;
            let mut decoded = env.transport.drain(env.epoch, lane);
            if !decoded.is_empty() {
                lock(&steal.staging[lane]).append(&mut decoded);
            }
            steal.decoded.add(1);
        }
        steal.decoded.wait_min(seen * lanes);
        // Phase 2 — execute the window against this worker's staged
        // deliveries, reusing the report the barrier handed back.
        let reuse = {
            let mut slot = lock(&slots[me]);
            slot.take()
        };
        let window_end = ctl.window_end.load(Ordering::Acquire);
        let clip = ctl.clip.load(Ordering::Acquire);
        let budget = ctl.budget.load(Ordering::Acquire);
        let report = worker.run_round(
            env,
            &mailboxes[me],
            &steal.staging[me],
            window_end,
            clip,
            budget,
            reuse,
        );
        *lock(&slots[me]) = Some(report);
        ctl.done.add(1);
    }
}

/// A fully built live world detached from the in-process driver, for
/// hosts that run the rounds themselves — the multi-process socket
/// runtime's daemon and worker processes.
///
/// Produced by [`LiveEngine::into_parts`] *before* any window has run:
/// the engine spawns threads only inside `run_until`, so everything here
/// is plain owned state. A worker process keeps `workers[its index]`
/// and discards the rest; the daemon discards all workers but keeps the
/// initial `min_at` / `real_pending` bookkeeping for its coordinator
/// loop.
pub struct EngineParts {
    /// The engine configuration (network model, budgets, worker count).
    pub config: LiveConfig,
    /// One built worker slice per configured worker, in index order.
    pub workers: Vec<LiveWorker>,
    /// Number of registered devices.
    pub device_count: usize,
    /// Count of events currently pending across all heaps.
    pub real_pending: u64,
    /// Payload classifier feeding `MsgKind` trace records.
    pub classifier: Option<PayloadClassifier>,
    /// Conservative lookahead in µs (minimum network latency; > 0).
    pub lookahead_us: u64,
    /// The epoch stamped on every envelope.
    pub epoch: u64,
}

/// A deterministic live world of devices and actors, executing over a
/// [`Transport`] on `workers` std threads.
pub struct LiveEngine {
    config: LiveConfig,
    workers: Vec<LiveWorker>,
    device_count: usize,
    real_pending: u64,
    now: SimTime,
    root_rng: DetRng,
    metrics: SimMetrics,
    trace: Trace,
    classifier: Option<PayloadClassifier>,
    /// Conservative lookahead in µs (minimum network latency; > 0).
    lookahead_us: u64,
    cell_open_until: u64,
    epoch: u64,
    transport: Arc<dyn Transport>,
}

impl LiveEngine {
    /// Creates a live world seeded with `seed`, exchanging messages for
    /// `epoch` over `transport`.
    ///
    /// Fails if the network model has zero minimum latency: the live
    /// executor is conservative-window only (lookahead = min latency),
    /// there is no sequential fallback outside the simulator.
    pub fn new(
        config: LiveConfig,
        seed: u64,
        transport: Arc<dyn Transport>,
        epoch: u64,
    ) -> Result<Self> {
        let lookahead_us = config.network.min_latency().as_micros();
        if lookahead_us == 0 {
            return Err(edgelet_util::Error::InvalidConfig(
                "live runtime requires a network model with non-zero minimum latency \
                 (the conservative lookahead); zero-lookahead models only run on the simulator"
                    .into(),
            ));
        }
        let worker_count = config.workers.max(1);
        let workers = (0..worker_count)
            .map(|idx| LiveWorker::new(idx, worker_count))
            .collect();
        let trace_capacity = config.trace_capacity;
        Ok(LiveEngine {
            config,
            workers,
            device_count: 0,
            real_pending: 0,
            now: SimTime::ZERO,
            root_rng: DetRng::new(seed),
            metrics: SimMetrics::default(),
            trace: Trace::new(trace_capacity),
            classifier: None,
            lookahead_us,
            cell_open_until: 0,
            epoch,
            transport,
        })
    }

    /// Installs the payload classifier feeding `MsgKind` trace records.
    pub fn set_classifier(&mut self, classifier: PayloadClassifier) {
        self.classifier = Some(classifier);
    }

    /// Registers a device; returns its id. The RNG fork order ("churn",
    /// "device", "netdev", then "crash", indexed by the device id)
    /// mirrors [`edgelet_sim::Simulation::add_device`] exactly, so a
    /// live world and a simulated world built from the same seed draw
    /// identical streams.
    ///
    /// Fails for non-[`Availability::AlwaysUp`] devices: the live
    /// runtime has no store-and-forward layer (a real deployment's
    /// devices are reachable while enrolled; churn experiments belong to
    /// the simulator).
    pub fn add_device(&mut self, cfg: DeviceConfig) -> Result<DeviceId> {
        if cfg.availability != Availability::AlwaysUp {
            return Err(edgelet_util::Error::InvalidConfig(
                "live runtime requires always-up devices; churn models only run on the simulator"
                    .into(),
            ));
        }
        let id = DeviceId::new(self.device_count as u64);
        self.device_count += 1;
        let mut churn_rng = self.root_rng.fork_indexed("churn", id.raw());
        let up = cfg.availability.starts_up();
        let device_rng = self.root_rng.fork_indexed("device", id.raw());
        let net_rng = self.root_rng.fork_indexed("netdev", id.raw());
        let w = id.index() % self.workers.len();
        self.workers[w]
            .devices
            .push(crate::round::LiveDevice::new(device_rng, net_rng));
        debug_assert!(cfg.availability.next_period(up, &mut churn_rng).is_none());
        let mut crash_rng = self.root_rng.fork_indexed("crash", id.raw());
        if let Some(t) = cfg.crash.resolve(&mut crash_rng) {
            self.push_external(
                id,
                t.max(self.now),
                LiveKind::Crash(id, CrashCause::Organic),
            );
        }
        Ok(id)
    }

    /// Installs an actor on a device; its `on_start` runs at the current
    /// virtual time once the engine is stepped. Install order is part of
    /// the deterministic contract (it consumes per-device sequence
    /// numbers), matching [`edgelet_sim::Simulation::install_actor`].
    pub fn install_actor(&mut self, device: DeviceId, actor: Box<dyn edgelet_sim::Actor>) {
        let w = device.index() % self.workers.len();
        let state = self.workers[w].device_mut(device);
        assert!(
            state.actor.is_none(),
            "device {device} already has an actor"
        );
        state.actor = Some(actor);
        self.push_external(device, self.now, LiveKind::Start(device));
    }

    /// Schedules a scripted crash ("power off a device at will").
    pub fn crash_at(&mut self, device: DeviceId, at: SimTime) {
        self.push_external(
            device,
            at.max(self.now),
            LiveKind::Crash(device, CrashCause::Organic),
        );
    }

    fn push_external(&mut self, origin: DeviceId, at: SimTime, kind: LiveKind) {
        let w_origin = origin.index() % self.workers.len();
        let seq = self.workers[w_origin].next_seq(origin);
        self.real_pending += 1;
        let target = kind.target();
        let w = target.index() % self.workers.len();
        self.workers[w].push_event(at, origin.raw(), seq, kind);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Metric counters accumulated so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The event trace (empty unless `trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The epoch this engine stamps on every envelope.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dismantles a *built but not yet run* world into its parts, for
    /// hosts that drive the rounds themselves (the socket runtime).
    ///
    /// Must be called before any `run`/`run_until`: the split makes no
    /// attempt to carry mid-run bookkeeping (`now`, accumulated metrics,
    /// the open-cell watermark) because round hosts start those from
    /// zero, exactly as a fresh `run_until` would.
    pub fn into_parts(self) -> EngineParts {
        debug_assert_eq!(self.now, SimTime::ZERO, "into_parts on a stepped engine");
        EngineParts {
            config: self.config,
            workers: self.workers,
            device_count: self.device_count,
            real_pending: self.real_pending,
            classifier: self.classifier,
            lookahead_us: self.lookahead_us,
            epoch: self.epoch,
        }
    }

    /// Runs until quiescent or `max_events` is hit. Returns the final
    /// virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX, None);
        self.now
    }

    /// Runs until the world drains, virtual time would pass `deadline`,
    /// the event budget is exhausted, or `abort` is raised (checked at
    /// window barriers — the wall-clock hook for live deadlines).
    ///
    /// Window-by-window this follows the simulator's
    /// `run_windowed_parallel` decision loop; see the module docs for
    /// why the outcomes are bit-identical.
    pub fn run_until(&mut self, deadline: SimTime, abort: Option<&AtomicBool>) -> ExitReason {
        let width = self.lookahead_us.max(1);
        let deadline_us = deadline.as_micros();
        let worker_count = self.workers.len();
        let max_events = self.config.max_events;
        let need_kind = self.classifier.is_some() && self.trace.enabled();
        let env = LiveEnv {
            network: &self.config.network,
            classifier: self.classifier,
            need_kind,
            trace_enabled: self.trace.enabled(),
            device_count: self.device_count,
            epoch: self.epoch,
            transport: self.transport.as_ref(),
        };
        let transport = self.transport.as_ref();
        let epoch = self.epoch;
        let metrics = &mut self.metrics;
        let trace = &mut self.trace;
        let real_pending = &mut self.real_pending;
        let now = &mut self.now;
        let cell_open_until = &mut self.cell_open_until;

        let mut min_at: Option<u64> = None;
        for w in self.workers.iter() {
            min_at = fold_min(min_at, w.heap_min());
        }
        for lane in 0..worker_count {
            min_at = fold_min(min_at, transport.pending(epoch, lane).map(|(_, m)| m));
        }

        let ctl = Ctl::default();
        let steal = StealCtx {
            claim: AtomicU64::new(0),
            decoded: EpochGate::new(),
            staging: (0..worker_count).map(|_| Mutex::new(Vec::new())).collect(),
        };
        let mailboxes: Vec<Mutex<Vec<Envelope>>> =
            (0..worker_count).map(|_| Mutex::new(Vec::new())).collect();
        let slots: Vec<Mutex<Option<RoundReport>>> =
            (0..worker_count).map(|_| Mutex::new(None)).collect();

        let exit = std::thread::scope(|scope| {
            for worker in self.workers.iter_mut() {
                let env = &env;
                let ctl = &ctl;
                let steal = &steal;
                let mailboxes = &mailboxes[..];
                let slots = &slots[..];
                scope.spawn(move || worker_loop(worker, env, ctl, steal, mailboxes, slots));
            }
            let mut expected_done = 0u64;
            let mut reports: Vec<RoundReport> = Vec::with_capacity(worker_count);
            let mut parked: Vec<Envelope> = Vec::new();
            let result = loop {
                if abort.is_some_and(|a| a.load(Ordering::Acquire)) {
                    break ExitReason::Aborted;
                }
                let Some(m) = min_at else {
                    break ExitReason::Quiescent;
                };
                if m >= *cell_open_until && *real_pending == 0 {
                    break ExitReason::Quiescent;
                }
                if m > deadline_us {
                    *now = deadline;
                    break ExitReason::Deadline;
                }
                if metrics.events_processed >= max_events {
                    break ExitReason::Budget;
                }
                // Same window geometry as the simulator: one lookahead
                // starting at the global minimum pending time.
                let window_end = m.saturating_add(width);
                *cell_open_until = window_end;
                ctl.window_end.store(window_end, Ordering::Relaxed);
                ctl.clip.store(deadline_us, Ordering::Relaxed);
                ctl.budget
                    .store(max_events - metrics.events_processed, Ordering::Relaxed);
                // The gate's internal lock publishes the Relaxed stores
                // above to workers woken by this bump.
                ctl.generation.add(1);
                expected_done += worker_count as u64;
                ctl.done.wait_min(expected_done);
                reports.clear();
                let mut missing = false;
                for slot in &slots {
                    match lock(slot).take() {
                        Some(r) => reports.push(r),
                        None => missing = true,
                    }
                }
                if missing {
                    // A worker died (actor panic); leaving the scope
                    // joins the workers and propagates the panic.
                    break ExitReason::Aborted;
                }
                // ---- barrier merge (the simulator's merge_reports) ----
                let mut next_min: Option<u64> = None;
                for report in reports.iter_mut() {
                    let d = &report.out.deltas;
                    metrics.messages_sent += d.sent;
                    metrics.messages_delivered += d.delivered;
                    metrics.messages_dropped += d.dropped;
                    metrics.messages_corrupted += d.corrupted;
                    metrics.messages_to_crashed += d.to_crashed;
                    metrics.bytes_sent += d.bytes_sent;
                    metrics.delivery_delay.merge(&d.delay);
                    metrics.crashes += d.crashes;
                    metrics.events_processed += d.events;
                    *real_pending = ((*real_pending as i64) + d.real_pending).max(0) as u64;
                    *now = (*now).max(d.last_at);
                    next_min = fold_min(next_min, report.heap_min);
                    let _ = report.hit_budget;
                    parked.append(&mut report.out.parked);
                }
                // Streaming k-way merge of the workers' pre-sorted
                // journals: repeatedly take the smallest head by the
                // canonical `(at, origin, seq, intra)` key. No
                // concatenation, no re-sort; journal buffers keep their
                // capacity for recycling.
                {
                    let mut heads: Vec<_> = reports
                        .iter_mut()
                        .map(|r| r.out.journal.drain(..).peekable())
                        .collect();
                    loop {
                        let mut best: Option<usize> = None;
                        let mut best_key = (SimTime::ZERO, 0u64, 0u64, 0u32);
                        for (i, head) in heads.iter_mut().enumerate() {
                            if let Some(e) = head.peek() {
                                let key = e.key();
                                if best.is_none() || key < best_key {
                                    best = Some(i);
                                    best_key = key;
                                }
                            }
                        }
                        let Some(i) = best else { break };
                        let Some(entry) = heads[i].next() else { break };
                        match entry.item {
                            crate::round::JItem::Trace(ev) => trace.record(entry.at, ev),
                            crate::round::JItem::Observe(name, value) => {
                                metrics.observe(name, value)
                            }
                        }
                    }
                }
                // Re-submit backpressured envelopes while every worker is
                // idle; a still-full lane spills into the destination's
                // mailbox so no envelope is ever invisible to the next
                // window decision.
                for e in parked.drain(..) {
                    match transport.submit(e.clone()) {
                        Ok(()) => {}
                        Err(_) => {
                            let dest = e.to.index() % worker_count;
                            lock(&mailboxes[dest]).push(e);
                        }
                    }
                }
                for (lane, mailbox) in mailboxes.iter().enumerate().take(worker_count) {
                    next_min = fold_min(next_min, transport.pending(epoch, lane).map(|(_, m)| m));
                    let mb_min = lock(mailbox).iter().map(|e| e.deliver_at_us).min();
                    next_min = fold_min(next_min, mb_min);
                }
                min_at = next_min;
                // Hand the emptied reports back through the slots so the
                // next window reuses their buffers.
                for (slot, mut report) in slots.iter().zip(reports.drain(..)) {
                    report.out.reset();
                    *lock(slot) = Some(report);
                }
            };
            ctl.stop.store(true, Ordering::Release);
            // Wake parked workers so they observe `stop` and exit.
            ctl.generation.add(1);
            result
        });
        // Workers are joined; flush mailbox spills and staged deliveries
        // left by an early exit back into the owning heaps so state
        // stays consistent.
        for (dest, mb) in mailboxes.into_iter().enumerate() {
            let envelopes = mb.into_inner().unwrap_or_else(|e| e.into_inner());
            for e in envelopes {
                self.workers[dest].ingest(e);
            }
        }
        for (dest, st) in steal.staging.into_iter().enumerate() {
            let envelopes = st.into_inner().unwrap_or_else(|e| e.into_inner());
            for e in envelopes {
                self.workers[dest].ingest(e);
            }
        }
        if exit == ExitReason::Quiescent && deadline != SimTime::MAX {
            self.now = deadline;
        }
        exit
    }
}
