//! The live engine: a conservative-window parallel event executor that
//! hosts [`edgelet_sim::Actor`]s on std threads, with every message
//! crossing a [`Transport`] as real wire bytes.
//!
//! # Bit-equivalence to the simulator
//!
//! The engine re-implements the simulator's windowed executor
//! (`edgelet_sim::engine::run_windowed_*`) over live worker threads and
//! an external message fabric, preserving the invariants that make the
//! simulator deterministic:
//!
//! * **Intrinsic event keys.** Every event carries `(at, origin, seq)`
//!   where `seq` comes from the *spawning* device's private counter.
//!   Workers process events in key order inside each window, and ordered
//!   side effects (trace records, metric observations) are journaled and
//!   replayed at the barrier in the canonical `(at, origin, seq, intra)`
//!   order — exactly the simulator's merge.
//! * **Per-sender RNG streams.** Network fate and latency draw from the
//!   sender's own RNG fork, so draws are independent of thread
//!   interleaving.
//! * **Conservative lookahead.** Each window spans `[m, m + L)` where
//!   `m` is the global minimum pending time and `L` the network's
//!   minimum latency — the same dynamic geometry as the simulator. A
//!   message sent at `now ≥ m` is delivered at `now + latency ≥ m + L`,
//!   never inside the window that sent it. Routing **all** deliveries
//!   through the transport and draining them at the next window start
//!   therefore cannot reorder processing relative to the simulator,
//!   which short-circuits same-shard deliveries. Only timers can fire
//!   inside their spawning window, and timers never leave their
//!   worker-local heap.
//! * **Barrier-mediated backpressure.** A full transport lane parks the
//!   envelope in the window report; the coordinator re-submits parked
//!   envelopes at the barrier (spilling to worker mailboxes if the lane
//!   is still full), *before* choosing the next window from the global
//!   minimum pending time. Every envelope is thus visible to its
//!   destination before the window that must process it opens, so
//!   backpressure changes pacing, never outcomes.
//!
//! The restrictions relative to the simulator: always-up devices (no
//! churn), non-zero lookahead, and no fault-injection plans. Everything
//! the query protocols use — timers, broadcasts, crashes, tracing,
//! observations — behaves identically.

use edgelet_sim::network::Fate;
use edgelet_sim::{
    Actor, Availability, Command, Context, CrashCause, DeviceConfig, NetworkModel, SimMetrics,
    SimTime, TimerToken, Trace, TraceEvent,
};
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::sync::EpochGate;
use edgelet_util::{Payload, Result};
use edgelet_wire::{Envelope, Transport, TransportError};
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Maps payload bytes to a protocol message kind for `MsgKind` trace
/// records (the live mirror of `edgelet_sim::Classifier`).
pub type PayloadClassifier = fn(&[u8]) -> Option<u16>;

/// Global live-engine parameters (the live mirror of
/// [`edgelet_sim::SimConfig`]).
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The link model applied to every message.
    pub network: NetworkModel,
    /// Hard cap on processed events (runaway-protocol backstop).
    pub max_events: u64,
    /// Ring-buffer capacity of the event trace (0 disables tracing).
    pub trace_capacity: usize,
    /// Worker threads hosting the device population (0 is treated as 1).
    pub workers: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            network: NetworkModel::default(),
            max_events: 50_000_000,
            trace_capacity: 0,
            workers: 1,
        }
    }
}

/// Why a [`LiveEngine::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// No runnable work remains (the simulator's `run_until == false`).
    Quiescent,
    /// The virtual deadline passed with events still pending (the
    /// simulator's `run_until == true`).
    Deadline,
    /// The event budget (`max_events`) was exhausted.
    Budget,
    /// The external abort flag was raised (wall-clock deadline or
    /// service shutdown); virtual state stops at the last barrier.
    Aborted,
}

/// One device hosted by the live runtime. Mirrors the simulator's
/// per-device state minus churn (live devices are always up).
struct LiveDevice {
    crashed: bool,
    halted: bool,
    actor: Option<Box<dyn Actor>>,
    /// Actor-visible randomness (forked per device).
    rng: DetRng,
    /// Network fate/latency draws for messages this device sends.
    net_rng: DetRng,
    next_timer: u64,
    /// Private spawn counter: the `seq` of every event this device spawns.
    spawn_seq: u64,
    cancelled: BTreeSet<TimerToken>,
}

/// Event kinds the live runtime processes (the simulator's set minus
/// churn toggles).
enum LiveKind {
    Start(DeviceId),
    Deliver {
        to: DeviceId,
        from: DeviceId,
        payload: Payload,
        sent_at: SimTime,
    },
    Timer {
        device: DeviceId,
        token: TimerToken,
    },
    Crash(DeviceId, CrashCause),
}

impl LiveKind {
    fn target(&self) -> DeviceId {
        match *self {
            LiveKind::Start(d) => d,
            LiveKind::Deliver { to, .. } => to,
            LiveKind::Timer { device, .. } => device,
            LiveKind::Crash(d, _) => d,
        }
    }
}

/// One scheduled event with its intrinsic key.
struct LiveEvent {
    at: SimTime,
    origin: u64,
    seq: u64,
    kind: LiveKind,
}

impl LiveEvent {
    fn key(&self) -> (SimTime, u64, u64) {
        (self.at, self.origin, self.seq)
    }
}

impl PartialEq for LiveEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for LiveEvent {}
impl PartialOrd for LiveEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LiveEvent {
    /// Reversed: `BinaryHeap` is a max-heap, we need the minimal key.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// A journal item: a side effect whose global ordering matters.
enum JItem {
    Trace(TraceEvent),
    Observe(&'static str, f64),
}

/// One journal entry tagged with the producing event's key plus an
/// intra-event counter; sorting by `(at, origin, seq, intra)` rebuilds
/// one canonical order from any per-worker interleaving.
struct JEntry {
    at: SimTime,
    origin: u64,
    seq: u64,
    intra: u32,
    item: JItem,
}

/// Commutative metric deltas accumulated by one worker over one window.
#[derive(Default)]
struct Deltas {
    sent: u64,
    delivered: u64,
    dropped: u64,
    corrupted: u64,
    to_crashed: u64,
    bytes_sent: u64,
    delay: edgelet_sim::DelayStats,
    crashes: u64,
    events: u64,
    /// Net change in pending events (+spawned, -processed).
    real_pending: i64,
    /// Latest event time processed.
    last_at: SimTime,
}

/// Buffered side effects of one worker's window.
struct RoundOut {
    journal: Vec<JEntry>,
    deltas: Deltas,
    /// Envelopes refused with backpressure, for barrier re-submission.
    parked: Vec<Envelope>,
    /// Sends buffered per destination lane, flushed in one batched
    /// transport submission per lane at the end of the window (the
    /// lookahead guarantees none of them can be due inside it).
    outgoing: Vec<Vec<Envelope>>,
    trace_on: bool,
    cur: (SimTime, u64, u64),
    intra: u32,
}

impl RoundOut {
    fn new(trace_on: bool, lane_count: usize) -> Self {
        RoundOut {
            journal: Vec::new(),
            deltas: Deltas::default(),
            parked: Vec::new(),
            outgoing: (0..lane_count).map(|_| Vec::new()).collect(),
            trace_on,
            cur: (SimTime::ZERO, 0, 0),
            intra: 0,
        }
    }

    /// Clears buffered effects while keeping capacity, so a recycled
    /// report's window allocates nothing.
    fn reset(&mut self) {
        self.journal.clear();
        self.deltas = Deltas::default();
        self.parked.clear();
        for lane in &mut self.outgoing {
            lane.clear();
        }
        self.intra = 0;
    }

    fn begin_event(&mut self, key: (SimTime, u64, u64)) {
        self.cur = key;
        self.intra = 0;
    }

    fn push_item(&mut self, item: JItem) {
        self.journal.push(JEntry {
            at: self.cur.0,
            origin: self.cur.1,
            seq: self.cur.2,
            intra: self.intra,
            item,
        });
        self.intra += 1;
    }

    fn trace(&mut self, ev: TraceEvent) {
        if self.trace_on {
            self.push_item(JItem::Trace(ev));
        }
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.push_item(JItem::Observe(name, value));
    }
}

/// Result of one worker's window.
struct RoundReport {
    out: RoundOut,
    /// Earliest event still in this worker's heap after the window.
    heap_min: Option<u64>,
    hit_budget: bool,
}

/// Immutable per-run context shared by all workers.
struct LiveEnv<'a> {
    network: &'a NetworkModel,
    classifier: Option<PayloadClassifier>,
    need_kind: bool,
    trace_enabled: bool,
    device_count: usize,
    epoch: u64,
    transport: &'a dyn Transport,
}

/// Shared coordination block; one generation = one window. Both
/// barrier directions park instead of spinning ([`EpochGate`]), so an
/// oversubscribed host degrades to blocking rather than a scheduler
/// fight.
#[derive(Default)]
struct Ctl {
    /// Window generation; bumped by the coordinator to open a window.
    generation: EpochGate,
    /// Cumulative count of worker window completions.
    done: EpochGate,
    stop: AtomicBool,
    window_end: AtomicU64,
    clip: AtomicU64,
    budget: AtomicU64,
}

/// Cooperative lane-decode staging shared by one run's workers. At the
/// start of each window every transport lane must be drained and its
/// wire bytes decoded; instead of each worker decoding only its own
/// lane (serializing the window on the busiest lane), workers claim
/// lanes round-robin and decode whichever is next, publishing the
/// envelopes to the owning worker's staging buffer.
struct StealCtx {
    /// Monotone lane-claim ticket; window `g` owns tickets
    /// `[(g-1)·W, g·W)` for `W` lanes, claimed by bounded CAS so a
    /// window can never consume the next window's tickets.
    claim: AtomicU64,
    /// Cumulative count of decoded lanes; window `g` is fully staged
    /// once this reaches `g·W`.
    decoded: EpochGate,
    /// Decoded envelopes awaiting ingestion by the owning worker.
    staging: Vec<Mutex<Vec<Envelope>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One worker: a slice of the device population (ids with
/// `index % worker_count == idx`, stored at `index / worker_count`)
/// plus its event heap.
struct LiveWorker {
    idx: usize,
    worker_count: usize,
    devices: Vec<LiveDevice>,
    heap: BinaryHeap<LiveEvent>,
    /// Scratch buffer mailbox/staging contents are swapped into, so
    /// ingestion holds neither lock while pushing onto the heap.
    ingest_buf: Vec<Envelope>,
}

impl LiveWorker {
    fn device_mut(&mut self, id: DeviceId) -> &mut LiveDevice {
        debug_assert_eq!(id.index() % self.worker_count, self.idx);
        &mut self.devices[id.index() / self.worker_count]
    }

    /// Runs one window: ingest mailbox spills and the pre-decoded
    /// transport deliveries staged for this worker, execute every event
    /// with `at < window_end && at <= clip`, then flush buffered sends
    /// lane-by-lane. `reuse` recycles the previous window's report
    /// (emptied by the barrier) so steady-state windows allocate
    /// nothing.
    #[allow(clippy::too_many_arguments)]
    fn run_round(
        &mut self,
        env: &LiveEnv<'_>,
        mailbox: &Mutex<Vec<Envelope>>,
        staging: &Mutex<Vec<Envelope>>,
        window_end_us: u64,
        clip_us: u64,
        budget: u64,
        reuse: Option<RoundReport>,
    ) -> RoundReport {
        let mut buf = std::mem::take(&mut self.ingest_buf);
        std::mem::swap(&mut *lock(mailbox), &mut buf);
        for e in buf.drain(..) {
            self.ingest(e);
        }
        std::mem::swap(&mut *lock(staging), &mut buf);
        for e in buf.drain(..) {
            self.ingest(e);
        }
        self.ingest_buf = buf;
        let mut out = match reuse {
            Some(r) => {
                debug_assert!(r.out.journal.is_empty());
                r.out
            }
            None => RoundOut::new(env.trace_enabled, self.worker_count),
        };
        let mut processed = 0u64;
        let mut hit_budget = false;
        while let Some(top) = self.heap.peek() {
            let at_us = top.at.as_micros();
            if at_us >= window_end_us || at_us > clip_us {
                break;
            }
            if processed >= budget {
                hit_budget = true;
                break;
            }
            let Some(ev) = self.heap.pop() else { break };
            processed += 1;
            self.process_event(ev, env, &mut out);
        }
        // Flush the window's sends: one batched submission per
        // destination lane, each taking the lane lock once. The
        // lookahead guarantees nothing flushed here was due inside the
        // window just executed.
        for lane in 0..out.outgoing.len() {
            let mut batch = std::mem::take(&mut out.outgoing[lane]);
            if !batch.is_empty() {
                match env.transport.submit_batch(&mut batch) {
                    Ok(()) => {}
                    Err(TransportError::Backpressure) => out.parked.append(&mut batch),
                    Err(_) => {
                        // Closed/unknown-epoch mid-run only happens if the
                        // hosting service tore the epoch down; account the
                        // remaining messages as lost.
                        out.deltas.real_pending -= batch.len() as i64;
                        out.deltas.dropped += batch.len() as u64;
                        batch.clear();
                    }
                }
            }
            out.outgoing[lane] = batch;
        }
        // Pre-sort so the barrier can k-way-merge worker journals
        // instead of concatenating and re-sorting under the barrier.
        out.journal
            .sort_unstable_by_key(|e| (e.at, e.origin, e.seq, e.intra));
        let heap_min = self.heap.peek().map(|e| e.at.as_micros());
        RoundReport {
            out,
            heap_min,
            hit_budget,
        }
    }

    fn ingest(&mut self, e: Envelope) {
        debug_assert_eq!(e.to.index() % self.worker_count, self.idx);
        self.heap.push(LiveEvent {
            at: SimTime::from_micros(e.deliver_at_us),
            origin: e.from.raw(),
            seq: e.seq,
            kind: LiveKind::Deliver {
                to: e.to,
                from: e.from,
                payload: e.payload,
                sent_at: SimTime::from_micros(e.sent_at_us),
            },
        });
    }

    /// Executes one event — the live mirror of the simulator shard's
    /// `process_event`/`dispatch`.
    fn process_event(&mut self, ev: LiveEvent, env: &LiveEnv<'_>, out: &mut RoundOut) {
        out.begin_event(ev.key());
        out.deltas.events += 1;
        out.deltas.last_at = out.deltas.last_at.max(ev.at);
        out.deltas.real_pending -= 1;
        let now = ev.at;
        match ev.kind {
            LiveKind::Start(device) => {
                self.with_actor(device, now, env, out, |actor, ctx| actor.on_start(ctx));
            }
            LiveKind::Deliver {
                to,
                from,
                payload,
                sent_at,
            } => {
                let state = self.device_mut(to);
                if state.crashed {
                    out.deltas.to_crashed += 1;
                    return;
                }
                if state.halted || state.actor.is_none() {
                    return;
                }
                out.deltas.delivered += 1;
                out.deltas.delay.push_micros(now.since(sent_at).as_micros());
                out.trace(TraceEvent::Delivered { from, to });
                self.with_actor(to, now, env, out, |actor, ctx| {
                    actor.on_message(ctx, from, &payload)
                });
            }
            LiveKind::Timer { device, token } => {
                let state = self.device_mut(device);
                if state.crashed || state.halted {
                    return;
                }
                if state.cancelled.remove(&token) {
                    return;
                }
                out.trace(TraceEvent::TimerFired {
                    device,
                    token: token.0,
                });
                self.with_actor(device, now, env, out, |actor, ctx| {
                    actor.on_timer(ctx, token)
                });
            }
            LiveKind::Crash(device, cause) => {
                let state = self.device_mut(device);
                if state.crashed {
                    return;
                }
                state.crashed = true;
                state.actor = None;
                out.deltas.crashes += 1;
                out.trace(TraceEvent::Crashed { device, cause });
            }
        }
    }

    /// Runs a callback on a device's actor, then applies its commands.
    fn with_actor<F>(
        &mut self,
        device: DeviceId,
        now: SimTime,
        env: &LiveEnv<'_>,
        out: &mut RoundOut,
        f: F,
    ) where
        F: FnOnce(&mut Box<dyn Actor>, &mut Context<'_>),
    {
        let state = self.device_mut(device);
        if state.crashed || state.halted {
            return;
        }
        let Some(mut actor) = state.actor.take() else {
            return;
        };
        let mut ctx = Context::new(device, now, &mut state.rng, &mut state.next_timer);
        f(&mut actor, &mut ctx);
        let commands = ctx.take_commands();
        drop(ctx);
        self.device_mut(device).actor = Some(actor);
        self.apply_commands(device, now, commands, env, out);
    }

    fn apply_commands(
        &mut self,
        device: DeviceId,
        now: SimTime,
        commands: Vec<Command>,
        env: &LiveEnv<'_>,
        out: &mut RoundOut,
    ) {
        for cmd in commands {
            match cmd {
                Command::Send { to, payload } => {
                    self.submit_send(device, to, payload, now, env, out)
                }
                Command::Broadcast { to, payload } => {
                    // Fan-out shares one buffer, a refcount bump per target.
                    for target in to {
                        self.submit_send(device, target, payload.share(), now, env, out);
                    }
                }
                Command::SetTimer { token, fire_at } => {
                    let seq = self.next_seq(device);
                    out.deltas.real_pending += 1;
                    self.heap.push(LiveEvent {
                        at: fire_at,
                        origin: device.raw(),
                        seq,
                        kind: LiveKind::Timer { device, token },
                    });
                }
                Command::CancelTimer { token } => {
                    self.device_mut(device).cancelled.insert(token);
                }
                Command::Observe { name, value } => out.observe(name, value),
                Command::Halt => self.device_mut(device).halted = true,
            }
        }
    }

    fn next_seq(&mut self, device: DeviceId) -> u64 {
        let d = self.device_mut(device);
        let s = d.spawn_seq;
        d.spawn_seq += 1;
        s
    }

    fn submit_send(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        payload: Payload,
        now: SimTime,
        env: &LiveEnv<'_>,
        out: &mut RoundOut,
    ) {
        out.deltas.sent += 1;
        out.deltas.bytes_sent += payload.len() as u64;
        if to.index() >= env.device_count {
            out.deltas.dropped += 1;
            return;
        }
        let kind = if env.need_kind {
            env.classifier.and_then(|c| c(payload.as_slice()))
        } else {
            None
        };
        if let Some(k) = kind {
            out.trace(TraceEvent::MsgKind { from, to, kind: k });
        }
        self.transmit(from, to, payload, now, env, out);
    }

    /// Applies the network model and hands the message to the transport —
    /// the live mirror of the simulator shard's `transmit`. Order of RNG
    /// draws (fate, then latency; nothing on drop) is load-bearing.
    fn transmit(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        mut payload: Payload,
        now: SimTime,
        env: &LiveEnv<'_>,
        out: &mut RoundOut,
    ) {
        let fate = {
            let sender = self.device_mut(from);
            env.network.fate(&mut sender.net_rng)
        };
        match fate {
            Fate::Dropped => {
                out.deltas.dropped += 1;
                out.trace(TraceEvent::Dropped { from, to });
                return;
            }
            Fate::Corrupted(offset) => {
                // Detach this recipient's copy before flipping a bit so
                // other recipients of a shared broadcast stay intact.
                if !payload.is_empty() {
                    let idx = offset % payload.len();
                    let mut bytes = std::mem::take(&mut payload).into_vec();
                    bytes[idx] ^= 0x01;
                    payload = Payload::new(bytes);
                }
                out.deltas.corrupted += 1;
            }
            Fate::Delivered => {}
        }
        let bytes = payload.len();
        out.trace(TraceEvent::Sent { from, to, bytes });
        let latency = {
            let sender = self.device_mut(from);
            env.network.sample_latency(&mut sender.net_rng)
        };
        let at = now + latency;
        let seq = self.next_seq(from);
        out.deltas.real_pending += 1;
        let env_msg = Envelope {
            epoch: env.epoch,
            from,
            to,
            seq,
            sent_at_us: now.as_micros(),
            deliver_at_us: at.as_micros(),
            payload,
        };
        // Buffered, not submitted: the whole window's sends for one lane
        // flush in a single batched submission at the end of the round.
        let lane = to.index() % self.worker_count;
        out.outgoing[lane].push(env_msg);
    }
}

/// Worker thread body: parks for each window generation, joins the
/// cooperative lane-decode phase, runs its round with a recycled
/// report, and publishes the result.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: &mut LiveWorker,
    env: &LiveEnv<'_>,
    ctl: &Ctl,
    steal: &StealCtx,
    mailboxes: &[Mutex<Vec<Envelope>>],
    slots: &[Mutex<Option<RoundReport>>],
) {
    let me = worker.idx;
    let lanes = steal.staging.len() as u64;
    let mut seen = 0u64;
    loop {
        ctl.generation.wait_min(seen + 1);
        if ctl.stop.load(Ordering::Acquire) {
            return;
        }
        seen += 1;
        // Phase 1 — work-stealing lane decode: claim any lane not yet
        // drained this window, decode its wire bytes, and stage the
        // envelopes for the owning worker. A lane carrying most of the
        // window's traffic is no longer a serialization point.
        loop {
            let ticket = steal.claim.load(Ordering::Acquire);
            if ticket >= seen * lanes {
                break;
            }
            if steal
                .claim
                .compare_exchange(ticket, ticket + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let lane = (ticket % lanes) as usize;
            let mut decoded = env.transport.drain(env.epoch, lane);
            if !decoded.is_empty() {
                lock(&steal.staging[lane]).append(&mut decoded);
            }
            steal.decoded.add(1);
        }
        steal.decoded.wait_min(seen * lanes);
        // Phase 2 — execute the window against this worker's staged
        // deliveries, reusing the report the barrier handed back.
        let reuse = {
            let mut slot = lock(&slots[me]);
            slot.take()
        };
        let window_end = ctl.window_end.load(Ordering::Acquire);
        let clip = ctl.clip.load(Ordering::Acquire);
        let budget = ctl.budget.load(Ordering::Acquire);
        let report = worker.run_round(
            env,
            &mailboxes[me],
            &steal.staging[me],
            window_end,
            clip,
            budget,
            reuse,
        );
        *lock(&slots[me]) = Some(report);
        ctl.done.add(1);
    }
}

/// A deterministic live world of devices and actors, executing over a
/// [`Transport`] on `workers` std threads.
pub struct LiveEngine {
    config: LiveConfig,
    workers: Vec<LiveWorker>,
    device_count: usize,
    real_pending: u64,
    now: SimTime,
    root_rng: DetRng,
    metrics: SimMetrics,
    trace: Trace,
    classifier: Option<PayloadClassifier>,
    /// Conservative lookahead in µs (minimum network latency; > 0).
    lookahead_us: u64,
    cell_open_until: u64,
    epoch: u64,
    transport: Arc<dyn Transport>,
}

impl LiveEngine {
    /// Creates a live world seeded with `seed`, exchanging messages for
    /// `epoch` over `transport`.
    ///
    /// Fails if the network model has zero minimum latency: the live
    /// executor is conservative-window only (lookahead = min latency),
    /// there is no sequential fallback outside the simulator.
    pub fn new(
        config: LiveConfig,
        seed: u64,
        transport: Arc<dyn Transport>,
        epoch: u64,
    ) -> Result<Self> {
        let lookahead_us = config.network.min_latency().as_micros();
        if lookahead_us == 0 {
            return Err(edgelet_util::Error::InvalidConfig(
                "live runtime requires a network model with non-zero minimum latency \
                 (the conservative lookahead); zero-lookahead models only run on the simulator"
                    .into(),
            ));
        }
        let worker_count = config.workers.max(1);
        let workers = (0..worker_count)
            .map(|idx| LiveWorker {
                idx,
                worker_count,
                devices: Vec::new(),
                heap: BinaryHeap::new(),
                ingest_buf: Vec::new(),
            })
            .collect();
        let trace_capacity = config.trace_capacity;
        Ok(LiveEngine {
            config,
            workers,
            device_count: 0,
            real_pending: 0,
            now: SimTime::ZERO,
            root_rng: DetRng::new(seed),
            metrics: SimMetrics::default(),
            trace: Trace::new(trace_capacity),
            classifier: None,
            lookahead_us,
            cell_open_until: 0,
            epoch,
            transport,
        })
    }

    /// Installs the payload classifier feeding `MsgKind` trace records.
    pub fn set_classifier(&mut self, classifier: PayloadClassifier) {
        self.classifier = Some(classifier);
    }

    /// Registers a device; returns its id. The RNG fork order ("churn",
    /// "device", "netdev", then "crash", indexed by the device id)
    /// mirrors [`edgelet_sim::Simulation::add_device`] exactly, so a
    /// live world and a simulated world built from the same seed draw
    /// identical streams.
    ///
    /// Fails for non-[`Availability::AlwaysUp`] devices: the live
    /// runtime has no store-and-forward layer (a real deployment's
    /// devices are reachable while enrolled; churn experiments belong to
    /// the simulator).
    pub fn add_device(&mut self, cfg: DeviceConfig) -> Result<DeviceId> {
        if cfg.availability != Availability::AlwaysUp {
            return Err(edgelet_util::Error::InvalidConfig(
                "live runtime requires always-up devices; churn models only run on the simulator"
                    .into(),
            ));
        }
        let id = DeviceId::new(self.device_count as u64);
        self.device_count += 1;
        let mut churn_rng = self.root_rng.fork_indexed("churn", id.raw());
        let up = cfg.availability.starts_up();
        let device = LiveDevice {
            crashed: false,
            halted: false,
            actor: None,
            rng: self.root_rng.fork_indexed("device", id.raw()),
            net_rng: self.root_rng.fork_indexed("netdev", id.raw()),
            next_timer: 0,
            spawn_seq: 0,
            cancelled: BTreeSet::new(),
        };
        let w = id.index() % self.workers.len();
        self.workers[w].devices.push(device);
        debug_assert!(cfg.availability.next_period(up, &mut churn_rng).is_none());
        let mut crash_rng = self.root_rng.fork_indexed("crash", id.raw());
        if let Some(t) = cfg.crash.resolve(&mut crash_rng) {
            self.push_external(
                id,
                t.max(self.now),
                LiveKind::Crash(id, CrashCause::Organic),
            );
        }
        Ok(id)
    }

    /// Installs an actor on a device; its `on_start` runs at the current
    /// virtual time once the engine is stepped. Install order is part of
    /// the deterministic contract (it consumes per-device sequence
    /// numbers), matching [`edgelet_sim::Simulation::install_actor`].
    pub fn install_actor(&mut self, device: DeviceId, actor: Box<dyn Actor>) {
        let w = device.index() % self.workers.len();
        let state = self.workers[w].device_mut(device);
        assert!(
            state.actor.is_none(),
            "device {device} already has an actor"
        );
        state.actor = Some(actor);
        self.push_external(device, self.now, LiveKind::Start(device));
    }

    /// Schedules a scripted crash ("power off a device at will").
    pub fn crash_at(&mut self, device: DeviceId, at: SimTime) {
        self.push_external(
            device,
            at.max(self.now),
            LiveKind::Crash(device, CrashCause::Organic),
        );
    }

    fn push_external(&mut self, origin: DeviceId, at: SimTime, kind: LiveKind) {
        let w_origin = origin.index() % self.workers.len();
        let seq = self.workers[w_origin].next_seq(origin);
        self.real_pending += 1;
        let target = kind.target();
        let w = target.index() % self.workers.len();
        self.workers[w].heap.push(LiveEvent {
            at,
            origin: origin.raw(),
            seq,
            kind,
        });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Metric counters accumulated so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The event trace (empty unless `trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The epoch this engine stamps on every envelope.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs until quiescent or `max_events` is hit. Returns the final
    /// virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX, None);
        self.now
    }

    /// Runs until the world drains, virtual time would pass `deadline`,
    /// the event budget is exhausted, or `abort` is raised (checked at
    /// window barriers — the wall-clock hook for live deadlines).
    ///
    /// Window-by-window this follows the simulator's
    /// `run_windowed_parallel` decision loop; see the module docs for
    /// why the outcomes are bit-identical.
    pub fn run_until(&mut self, deadline: SimTime, abort: Option<&AtomicBool>) -> ExitReason {
        let width = self.lookahead_us.max(1);
        let deadline_us = deadline.as_micros();
        let worker_count = self.workers.len();
        let max_events = self.config.max_events;
        let need_kind = self.classifier.is_some() && self.trace.enabled();
        let env = LiveEnv {
            network: &self.config.network,
            classifier: self.classifier,
            need_kind,
            trace_enabled: self.trace.enabled(),
            device_count: self.device_count,
            epoch: self.epoch,
            transport: self.transport.as_ref(),
        };
        let transport = self.transport.as_ref();
        let epoch = self.epoch;
        let metrics = &mut self.metrics;
        let trace = &mut self.trace;
        let real_pending = &mut self.real_pending;
        let now = &mut self.now;
        let cell_open_until = &mut self.cell_open_until;

        let mut min_at: Option<u64> = None;
        for w in self.workers.iter() {
            min_at = fold_min(min_at, w.heap.peek().map(|e| e.at.as_micros()));
        }
        for lane in 0..worker_count {
            min_at = fold_min(min_at, transport.pending(epoch, lane).map(|(_, m)| m));
        }

        let ctl = Ctl::default();
        let steal = StealCtx {
            claim: AtomicU64::new(0),
            decoded: EpochGate::new(),
            staging: (0..worker_count).map(|_| Mutex::new(Vec::new())).collect(),
        };
        let mailboxes: Vec<Mutex<Vec<Envelope>>> =
            (0..worker_count).map(|_| Mutex::new(Vec::new())).collect();
        let slots: Vec<Mutex<Option<RoundReport>>> =
            (0..worker_count).map(|_| Mutex::new(None)).collect();

        let exit = std::thread::scope(|scope| {
            for worker in self.workers.iter_mut() {
                let env = &env;
                let ctl = &ctl;
                let steal = &steal;
                let mailboxes = &mailboxes[..];
                let slots = &slots[..];
                scope.spawn(move || worker_loop(worker, env, ctl, steal, mailboxes, slots));
            }
            let mut expected_done = 0u64;
            let mut reports: Vec<RoundReport> = Vec::with_capacity(worker_count);
            let mut parked: Vec<Envelope> = Vec::new();
            let result = loop {
                if abort.is_some_and(|a| a.load(Ordering::Acquire)) {
                    break ExitReason::Aborted;
                }
                let Some(m) = min_at else {
                    break ExitReason::Quiescent;
                };
                if m >= *cell_open_until && *real_pending == 0 {
                    break ExitReason::Quiescent;
                }
                if m > deadline_us {
                    *now = deadline;
                    break ExitReason::Deadline;
                }
                if metrics.events_processed >= max_events {
                    break ExitReason::Budget;
                }
                // Same window geometry as the simulator: one lookahead
                // starting at the global minimum pending time.
                let window_end = m.saturating_add(width);
                *cell_open_until = window_end;
                ctl.window_end.store(window_end, Ordering::Relaxed);
                ctl.clip.store(deadline_us, Ordering::Relaxed);
                ctl.budget
                    .store(max_events - metrics.events_processed, Ordering::Relaxed);
                // The gate's internal lock publishes the Relaxed stores
                // above to workers woken by this bump.
                ctl.generation.add(1);
                expected_done += worker_count as u64;
                ctl.done.wait_min(expected_done);
                reports.clear();
                let mut missing = false;
                for slot in &slots {
                    match lock(slot).take() {
                        Some(r) => reports.push(r),
                        None => missing = true,
                    }
                }
                if missing {
                    // A worker died (actor panic); leaving the scope
                    // joins the workers and propagates the panic.
                    break ExitReason::Aborted;
                }
                // ---- barrier merge (the simulator's merge_reports) ----
                let mut next_min: Option<u64> = None;
                for report in reports.iter_mut() {
                    let d = &report.out.deltas;
                    metrics.messages_sent += d.sent;
                    metrics.messages_delivered += d.delivered;
                    metrics.messages_dropped += d.dropped;
                    metrics.messages_corrupted += d.corrupted;
                    metrics.messages_to_crashed += d.to_crashed;
                    metrics.bytes_sent += d.bytes_sent;
                    metrics.delivery_delay.merge(&d.delay);
                    metrics.crashes += d.crashes;
                    metrics.events_processed += d.events;
                    *real_pending = ((*real_pending as i64) + d.real_pending).max(0) as u64;
                    *now = (*now).max(d.last_at);
                    next_min = fold_min(next_min, report.heap_min);
                    let _ = report.hit_budget;
                    parked.append(&mut report.out.parked);
                }
                // Streaming k-way merge of the workers' pre-sorted
                // journals: repeatedly take the smallest head by the
                // canonical `(at, origin, seq, intra)` key. No
                // concatenation, no re-sort; journal buffers keep their
                // capacity for recycling.
                {
                    let mut heads: Vec<_> = reports
                        .iter_mut()
                        .map(|r| r.out.journal.drain(..).peekable())
                        .collect();
                    loop {
                        let mut best: Option<usize> = None;
                        let mut best_key = (SimTime::ZERO, 0u64, 0u64, 0u32);
                        for (i, head) in heads.iter_mut().enumerate() {
                            if let Some(e) = head.peek() {
                                let key = (e.at, e.origin, e.seq, e.intra);
                                if best.is_none() || key < best_key {
                                    best = Some(i);
                                    best_key = key;
                                }
                            }
                        }
                        let Some(i) = best else { break };
                        let Some(entry) = heads[i].next() else { break };
                        match entry.item {
                            JItem::Trace(ev) => trace.record(entry.at, ev),
                            JItem::Observe(name, value) => metrics.observe(name, value),
                        }
                    }
                }
                // Re-submit backpressured envelopes while every worker is
                // idle; a still-full lane spills into the destination's
                // mailbox so no envelope is ever invisible to the next
                // window decision.
                for e in parked.drain(..) {
                    match transport.submit(e.clone()) {
                        Ok(()) => {}
                        Err(_) => {
                            let dest = e.to.index() % worker_count;
                            lock(&mailboxes[dest]).push(e);
                        }
                    }
                }
                for (lane, mailbox) in mailboxes.iter().enumerate().take(worker_count) {
                    next_min = fold_min(next_min, transport.pending(epoch, lane).map(|(_, m)| m));
                    let mb_min = lock(mailbox).iter().map(|e| e.deliver_at_us).min();
                    next_min = fold_min(next_min, mb_min);
                }
                min_at = next_min;
                // Hand the emptied reports back through the slots so the
                // next window reuses their buffers.
                for (slot, mut report) in slots.iter().zip(reports.drain(..)) {
                    report.out.reset();
                    *lock(slot) = Some(report);
                }
            };
            ctl.stop.store(true, Ordering::Release);
            // Wake parked workers so they observe `stop` and exit.
            ctl.generation.add(1);
            result
        });
        // Workers are joined; flush mailbox spills and staged deliveries
        // left by an early exit back into the owning heaps so state
        // stays consistent.
        for (dest, mb) in mailboxes.into_iter().enumerate() {
            let envelopes = mb.into_inner().unwrap_or_else(|e| e.into_inner());
            for e in envelopes {
                self.workers[dest].ingest(e);
            }
        }
        for (dest, st) in steal.staging.into_iter().enumerate() {
            let envelopes = st.into_inner().unwrap_or_else(|e| e.into_inner());
            for e in envelopes {
                self.workers[dest].ingest(e);
            }
        }
        if exit == ExitReason::Quiescent && deadline != SimTime::MAX {
            self.now = deadline;
        }
        exit
    }
}

fn fold_min(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}
