//! Durable service state: WAL records, idempotent replay, crash points.
//!
//! The [`crate::service::QueryService`] can run over a
//! [`edgelet_store::DurableBackend`]: before a query executes, a
//! [`WalRecord::Intent`] is appended (and synced) to the log; after it
//! finishes, a [`WalRecord::Completion`] carrying the result payload,
//! the per-query liability ledger, and the trace digest follows. A
//! crash between the two leaves a *pending intent*: on restart the
//! recovered service re-executes it under its original epoch when the
//! same spec is resubmitted — the worlds are seeded from the spec, so
//! the re-run is byte-identical to the run the crash interrupted
//! (proved by `tests/durability_restart.rs`).
//!
//! Replay is **idempotent**: [`DurableState::apply`] keys applications
//! by epoch in an `applied` set, so replaying a WAL segment twice —
//! which happens when a crash lands between a completion append and the
//! checkpoint that would subsume it — never double-charges the
//! cumulative ledger. This generalizes the combiner's `seen_partials`
//! dedup guard (PR 3) from message delivery to storage replay.
//!
//! See `docs/STORAGE.md` for the full recovery model.

use crate::harness::LiveRun;
use edgelet_exec::Ledger;
use edgelet_query::QuerySpec;
use edgelet_util::{Error, Result};
use edgelet_wire::crc::crc32;
use edgelet_wire::{from_bytes, to_bytes, Decode, Encode, Reader, Writer};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Identity of a query spec as persisted in intent records: the CRC-32
/// of its canonical wire encoding. Recovery matches a resubmitted spec
/// against pending intents by this digest instead of persisting the
/// whole privacy/resilience configuration — the caller rebuilds the
/// world; the digest proves it is asking for the same computation.
pub fn spec_digest(spec: &QuerySpec) -> u32 {
    crc32(&to_bytes(spec))
}

/// CRC-32 over the externally visible outcome of one run — result
/// payload, liability ledger, trace digest — in their wire encodings.
/// Two runs with equal `state_crc` delivered byte-identical results;
/// the CLI surfaces it so restart-parity checks need no file diffing.
pub fn state_crc(run: &LiveRun) -> u32 {
    let mut w = Writer::new();
    run.report.result_payload.encode(&mut w);
    run.report.ledger.encode(&mut w);
    run.trace_digest.encode(&mut w);
    crc32(&w.into_bytes())
}

const TAG_INTENT: u8 = 0;
const TAG_COMPLETION: u8 = 1;

/// One record in the service WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Logged (and synced) before a query executes: the admitted epoch
    /// and the digest of the spec it will run.
    Intent {
        /// The epoch the query was admitted under.
        epoch: u64,
        /// [`spec_digest`] of the admitted spec.
        spec_digest: u32,
    },
    /// Logged after a query finishes, before its effects are treated as
    /// durable.
    Completion {
        /// The epoch the query ran under.
        epoch: u64,
        /// The raw combiner result payload the Querier received.
        result_payload: Option<Vec<u8>>,
        /// The per-query liability ledger.
        ledger: Ledger,
        /// Trace digest, when tracing was enabled.
        trace_digest: Option<u64>,
    },
}

impl WalRecord {
    /// The epoch this record belongs to.
    pub fn epoch(&self) -> u64 {
        match self {
            WalRecord::Intent { epoch, .. } | WalRecord::Completion { epoch, .. } => *epoch,
        }
    }
}

impl Encode for WalRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            WalRecord::Intent { epoch, spec_digest } => {
                TAG_INTENT.encode(w);
                epoch.encode(w);
                spec_digest.encode(w);
            }
            WalRecord::Completion {
                epoch,
                result_payload,
                ledger,
                trace_digest,
            } => {
                TAG_COMPLETION.encode(w);
                epoch.encode(w);
                result_payload.encode(w);
                ledger.encode(w);
                trace_digest.encode(w);
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match u8::decode(r)? {
            TAG_INTENT => Ok(WalRecord::Intent {
                epoch: u64::decode(r)?,
                spec_digest: u32::decode(r)?,
            }),
            TAG_COMPLETION => Ok(WalRecord::Completion {
                epoch: u64::decode(r)?,
                result_payload: Option::<Vec<u8>>::decode(r)?,
                ledger: Ledger::decode(r)?,
                trace_digest: Option::<u64>::decode(r)?,
            }),
            tag => Err(Error::Protocol(format!("unknown WAL record tag {tag}"))),
        }
    }
}

/// The durable core of the service, reconstructed on restart from the
/// checkpoint plus the WAL records after it.
#[derive(Debug, Clone, Default)]
pub struct DurableState {
    /// The next epoch to allocate (one past the highest seen).
    pub next_epoch: u64,
    /// Cumulative crowd-liability ledger over every applied completion.
    pub ledger: Ledger,
    /// Epochs whose completions have been applied — the idempotence
    /// guard: an epoch in this set is never applied again.
    pub applied: BTreeSet<u64>,
    /// Intents without a completion: `epoch -> spec digest`. These are
    /// the queries a crash interrupted; a resubmission of a spec with a
    /// matching digest re-runs under the recorded epoch.
    pub pending: BTreeMap<u64, u32>,
}

impl DurableState {
    /// Applies one record, idempotently: re-applying a record for an
    /// epoch already in `applied` is a no-op, so a WAL segment can be
    /// replayed any number of times without double-charging the ledger.
    pub fn apply(&mut self, record: &WalRecord) {
        self.next_epoch = self.next_epoch.max(record.epoch() + 1);
        match record {
            WalRecord::Intent { epoch, spec_digest } => {
                if !self.applied.contains(epoch) {
                    self.pending.insert(*epoch, *spec_digest);
                }
            }
            WalRecord::Completion { epoch, ledger, .. } => {
                if self.applied.insert(*epoch) {
                    self.ledger.merge(ledger);
                    self.pending.remove(epoch);
                }
            }
        }
    }

    /// Decodes and applies a slice of raw WAL payloads in order.
    /// Accepts anything byte-slice-like — recovery hands zero-copy
    /// [`edgelet_util::Payload`] slices over the segment buffers
    /// straight in, with no per-record materialization. Returns the
    /// number of records applied.
    pub fn replay<B: AsRef<[u8]>>(&mut self, payloads: &[B]) -> Result<usize> {
        for payload in payloads {
            let record: WalRecord = from_bytes(payload.as_ref())?;
            self.apply(&record);
        }
        Ok(payloads.len())
    }

    /// The smallest pending epoch whose intent digest matches, if any.
    pub fn pending_for(&self, digest: u32) -> Option<u64> {
        self.pending
            .iter()
            .find(|(_, d)| **d == digest)
            .map(|(e, _)| *e)
    }
}

impl Encode for DurableState {
    fn encode(&self, w: &mut Writer) {
        self.next_epoch.encode(w);
        self.ledger.encode(w);
        // BTreeSet iterates sorted; encode as a canonical Vec.
        let applied: Vec<u64> = self.applied.iter().copied().collect();
        applied.encode(w);
        self.pending.encode(w);
    }
}

impl Decode for DurableState {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Self {
            next_epoch: u64::decode(r)?,
            ledger: Ledger::decode(r)?,
            applied: Vec::<u64>::decode(r)?.into_iter().collect(),
            pending: BTreeMap::decode(r)?,
        })
    }
}

/// Scripted crash points in the durable submit path, named after what
/// is durable when the crash hits:
///
/// * `after-admit` — the intent is logged; the query never ran;
/// * `mid-query` — the query executed, but its completion is not
///   logged: durably indistinguishable from `after-admit`;
/// * `before-checkpoint` — the completion is logged but not yet folded
///   into a checkpoint: recovery must replay it (idempotently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash right after the intent record is durable.
    AfterAdmit,
    /// Crash after execution, before the completion record.
    MidQuery,
    /// Crash after the completion record, before the checkpoint.
    BeforeCheckpoint,
}

impl CrashPoint {
    /// All points, in submit-path order.
    pub const ALL: [CrashPoint; 3] = [
        CrashPoint::AfterAdmit,
        CrashPoint::MidQuery,
        CrashPoint::BeforeCheckpoint,
    ];

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::AfterAdmit => "after-admit",
            CrashPoint::MidQuery => "mid-query",
            CrashPoint::BeforeCheckpoint => "before-checkpoint",
        }
    }

    /// Parses a CLI-facing name.
    pub fn parse(s: &str) -> Option<Self> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Invoked when a scripted [`CrashPoint`] trips. The in-process tests
/// install a handler that panics (and `catch_unwind` at the call site);
/// the CLI installs `std::process::abort` so the whole process dies
/// exactly as a power cut would.
pub type CrashHandler = Arc<dyn Fn(CrashPoint) + Send + Sync>;

/// Durability knobs for a [`crate::service::QueryService`].
#[derive(Clone)]
pub struct DurabilityConfig {
    /// Checkpoint after this many applied completions; `0` disables
    /// checkpointing (the WAL then grows without bound and recovery
    /// replays everything — the analyzer warns with `W141`).
    pub checkpoint_every: u64,
    /// Group-commit window: how long a commit leader waits for
    /// companion records before issuing the batch's single sync.
    /// `Duration::ZERO` (the default) syncs immediately — coalescing
    /// still happens naturally under contention. Large windows trade
    /// submit latency for sync amortization; the analyzer warns with
    /// `W143` when the window eats into the query wall deadline.
    pub commit_window: std::time::Duration,
    /// Rotate the active WAL segment once it would grow past this many
    /// bytes; `0` disables rotation (one unbounded segment). Segments
    /// sealed behind a checkpoint are deleted, bounding disk. The
    /// analyzer warns with `W144` when the segment size is so small
    /// that every checkpoint interval churns through multiple segments.
    pub segment_bytes: u64,
    /// Scripted crash point, if any.
    pub crash_at: Option<CrashPoint>,
    /// What a tripped crash point does. `None` panics with the point's
    /// name (unwind-safe for tests).
    pub crash_handler: Option<CrashHandler>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_every: 8,
            commit_window: std::time::Duration::ZERO,
            segment_bytes: edgelet_store::groupcommit::DEFAULT_SEGMENT_BYTES,
            crash_at: None,
            crash_handler: None,
        }
    }
}

impl std::fmt::Debug for DurabilityConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityConfig")
            .field("checkpoint_every", &self.checkpoint_every)
            .field("commit_window", &self.commit_window)
            .field("segment_bytes", &self.segment_bytes)
            .field("crash_at", &self.crash_at)
            .field("crash_handler", &self.crash_handler.as_ref().map(|_| "…"))
            .finish()
    }
}

impl DurabilityConfig {
    /// Trips `point` if it is the scripted crash point. The handler is
    /// expected not to return; if it does (or none is installed), this
    /// panics, which the in-process restart tests catch.
    pub(crate) fn trip(&self, point: CrashPoint) {
        if self.crash_at == Some(point) {
            if let Some(handler) = &self.crash_handler {
                handler(point);
            }
            panic!("scripted crash point tripped: {point}");
        }
    }
}

/// What recovery found when a durable service was (re)constructed.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// A checkpoint blob was present and loaded.
    pub checkpoint_loaded: bool,
    /// WAL records replayed on top of the checkpoint.
    pub records_replayed: usize,
    /// Bytes dropped repairing a torn tail, if the log needed it.
    pub repaired_tail: Option<u64>,
    /// Epochs with an intent but no completion, awaiting re-execution.
    pub pending: Vec<u64>,
    /// The service came up drained (read-only): why.
    pub drained: Option<String>,
}

impl RecoveryReport {
    /// True when recovery had anything to do: a checkpoint, replayed
    /// records, or a tail repair. Fresh logs recover trivially.
    pub fn recovered_anything(&self) -> bool {
        self.checkpoint_loaded || self.records_replayed > 0 || self.repaired_tail.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_util::ids::DeviceId;

    fn completion(epoch: u64, tuples: u64) -> WalRecord {
        let mut ledger = Ledger::default();
        ledger.raw_tuples(DeviceId::new(1), tuples);
        WalRecord::Completion {
            epoch,
            result_payload: Some(vec![1, 2, 3]),
            ledger,
            trace_digest: Some(0xfeed),
        }
    }

    #[test]
    fn wal_records_round_trip() {
        let records = [
            WalRecord::Intent {
                epoch: 7,
                spec_digest: 0xdead_beef,
            },
            completion(7, 42),
            WalRecord::Completion {
                epoch: 8,
                result_payload: None,
                ledger: Ledger::default(),
                trace_digest: None,
            },
        ];
        for rec in &records {
            let back: WalRecord = from_bytes(&to_bytes(rec)).unwrap();
            assert_eq!(&back, rec);
        }
        assert!(from_bytes::<WalRecord>(&[9u8]).is_err(), "unknown tag");
    }

    #[test]
    fn replaying_a_segment_twice_is_idempotent() {
        // The ledger-idempotence pin: the same WAL segment applied twice
        // yields identical balances — no double charge.
        let segment: Vec<Vec<u8>> = vec![
            to_bytes(&WalRecord::Intent {
                epoch: 1,
                spec_digest: 0xaa,
            }),
            to_bytes(&completion(1, 100)),
            to_bytes(&WalRecord::Intent {
                epoch: 2,
                spec_digest: 0xbb,
            }),
        ];
        let mut once = DurableState::default();
        once.replay(&segment).unwrap();
        let mut twice = DurableState::default();
        twice.replay(&segment).unwrap();
        twice.replay(&segment).unwrap();
        assert_eq!(once.ledger.entries(), twice.ledger.entries());
        assert_eq!(
            once.ledger.entries()[&DeviceId::new(1)].raw_tuples_seen,
            100
        );
        assert_eq!(once.applied, twice.applied);
        assert_eq!(once.pending, twice.pending);
        assert_eq!(twice.pending_for(0xbb), Some(2));
        assert_eq!(twice.pending_for(0xcc), None);
        assert_eq!(twice.next_epoch, 3);
    }

    #[test]
    fn completion_clears_pending_and_late_intent_is_ignored() {
        let mut st = DurableState::default();
        st.apply(&WalRecord::Intent {
            epoch: 4,
            spec_digest: 0x11,
        });
        assert_eq!(st.pending_for(0x11), Some(4));
        st.apply(&completion(4, 10));
        assert!(st.pending.is_empty());
        // An intent replayed after its completion (double replay of an
        // unordered mix) must not resurrect the pending entry.
        st.apply(&WalRecord::Intent {
            epoch: 4,
            spec_digest: 0x11,
        });
        assert!(st.pending.is_empty());
    }

    #[test]
    fn state_round_trips_through_checkpoint_encoding() {
        let mut st = DurableState::default();
        st.apply(&WalRecord::Intent {
            epoch: 1,
            spec_digest: 0x1,
        });
        st.apply(&completion(1, 5));
        st.apply(&WalRecord::Intent {
            epoch: 2,
            spec_digest: 0x2,
        });
        let back: DurableState = from_bytes(&to_bytes(&st)).unwrap();
        assert_eq!(back.next_epoch, st.next_epoch);
        assert_eq!(back.applied, st.applied);
        assert_eq!(back.pending, st.pending);
        assert_eq!(back.ledger.entries(), st.ledger.entries());
    }

    #[test]
    fn crash_point_names_round_trip() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(CrashPoint::parse("nonsense"), None);
    }

    #[test]
    fn trip_panics_on_the_scripted_point_only() {
        let cfg = DurabilityConfig {
            crash_at: Some(CrashPoint::MidQuery),
            ..DurabilityConfig::default()
        };
        cfg.trip(CrashPoint::AfterAdmit); // not scripted: returns
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cfg.trip(CrashPoint::MidQuery)
        }));
        assert!(result.is_err());
        DurabilityConfig::default().trip(CrashPoint::MidQuery); // no script
    }
}
