//! Building a live world from an enrolled [`Platform`] and running one
//! query on it — the cross-engine parity entry point.
//!
//! [`run_live_query`] mirrors [`Platform::run_query`] step for step:
//! same plan (`plan_query`), same world seed (`Platform::sim_seed`),
//! same device registration order and RNG fork schedule as
//! `Platform::build_simulation`, same actor wiring
//! ([`edgelet_exec::assemble_plan`]) installed in the same order, same
//! deadline, same report construction
//! ([`edgelet_exec::finish_report`]). The only difference is the host:
//! a [`LiveEngine`] over worker threads and a [`Transport`] instead of
//! the inline simulator — which is exactly the difference the parity
//! harness (`tests/live_parity.rs`) proves invisible.

use crate::engine::{ExitReason, LiveConfig, LiveEngine};
use edgelet_core::{Platform, PlatformConfig};
use edgelet_exec::{assemble_plan, finish_report, ExecutionReport};
use edgelet_query::{PrivacyConfig, QueryPlan, QuerySpec, ResilienceConfig};
use edgelet_sim::{CrashPlan, DeviceConfig, Duration, SimTime, TraceRecord};
use edgelet_util::ids::DeviceId;
use edgelet_util::Result;
use edgelet_wire::Transport;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Per-run options for the live harness.
#[derive(Debug, Clone)]
pub struct LiveRunOptions {
    /// Worker threads hosting the device population.
    pub workers: usize,
    /// The epoch stamped on every envelope; the caller must have
    /// registered it on the transport (lanes = `workers`).
    pub epoch: u64,
    /// Scripted crashes `(device, at)`, applied after actor install —
    /// the live counterpart of [`edgelet_sim::Simulation::crash_at`].
    pub crash_script: Vec<(DeviceId, SimTime)>,
}

impl LiveRunOptions {
    /// Options for a single-worker run under `epoch`.
    pub fn new(workers: usize, epoch: u64) -> Self {
        LiveRunOptions {
            workers,
            epoch,
            crash_script: Vec::new(),
        }
    }
}

/// Everything one live query execution produced — the live counterpart
/// of [`edgelet_core::RunResult`].
#[derive(Debug)]
pub struct LiveRun {
    /// The executed plan.
    pub plan: QueryPlan,
    /// The execution report (including `result_payload`, the bytes the
    /// parity harness compares).
    pub report: ExecutionReport,
    /// Trace digest, when tracing was enabled.
    pub trace_digest: Option<u64>,
    /// The recorded trace events.
    pub trace: Vec<TraceRecord>,
    /// Why the engine stopped.
    pub exit: ExitReason,
}

/// Builds a [`LiveEngine`] world equivalent to the simulated world
/// `Platform::build_simulation` would create for `spec`: same seed,
/// same device order, same RNG fork schedule, same crash draws.
///
/// Fails if the platform configuration needs simulator-only features
/// (churn models, zero-lookahead networks, or a non-empty fault plan).
pub fn build_live_world(
    platform: &Platform,
    spec: &QuerySpec,
    transport: Arc<dyn Transport>,
    opts: &LiveRunOptions,
) -> Result<LiveEngine> {
    let cfg: &PlatformConfig = platform.config();
    if let Some(fault_plan) = &cfg.fault_plan {
        if !fault_plan.rules.is_empty() {
            return Err(edgelet_util::Error::InvalidConfig(
                "live runtime does not support fault-injection plans; \
                 run fault campaigns on the simulator"
                    .into(),
            ));
        }
    }
    let mut engine = LiveEngine::new(
        LiveConfig {
            network: cfg.network.to_model(),
            trace_capacity: cfg.trace_capacity,
            workers: opts.workers,
            ..LiveConfig::default()
        },
        platform.sim_seed(spec),
        transport,
        opts.epoch,
    )?;
    let window = if cfg.crash_at_start {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(spec.deadline_secs)
    };
    for entry in platform.directory().entries() {
        let (availability, crash_p) = if entry.contributes_data {
            (
                cfg.contributor_availability.clone(),
                cfg.contributor_crash_probability,
            )
        } else {
            (
                cfg.processor_availability.clone(),
                cfg.processor_crash_probability,
            )
        };
        let dev = engine.add_device(DeviceConfig {
            availability,
            crash: CrashPlan::Bernoulli { p: crash_p, window },
        })?;
        debug_assert_eq!(dev, entry.device, "device ids must match enrollment");
    }
    let q = engine.add_device(DeviceConfig::default())?;
    debug_assert_eq!(q, platform.querier());
    if cfg.fault_plan.is_some() {
        // An installed (empty) fault plan means the platform wants
        // protocol-kind classification in traces, same as the simulator.
        engine.set_classifier(edgelet_exec::messages::classify_payload);
    }
    Ok(engine)
}

/// A fully planned, built, and actor-installed live world, stopped just
/// short of execution — the construction half of [`run_live_query`].
///
/// Hosts that drive the rounds themselves (the multi-process socket
/// runtime in `edgelet-net`) take this apart: the worker processes
/// dismantle `engine` via [`LiveEngine::into_parts`] and keep their
/// slice, the daemon keeps `plan` and the assembly handles for
/// [`edgelet_exec::finish_report`]. `assembly.installs` comes back
/// empty — every actor is already installed on `engine`.
pub struct PreparedQuery {
    /// The executed plan.
    pub plan: QueryPlan,
    /// The built world, every actor installed, not yet stepped.
    pub engine: LiveEngine,
    /// The assembly's report-side handles (`sliced_queries`, `record`,
    /// `ledger`); `installs` is drained.
    pub assembly: edgelet_exec::PlanAssembly,
}

/// Plans one query and builds its live world with every actor installed
/// and the crash script applied, without running it. The deterministic
/// construction contract is identical to [`run_live_query`] — same
/// plan, same seed, same install order — so any two hosts calling this
/// with the same inputs hold bit-identical worlds.
pub fn prepare_live_query(
    platform: &Platform,
    spec: &QuerySpec,
    privacy: &PrivacyConfig,
    resilience: &ResilienceConfig,
    transport: Arc<dyn Transport>,
    opts: &LiveRunOptions,
) -> Result<PreparedQuery> {
    let plan = platform.plan_query(spec, privacy, resilience)?;
    let mut engine = build_live_world(platform, spec, transport, opts)?;
    let mut assembly = assemble_plan(
        &plan,
        platform.schema(),
        platform.stores(),
        platform.device_classes(),
        &platform.config().exec,
        platform.root_secret(spec),
        engine.now().as_secs_f64(),
    )?;
    for (dev, actor) in assembly.installs.drain(..) {
        engine.install_actor(dev, actor);
    }
    for (dev, at) in &opts.crash_script {
        engine.crash_at(*dev, *at);
    }
    Ok(PreparedQuery {
        plan,
        engine,
        assembly,
    })
}

/// Plans and executes one query on a live world, mirroring
/// [`Platform::run_query`]. `abort` (when given) is polled at window
/// barriers; raising it stops the run with [`ExitReason::Aborted`].
pub fn run_live_query(
    platform: &Platform,
    spec: &QuerySpec,
    privacy: &PrivacyConfig,
    resilience: &ResilienceConfig,
    transport: Arc<dyn Transport>,
    opts: &LiveRunOptions,
    abort: Option<&AtomicBool>,
) -> Result<LiveRun> {
    let PreparedQuery {
        plan,
        mut engine,
        assembly,
    } = prepare_live_query(platform, spec, privacy, resilience, transport, opts)?;
    let deadline = engine.now() + Duration::from_secs_f64(plan.spec.deadline_secs);
    let exit = engine.run_until(deadline, abort);
    let report = finish_report(
        &plan,
        &assembly.sliced_queries,
        &assembly.record,
        &assembly.ledger,
        engine.metrics(),
    )?;
    let trace_digest = engine.trace().enabled().then(|| engine.trace().digest());
    let trace = engine.trace().records().cloned().collect();
    Ok(LiveRun {
        plan,
        report,
        trace_digest,
        trace,
        exit,
    })
}
