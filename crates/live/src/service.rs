//! The live query service: admission-controlled concurrent serving of
//! many QEPs over one shared device pool and transport.
//!
//! Each admitted query gets a fresh **epoch**: the service registers it
//! on the shared [`StripedTransport`], runs the query on a
//! [`crate::engine::LiveEngine`] whose envelopes all carry that epoch,
//! and retires the epoch when the query ends. Since the transport
//! refuses envelopes for unregistered epochs and lanes are per-epoch,
//! concurrent queries cannot observe each other's traffic — per-query
//! isolation is structural, not cooperative.
//!
//! Admission control is a simple counted gate (`max_concurrent`);
//! rejected submissions fail fast with [`SubmitError::AtCapacity`] so
//! callers can re-queue. A per-query **wall-clock deadline** arms a
//! watchdog thread that raises the engine's abort flag when real time
//! runs out — virtual time is still fully deterministic; only the
//! decision to stop consults the host clock. [`QueryService::shutdown`]
//! drains gracefully: new submissions are refused while in-flight
//! queries run to completion.

use crate::engine::ExitReason;
use crate::harness::{run_live_query, LiveRun, LiveRunOptions};
use crate::transport::StripedTransport;
use edgelet_core::Platform;
use edgelet_query::{PrivacyConfig, QuerySpec, ResilienceConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Service-level knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads per query run.
    pub workers: usize,
    /// Queries admitted concurrently; further submissions are rejected.
    pub max_concurrent: usize,
    /// Per-lane transport mailbox capacity (envelopes).
    pub mailbox_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            max_concurrent: 4,
            mailbox_capacity: 4096,
        }
    }
}

/// Why a submission was not executed.
#[derive(Debug)]
pub enum SubmitError {
    /// The admission gate is full.
    AtCapacity {
        /// The configured concurrency limit.
        limit: usize,
    },
    /// The service is shutting down and refuses new work.
    ShuttingDown,
    /// Planning or execution failed.
    Failed(edgelet_util::Error),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::AtCapacity { limit } => {
                write!(f, "admission rejected: {limit} queries already in flight")
            }
            SubmitError::ShuttingDown => write!(f, "admission rejected: service shutting down"),
            SubmitError::Failed(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl From<edgelet_util::Error> for SubmitError {
    fn from(e: edgelet_util::Error) -> Self {
        SubmitError::Failed(e)
    }
}

/// The service-level outcome of one query.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The epoch the query ran under.
    pub epoch: u64,
    /// Everything the execution produced.
    pub run: LiveRun,
    /// The wall-clock watchdog fired before the query finished.
    pub wall_aborted: bool,
}

impl SubmitOutcome {
    /// A query "succeeded" when it completed within its virtual
    /// deadline, produced a structurally valid result, and was not cut
    /// short by the wall clock — the CLI's exit-code criterion.
    pub fn succeeded(&self) -> bool {
        self.run.report.completed && self.run.report.valid && !self.wall_aborted
    }
}

/// An admission-controlled, multi-query live serving runtime.
pub struct QueryService {
    platform: Platform,
    transport: Arc<StripedTransport>,
    config: ServiceConfig,
    in_flight: Mutex<usize>,
    idle: Condvar,
    next_epoch: AtomicU64,
    shutting_down: AtomicBool,
    watchdog: Watchdog,
}

/// RAII admission slot: releases the gate (and wakes `shutdown`) even
/// if the query run panics.
struct Slot<'a>(&'a QueryService);

impl Drop for Slot<'_> {
    fn drop(&mut self) {
        let mut n = lock(&self.0.in_flight);
        *n = n.saturating_sub(1);
        self.0.idle.notify_all();
    }
}

impl QueryService {
    /// Creates a service over an enrolled platform.
    pub fn new(platform: Platform, config: ServiceConfig) -> Self {
        let transport = Arc::new(StripedTransport::new(config.mailbox_capacity.max(1)));
        QueryService {
            platform,
            transport,
            config,
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            next_epoch: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            watchdog: Watchdog::new(),
        }
    }

    /// The shared transport (inspection: pending lanes, rejected
    /// cross-epoch submissions).
    pub fn transport(&self) -> &Arc<StripedTransport> {
        &self.transport
    }

    /// The platform this service executes against.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Queries currently executing.
    pub fn in_flight(&self) -> usize {
        *lock(&self.in_flight)
    }

    fn acquire(&self) -> Result<Slot<'_>, SubmitError> {
        crate::model::yield_point("service.acquire");
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let limit = self.config.max_concurrent.max(1);
        let mut n = lock(&self.in_flight);
        if *n >= limit {
            return Err(SubmitError::AtCapacity { limit });
        }
        *n += 1;
        Ok(Slot(self))
    }

    /// Runs one query to completion on the calling thread (callers
    /// submit from their own threads to serve concurrently). Fails fast
    /// with an admission error when the gate is full or the service is
    /// draining; `wall_deadline` (host time) arms the watchdog.
    pub fn submit(
        &self,
        spec: &QuerySpec,
        privacy: &PrivacyConfig,
        resilience: &ResilienceConfig,
        wall_deadline: Option<std::time::Duration>,
    ) -> Result<SubmitOutcome, SubmitError> {
        let slot = self.acquire()?;
        let epoch = self.next_epoch.fetch_add(1, Ordering::AcqRel);
        self.transport
            .register_epoch(epoch, self.config.workers.max(1));
        let abort = Arc::new(AtomicBool::new(false));
        let armed = wall_deadline.map(|timeout| self.watchdog.arm(timeout, abort.clone()));
        let opts = LiveRunOptions::new(self.config.workers.max(1), epoch);
        let transport: Arc<dyn edgelet_wire::Transport> = self.transport.clone();
        let result = run_live_query(
            &self.platform,
            spec,
            privacy,
            resilience,
            transport,
            &opts,
            Some(&abort),
        );
        if let Some(id) = armed {
            self.watchdog.disarm(id);
        }
        self.transport.retire_epoch(epoch);
        drop(slot);
        let run = result?;
        let wall_aborted = run.exit == ExitReason::Aborted;
        Ok(SubmitOutcome {
            epoch,
            run,
            wall_aborted,
        })
    }

    /// Graceful shutdown: refuse new submissions, wait for in-flight
    /// queries to finish, and close the transport.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let mut n = lock(&self.in_flight);
        while *n > 0 {
            n = self.idle.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        self.transport.close();
    }
}

/// One armed wall-clock deadline.
struct Deadline {
    id: u64,
    fire_at: std::time::Instant,
    abort: Arc<AtomicBool>,
}

/// Book-keeping behind the shared watchdog thread.
#[derive(Default)]
struct WatchState {
    deadlines: Vec<Deadline>,
    next_id: u64,
    shutdown: bool,
}

/// A wall-clock deadline watchdog shared by every query the service
/// runs: raises each armed `abort` flag once its host-time deadline
/// elapses, unless disarmed first.
///
/// Arming used to spawn a dedicated thread per query; the shared
/// thread (spawned at service construction, parked on a condvar while
/// idle) hoists that per-query cost out of the submit path. Deadlines
/// are a handful at most (`max_concurrent`), so a linear scan per
/// wakeup is fine.
struct Watchdog {
    state: Arc<(Mutex<WatchState>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn new() -> Self {
        let state = Arc::new((Mutex::new(WatchState::default()), Condvar::new()));
        let thread_state = Arc::clone(&state);
        Watchdog {
            state,
            handle: Some(std::thread::spawn(move || Watchdog::run(&thread_state))),
        }
    }

    /// Arms a deadline `timeout` of host time from now; returns the id
    /// to disarm it with.
    fn arm(&self, timeout: std::time::Duration, abort: Arc<AtomicBool>) -> u64 {
        // Wall-clock deadlines are real time by definition.
        let fire_at = std::time::Instant::now() + timeout; // lint: allow(E102 wall-clock query deadline watchdog)
        let (st, cv) = &*self.state;
        let mut state = lock(st);
        state.next_id += 1;
        let id = state.next_id;
        state.deadlines.push(Deadline { id, fire_at, abort });
        cv.notify_all();
        id
    }

    /// Disarms a deadline; a no-op if it already fired.
    fn disarm(&self, id: u64) {
        let (st, _) = &*self.state;
        lock(st).deadlines.retain(|d| d.id != id);
    }

    fn run(state: &(Mutex<WatchState>, Condvar)) {
        let (st, cv) = state;
        let mut guard = lock(st);
        loop {
            if guard.shutdown {
                return;
            }
            let now = std::time::Instant::now(); // lint: allow(E102 wall-clock query deadline watchdog)
            let mut earliest: Option<std::time::Instant> = None;
            guard.deadlines.retain(|d| {
                if d.fire_at <= now {
                    d.abort.store(true, Ordering::Release);
                    false
                } else {
                    earliest = Some(earliest.map_or(d.fire_at, |e| e.min(d.fire_at)));
                    true
                }
            });
            guard = match earliest {
                Some(at) => {
                    cv.wait_timeout(guard, at - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
                None => cv.wait(guard).unwrap_or_else(|e| e.into_inner()),
            };
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let (st, cv) = &*self.state;
            lock(st).shutdown = true;
            cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_core::PlatformConfig;
    use std::sync::atomic::AtomicBool;

    fn tiny_platform() -> Platform {
        Platform::build(PlatformConfig {
            contributors: 6,
            processors: 4,
            ..PlatformConfig::default()
        })
    }

    #[test]
    fn admission_gate_counts_and_rejects() {
        let service = QueryService::new(
            tiny_platform(),
            ServiceConfig {
                max_concurrent: 1,
                ..ServiceConfig::default()
            },
        );
        let slot = service.acquire().expect("first slot");
        assert_eq!(service.in_flight(), 1);
        match service.acquire() {
            Err(SubmitError::AtCapacity { limit: 1 }) => {}
            Err(other) => panic!("expected AtCapacity, got {other:?}"),
            Ok(_) => panic!("expected AtCapacity, got an admission"),
        }
        drop(slot);
        assert_eq!(service.in_flight(), 0);
        assert!(service.acquire().is_ok());
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let service = QueryService::new(tiny_platform(), ServiceConfig::default());
        service.shutdown();
        match service.acquire() {
            Err(SubmitError::ShuttingDown) => {}
            Err(other) => panic!("expected ShuttingDown, got {other:?}"),
            Ok(_) => panic!("expected ShuttingDown, got an admission"),
        };
    }

    #[test]
    fn watchdog_fires_after_timeout_and_disarms_cleanly() {
        let w = Watchdog::new();
        let abort = Arc::new(AtomicBool::new(false));
        let id = w.arm(std::time::Duration::from_millis(5), abort.clone());
        while !abort.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        w.disarm(id);
        // A disarmed deadline never fires, and many deadlines share the
        // one thread.
        let abort2 = Arc::new(AtomicBool::new(false));
        let abort3 = Arc::new(AtomicBool::new(false));
        let id2 = w.arm(std::time::Duration::from_secs(3600), abort2.clone());
        let id3 = w.arm(std::time::Duration::from_millis(5), abort3.clone());
        w.disarm(id2);
        while !abort3.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        w.disarm(id3);
        assert!(!abort2.load(Ordering::Acquire));
        drop(w);
    }
}
