//! The live query service: admission-controlled concurrent serving of
//! many QEPs over one shared device pool and transport.
//!
//! Each admitted query gets a fresh **epoch**: the service registers it
//! on the shared [`StripedTransport`], runs the query on a
//! [`crate::engine::LiveEngine`] whose envelopes all carry that epoch,
//! and retires the epoch when the query ends. Since the transport
//! refuses envelopes for unregistered epochs and lanes are per-epoch,
//! concurrent queries cannot observe each other's traffic — per-query
//! isolation is structural, not cooperative.
//!
//! Admission control is a simple counted gate (`max_concurrent`);
//! rejected submissions fail fast with [`SubmitError::AtCapacity`] so
//! callers can re-queue. A per-query **wall-clock deadline** arms a
//! watchdog thread that raises the engine's abort flag when real time
//! runs out — virtual time is still fully deterministic; only the
//! decision to stop consults the host clock. [`QueryService::shutdown`]
//! drains gracefully: new submissions are refused while in-flight
//! queries run to completion.

use crate::durable::{
    spec_digest, CrashPoint, DurabilityConfig, DurableState, RecoveryReport, WalRecord,
};
use crate::engine::ExitReason;
use crate::harness::{run_live_query, LiveRun, LiveRunOptions};
use crate::transport::StripedTransport;
use edgelet_core::Platform;
use edgelet_exec::Ledger;
use edgelet_query::{PrivacyConfig, QuerySpec, ResilienceConfig};
use edgelet_store::{DurableBackend, GroupCommitConfig, GroupCommitLog, RetryPolicy};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Service-level knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads per query run.
    pub workers: usize,
    /// Queries admitted concurrently; further submissions are rejected.
    pub max_concurrent: usize,
    /// Per-lane transport mailbox capacity (envelopes).
    pub mailbox_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            max_concurrent: 4,
            mailbox_capacity: 4096,
        }
    }
}

/// Why a submission was not executed.
#[derive(Debug)]
pub enum SubmitError {
    /// The admission gate is full.
    AtCapacity {
        /// The configured concurrency limit.
        limit: usize,
    },
    /// The service is shutting down and refuses new work.
    ShuttingDown,
    /// The durable backend is unavailable: the service has drained to
    /// read-only mode and refuses work it could not make durable.
    ReadOnly {
        /// Why the service drained.
        reason: String,
    },
    /// Planning or execution failed.
    Failed(edgelet_util::Error),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::AtCapacity { limit } => {
                write!(f, "admission rejected: {limit} queries already in flight")
            }
            SubmitError::ShuttingDown => write!(f, "admission rejected: service shutting down"),
            SubmitError::ReadOnly { reason } => {
                write!(
                    f,
                    "admission rejected: service drained to read-only ({reason})"
                )
            }
            SubmitError::Failed(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl From<edgelet_util::Error> for SubmitError {
    fn from(e: edgelet_util::Error) -> Self {
        SubmitError::Failed(e)
    }
}

/// The service-level outcome of one query.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The epoch the query ran under.
    pub epoch: u64,
    /// Everything the execution produced.
    pub run: LiveRun,
    /// The wall-clock watchdog fired before the query finished.
    pub wall_aborted: bool,
    /// The query re-ran a pending intent recovered from the WAL (a
    /// crash interrupted it before its completion was durable).
    pub recovered: bool,
}

impl SubmitOutcome {
    /// A query "succeeded" when it completed within its virtual
    /// deadline, produced a structurally valid result, and was not cut
    /// short by the wall clock — the CLI's exit-code criterion.
    pub fn succeeded(&self) -> bool {
        self.run.report.completed && self.run.report.valid && !self.wall_aborted
    }
}

/// Offloads one epoch's execution to an external runtime — the
/// multi-process socket deployment's daemon-side coordinator
/// (`edgelet-net`).
///
/// The contract keeps the service deterministic regardless of what the
/// remote side does:
///
/// * `None` — the remote runtime cannot take this query (no worker
///   processes registered, or they are busy). The service runs the
///   epoch in-process as if no remote executor were installed.
/// * `Some(Ok(run))` — the remote run completed; the service uses it
///   verbatim.
/// * `Some(Err(_))` — the remote run started and died mid-flight (a
///   worker process was killed, a socket broke). The service falls back
///   to an in-process run of the *same epoch*: the remote path never
///   touches the service's own transport lanes, and both paths build
///   the world from the same spec and seed, so the fallback reproduces
///   byte-identical results — a worker `kill -9` costs wall-clock time,
///   never correctness.
pub trait RemoteExecutor: Send + Sync {
    /// Attempts to run `epoch` remotely; see the trait docs for the
    /// meaning of each return shape. `abort` is the wall-clock watchdog
    /// flag — a remote run should give up promptly once it is raised.
    fn try_run(
        &self,
        epoch: u64,
        spec: &QuerySpec,
        privacy: &PrivacyConfig,
        resilience: &ResilienceConfig,
        abort: &AtomicBool,
    ) -> Option<edgelet_util::Result<LiveRun>>;
}

/// An admission-controlled, multi-query live serving runtime.
pub struct QueryService {
    platform: Platform,
    transport: Arc<StripedTransport>,
    config: ServiceConfig,
    in_flight: Mutex<usize>,
    idle: Condvar,
    next_epoch: AtomicU64,
    shutting_down: AtomicBool,
    watchdog: Watchdog,
    durable: Option<DurableCtl>,
    remote: Mutex<Option<Arc<dyn RemoteExecutor>>>,
    remote_fallbacks: AtomicU64,
}

/// Durable-mode control block: the WAL front end plus the in-memory
/// image of the durable state.
struct DurableCtl {
    log: GroupCommitLog,
    config: DurabilityConfig,
    inner: Mutex<DurableInner>,
    /// Raised when the backend failed permanently: the service keeps
    /// serving reads (inspection) but refuses new submissions.
    drained: AtomicBool,
    drain_reason: Mutex<Option<String>>,
}

struct DurableInner {
    state: DurableState,
    since_checkpoint: u64,
    /// Completions durably appended to the WAL but not yet folded into
    /// `state` by `apply`. A checkpoint taken while this is non-zero
    /// writes a blob that does not cover those records, so it must not
    /// delete the sealed segments that still hold them — compaction is
    /// deferred to the next checkpoint that observes zero.
    unapplied_completions: u64,
}

/// RAII admission slot: releases the gate (and wakes `shutdown`) even
/// if the query run panics.
struct Slot<'a>(&'a QueryService);

impl Drop for Slot<'_> {
    fn drop(&mut self) {
        let mut n = lock(&self.0.in_flight);
        *n = n.saturating_sub(1);
        self.0.idle.notify_all();
    }
}

impl QueryService {
    /// Creates a volatile (memory-only) service over an enrolled
    /// platform.
    pub fn new(platform: Platform, config: ServiceConfig) -> Self {
        Self::build(platform, config, None)
    }

    /// Creates a durable service over `backend`, running recovery
    /// first: the checkpoint is loaded, WAL records after it are
    /// replayed idempotently, a torn tail is repaired, and pending
    /// intents are queued for re-execution. A corrupt WAL or an
    /// unavailable backend does not fail construction — the service
    /// comes up **drained** (read-only) with the reason in the report,
    /// so operators can still inspect state.
    pub fn with_durability(
        platform: Platform,
        config: ServiceConfig,
        backend: Arc<dyn DurableBackend>,
        durability: DurabilityConfig,
    ) -> (Self, RecoveryReport) {
        let log = GroupCommitLog::new(
            backend,
            RetryPolicy::default(),
            GroupCommitConfig {
                window: durability.commit_window,
                segment_bytes: durability.segment_bytes,
                ..GroupCommitConfig::default()
            },
        );
        let mut report = RecoveryReport::default();
        let mut state = DurableState::default();
        let mut drain_reason: Option<String> = None;
        match log.recover() {
            Ok(rec) => {
                report.repaired_tail = rec.repaired;
                if let Some(blob) = &rec.checkpoint {
                    match edgelet_wire::from_bytes::<DurableState>(blob) {
                        Ok(s) => {
                            state = s;
                            report.checkpoint_loaded = true;
                        }
                        Err(e) => drain_reason = Some(format!("checkpoint undecodable: {e}")),
                    }
                }
                if drain_reason.is_none() {
                    match state.replay(&rec.records) {
                        Ok(n) => report.records_replayed = n,
                        Err(e) => drain_reason = Some(format!("WAL record undecodable: {e}")),
                    }
                }
            }
            Err(e) => drain_reason = Some(e.message().to_string()),
        }
        report.pending = state.pending.keys().copied().collect();
        report.drained = drain_reason.clone();
        let next_epoch = state.next_epoch.max(1);
        let ctl = DurableCtl {
            log,
            config: durability,
            inner: Mutex::new(DurableInner {
                state,
                since_checkpoint: 0,
                unapplied_completions: 0,
            }),
            drained: AtomicBool::new(drain_reason.is_some()),
            drain_reason: Mutex::new(drain_reason),
        };
        let service = Self::build(platform, config, Some(ctl));
        service.next_epoch.store(next_epoch, Ordering::Release);
        (service, report)
    }

    fn build(platform: Platform, config: ServiceConfig, durable: Option<DurableCtl>) -> Self {
        let transport = Arc::new(StripedTransport::new(config.mailbox_capacity.max(1)));
        QueryService {
            platform,
            transport,
            config,
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            next_epoch: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            watchdog: Watchdog::new(),
            durable,
            remote: Mutex::new(None),
            remote_fallbacks: AtomicU64::new(0),
        }
    }

    /// Installs (or replaces) the remote executor consulted before each
    /// in-process run; see [`RemoteExecutor`].
    pub fn set_remote(&self, remote: Arc<dyn RemoteExecutor>) {
        *lock(&self.remote) = Some(remote);
    }

    /// Number of epochs that fell back to in-process execution after a
    /// remote attempt declined or failed (0 without a remote executor).
    pub fn remote_fallbacks(&self) -> u64 {
        self.remote_fallbacks.load(Ordering::Acquire)
    }

    /// The shared transport (inspection: pending lanes, rejected
    /// cross-epoch submissions).
    pub fn transport(&self) -> &Arc<StripedTransport> {
        &self.transport
    }

    /// The platform this service executes against.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Queries currently executing.
    pub fn in_flight(&self) -> usize {
        *lock(&self.in_flight)
    }

    fn acquire(&self) -> Result<Slot<'_>, SubmitError> {
        crate::model::yield_point("service.acquire");
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let limit = self.config.max_concurrent.max(1);
        let mut n = lock(&self.in_flight);
        if *n >= limit {
            return Err(SubmitError::AtCapacity { limit });
        }
        *n += 1;
        Ok(Slot(self))
    }

    /// Runs one query to completion on the calling thread (callers
    /// submit from their own threads to serve concurrently). Fails fast
    /// with an admission error when the gate is full or the service is
    /// draining; `wall_deadline` (host time) arms the watchdog.
    ///
    /// In durable mode this logs an intent record before execution and
    /// a completion record after, so a crash anywhere in between is
    /// recoverable; a resubmission of a spec whose intent is pending
    /// from a previous incarnation re-runs under the recorded epoch and
    /// reports `recovered = true`.
    pub fn submit(
        &self,
        spec: &QuerySpec,
        privacy: &PrivacyConfig,
        resilience: &ResilienceConfig,
        wall_deadline: Option<std::time::Duration>,
    ) -> Result<SubmitOutcome, SubmitError> {
        match &self.durable {
            None => {
                let slot = self.acquire()?;
                let epoch = self.next_epoch.fetch_add(1, Ordering::AcqRel);
                let result = self.run_epoch(epoch, spec, privacy, resilience, wall_deadline);
                drop(slot);
                let (run, wall_aborted) = result?;
                Ok(SubmitOutcome {
                    epoch,
                    run,
                    wall_aborted,
                    recovered: false,
                })
            }
            Some(d) => self.submit_durable(d, spec, privacy, resilience, wall_deadline),
        }
    }

    fn submit_durable(
        &self,
        d: &DurableCtl,
        spec: &QuerySpec,
        privacy: &PrivacyConfig,
        resilience: &ResilienceConfig,
        wall_deadline: Option<std::time::Duration>,
    ) -> Result<SubmitOutcome, SubmitError> {
        if d.drained.load(Ordering::Acquire) {
            return Err(self.read_only_error(d));
        }
        let slot = self.acquire()?;
        let digest = spec_digest(spec);
        // A pending intent with this digest is a query a crash
        // interrupted: re-run it under its original epoch instead of
        // admitting a new one (its intent is already durable).
        let (epoch, recovered) = {
            let mut inner = lock(&d.inner);
            match inner.state.pending_for(digest) {
                Some(e) => (e, true),
                None => {
                    let e = self.next_epoch.fetch_add(1, Ordering::AcqRel);
                    inner.state.pending.insert(e, digest);
                    (e, false)
                }
            }
        };
        if !recovered {
            let intent = WalRecord::Intent {
                epoch,
                spec_digest: digest,
            };
            if let Err(err) = d.log.commit(&edgelet_wire::to_bytes(&intent)) {
                lock(&d.inner).state.pending.remove(&epoch);
                self.drain(d, format!("intent append failed: {}", err.message()));
                drop(slot);
                return Err(self.read_only_error(d));
            }
        }
        d.config.trip(CrashPoint::AfterAdmit);
        let result = self.run_epoch(epoch, spec, privacy, resilience, wall_deadline);
        let (run, wall_aborted) = match result {
            Ok(v) => v,
            Err(e) => {
                // The intent stays in the WAL: a deterministic failure
                // will fail identically on re-execution after restart.
                drop(slot);
                return Err(e);
            }
        };
        d.config.trip(CrashPoint::MidQuery);
        let completion = WalRecord::Completion {
            epoch,
            result_payload: run.report.result_payload.clone(),
            ledger: run.report.ledger.clone(),
            trace_digest: run.trace_digest,
        };
        // Raise the unapplied-completion fence *before* the append: a
        // checkpoint racing with this submit must see that a completion
        // may be durable in the WAL without being in its blob, and keep
        // the sealed segments that could hold it.
        lock(&d.inner).unapplied_completions += 1;
        if let Err(err) = d.log.commit(&edgelet_wire::to_bytes(&completion)) {
            // The result exists but is not durable; refusing the submit
            // keeps "Ok means persisted" true.
            lock(&d.inner).unapplied_completions -= 1;
            self.drain(d, format!("completion append failed: {}", err.message()));
            drop(slot);
            return Err(self.read_only_error(d));
        }
        d.config.trip(CrashPoint::BeforeCheckpoint);
        {
            let mut inner = lock(&d.inner);
            inner.state.apply(&completion);
            inner.unapplied_completions -= 1;
            inner.since_checkpoint += 1;
            if d.config.checkpoint_every > 0 && inner.since_checkpoint >= d.config.checkpoint_every
            {
                let blob = edgelet_wire::to_bytes(&inner.state);
                // Sealed segments may only be deleted when every durable
                // completion is covered by the blob we just encoded.
                let drop_sealed = inner.unapplied_completions == 0;
                match d.log.checkpoint(&blob, drop_sealed) {
                    Ok(()) => inner.since_checkpoint = 0,
                    Err(err) => {
                        // The completion is durable in the WAL; only
                        // compaction failed. Keep the outcome, stop
                        // accepting new work.
                        drop(inner);
                        self.drain(d, format!("checkpoint failed: {}", err.message()));
                    }
                }
            }
        }
        drop(slot);
        Ok(SubmitOutcome {
            epoch,
            run,
            wall_aborted,
            recovered,
        })
    }

    /// Executes one query under `epoch`: a remote attempt first when a
    /// [`RemoteExecutor`] is installed, then the in-process engine (the
    /// deterministic fallback) — registering and retiring the epoch on
    /// the shared transport only around the in-process run, since the
    /// remote path moves envelopes over its own sockets.
    fn run_epoch(
        &self,
        epoch: u64,
        spec: &QuerySpec,
        privacy: &PrivacyConfig,
        resilience: &ResilienceConfig,
        wall_deadline: Option<std::time::Duration>,
    ) -> Result<(LiveRun, bool), SubmitError> {
        let abort = Arc::new(AtomicBool::new(false));
        let armed = wall_deadline.map(|timeout| self.watchdog.arm(timeout, abort.clone()));
        // Clone the executor out so the `remote` lock is not held for
        // the duration of the (potentially long) remote run.
        let remote = { lock(&self.remote).clone() };
        let mut remote_run: Option<LiveRun> = None;
        if let Some(r) = remote {
            match r.try_run(epoch, spec, privacy, resilience, &abort) {
                Some(Ok(run)) => remote_run = Some(run),
                Some(Err(_)) | None => {
                    self.remote_fallbacks.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
        let result = match remote_run {
            Some(run) => Ok(run),
            None => {
                self.transport
                    .register_epoch(epoch, self.config.workers.max(1));
                let opts = LiveRunOptions::new(self.config.workers.max(1), epoch);
                let transport: Arc<dyn edgelet_wire::Transport> = self.transport.clone();
                let result = run_live_query(
                    &self.platform,
                    spec,
                    privacy,
                    resilience,
                    transport,
                    &opts,
                    Some(&abort),
                );
                self.transport.retire_epoch(epoch);
                result
            }
        };
        if let Some(id) = armed {
            self.watchdog.disarm(id);
        }
        let run = result?;
        let wall_aborted = run.exit == ExitReason::Aborted;
        Ok((run, wall_aborted))
    }

    fn drain(&self, d: &DurableCtl, reason: String) {
        d.drained.store(true, Ordering::Release);
        let mut r = lock(&d.drain_reason);
        if r.is_none() {
            *r = Some(reason);
        }
    }

    fn read_only_error(&self, d: &DurableCtl) -> SubmitError {
        SubmitError::ReadOnly {
            reason: lock(&d.drain_reason)
                .clone()
                .unwrap_or_else(|| "backend unavailable".into()),
        }
    }

    /// True when the durable backend failed and the service refuses new
    /// submissions (always `false` for a volatile service).
    pub fn is_drained(&self) -> bool {
        self.durable
            .as_ref()
            .is_some_and(|d| d.drained.load(Ordering::Acquire))
    }

    /// Why the service drained, if it did.
    pub fn drain_reason(&self) -> Option<String> {
        self.durable
            .as_ref()
            .and_then(|d| lock(&d.drain_reason).clone())
    }

    /// The cumulative crowd-liability ledger over every durably applied
    /// completion (`None` for a volatile service).
    pub fn cumulative_ledger(&self) -> Option<Ledger> {
        self.durable
            .as_ref()
            .map(|d| lock(&d.inner).state.ledger.clone())
    }

    /// Epochs recovered as pending and not yet re-executed (`None` for
    /// a volatile service).
    pub fn pending_recovery(&self) -> Option<Vec<u64>> {
        self.durable
            .as_ref()
            .map(|d| lock(&d.inner).state.pending.keys().copied().collect())
    }

    /// Graceful shutdown: refuse new submissions, wait for in-flight
    /// queries to finish, and close the transport.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let mut n = lock(&self.in_flight);
        while *n > 0 {
            n = self.idle.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        self.transport.close();
    }
}

/// One armed wall-clock deadline.
struct Deadline {
    id: u64,
    fire_at: std::time::Instant,
    abort: Arc<AtomicBool>,
}

/// Book-keeping behind the shared watchdog thread.
#[derive(Default)]
struct WatchState {
    deadlines: Vec<Deadline>,
    next_id: u64,
    shutdown: bool,
}

/// A wall-clock deadline watchdog shared by every query the service
/// runs: raises each armed `abort` flag once its host-time deadline
/// elapses, unless disarmed first.
///
/// Arming used to spawn a dedicated thread per query; the shared
/// thread (spawned at service construction, parked on a condvar while
/// idle) hoists that per-query cost out of the submit path. Deadlines
/// are a handful at most (`max_concurrent`), so a linear scan per
/// wakeup is fine.
struct Watchdog {
    state: Arc<(Mutex<WatchState>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn new() -> Self {
        let state = Arc::new((Mutex::new(WatchState::default()), Condvar::new()));
        let thread_state = Arc::clone(&state);
        Watchdog {
            state,
            handle: Some(std::thread::spawn(move || Watchdog::run(&thread_state))),
        }
    }

    /// Arms a deadline `timeout` of host time from now; returns the id
    /// to disarm it with.
    fn arm(&self, timeout: std::time::Duration, abort: Arc<AtomicBool>) -> u64 {
        // Wall-clock deadlines are real time by definition.
        let fire_at = std::time::Instant::now() + timeout; // lint: allow(E102 wall-clock query deadline watchdog)
        let (st, cv) = &*self.state;
        let mut state = lock(st);
        state.next_id += 1;
        let id = state.next_id;
        state.deadlines.push(Deadline { id, fire_at, abort });
        cv.notify_all();
        id
    }

    /// Disarms a deadline; a no-op if it already fired.
    fn disarm(&self, id: u64) {
        let (st, _) = &*self.state;
        lock(st).deadlines.retain(|d| d.id != id);
    }

    fn run(state: &(Mutex<WatchState>, Condvar)) {
        let (st, cv) = state;
        let mut guard = lock(st);
        loop {
            if guard.shutdown {
                return;
            }
            let now = std::time::Instant::now(); // lint: allow(E102 wall-clock query deadline watchdog)
            let mut earliest: Option<std::time::Instant> = None;
            guard.deadlines.retain(|d| {
                if d.fire_at <= now {
                    d.abort.store(true, Ordering::Release);
                    false
                } else {
                    earliest = Some(earliest.map_or(d.fire_at, |e| e.min(d.fire_at)));
                    true
                }
            });
            guard = match earliest {
                Some(at) => {
                    cv.wait_timeout(guard, at - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
                None => cv.wait(guard).unwrap_or_else(|e| e.into_inner()),
            };
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let (st, cv) = &*self.state;
            lock(st).shutdown = true;
            cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_core::PlatformConfig;
    use std::sync::atomic::AtomicBool;

    fn tiny_platform() -> Platform {
        Platform::build(PlatformConfig {
            contributors: 6,
            processors: 4,
            ..PlatformConfig::default()
        })
    }

    #[test]
    fn admission_gate_counts_and_rejects() {
        let service = QueryService::new(
            tiny_platform(),
            ServiceConfig {
                max_concurrent: 1,
                ..ServiceConfig::default()
            },
        );
        let slot = service.acquire().expect("first slot");
        assert_eq!(service.in_flight(), 1);
        match service.acquire() {
            Err(SubmitError::AtCapacity { limit: 1 }) => {}
            Err(other) => panic!("expected AtCapacity, got {other:?}"),
            Ok(_) => panic!("expected AtCapacity, got an admission"),
        }
        drop(slot);
        assert_eq!(service.in_flight(), 0);
        assert!(service.acquire().is_ok());
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let service = QueryService::new(tiny_platform(), ServiceConfig::default());
        service.shutdown();
        match service.acquire() {
            Err(SubmitError::ShuttingDown) => {}
            Err(other) => panic!("expected ShuttingDown, got {other:?}"),
            Ok(_) => panic!("expected ShuttingDown, got an admission"),
        };
    }

    #[test]
    fn watchdog_fires_after_timeout_and_disarms_cleanly() {
        let w = Watchdog::new();
        let abort = Arc::new(AtomicBool::new(false));
        let id = w.arm(std::time::Duration::from_millis(5), abort.clone());
        while !abort.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        w.disarm(id);
        // A disarmed deadline never fires, and many deadlines share the
        // one thread.
        let abort2 = Arc::new(AtomicBool::new(false));
        let abort3 = Arc::new(AtomicBool::new(false));
        let id2 = w.arm(std::time::Duration::from_secs(3600), abort2.clone());
        let id3 = w.arm(std::time::Duration::from_millis(5), abort3.clone());
        w.disarm(id2);
        while !abort3.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        w.disarm(id3);
        assert!(!abort2.load(Ordering::Acquire));
        drop(w);
    }
}
