//! `edgelet-live` — the multithreaded live runtime.
//!
//! The simulator (`edgelet-sim`) answers "what would the protocol do";
//! this crate actually *does* it: the same role actors
//! (`edgelet-exec`'s Contributor, Snapshot Builder, Computer, Combiner,
//! Active Backup, Querier) run on std worker threads, exchanging the
//! same `edgelet-wire` bytes over a pluggable, lock-striped, bounded
//! [`Transport`](edgelet_wire::Transport) — no async runtime, no
//! scheduler shims.
//!
//! * [`engine`] — the conservative-window parallel executor, built to
//!   be **bit-equivalent** to the simulator: identical event keys,
//!   per-sender RNG streams, journaled side effects replayed in
//!   canonical order (the parity argument is in the module docs and
//!   `docs/RUNTIME.md`; the proof-by-test is `tests/live_parity.rs`);
//! * [`transport`] — [`transport::StripedTransport`], the in-process
//!   sharded fabric: per-epoch bounded mailbox lanes of serialized
//!   envelopes;
//! * [`harness`] — building a live world from an enrolled
//!   [`Platform`](edgelet_core::Platform) and running one query,
//!   mirroring `Platform::run_query` step for step;
//! * [`service`] — [`service::QueryService`]: admission control,
//!   concurrent multi-query serving with per-query epochs, wall-clock
//!   deadline watchdogs, graceful shutdown;
//! * [`durable`] — durable service state: WAL records (intent /
//!   completion), the idempotent [`durable::DurableState`] replay, spec
//!   digests, scripted [`durable::CrashPoint`]s, and the recovery
//!   report — the service side of the storage layer in
//!   `edgelet-store::wal` (model in `docs/STORAGE.md`, proof-by-test in
//!   `tests/durability_restart.rs`);
//! * [`model`] — the deterministic schedule-exploration harness:
//!   [`model::yield_point`] seams in the transport and service compile
//!   to nothing in release builds, and under test `model::explore`
//!   enumerates every bounded interleaving of a scripted scenario,
//!   asserting deadlock freedom and byte-identical outcomes (the
//!   dynamic counterpart of the Layer-3 static concurrency analysis in
//!   `docs/ANALYZER.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod engine;
pub mod harness;
pub mod model;
pub mod round;
pub mod service;
pub mod transport;

pub use durable::{
    spec_digest, state_crc, CrashHandler, CrashPoint, DurabilityConfig, DurableState,
    RecoveryReport, WalRecord,
};
pub use engine::{EngineParts, ExitReason, LiveConfig, LiveEngine, PayloadClassifier};
pub use harness::{
    build_live_world, prepare_live_query, run_live_query, LiveRun, LiveRunOptions, PreparedQuery,
};
pub use service::{QueryService, RemoteExecutor, ServiceConfig, SubmitError, SubmitOutcome};
pub use transport::StripedTransport;
