//! Deterministic schedule exploration for the live runtime — the
//! dynamic counterpart of the Layer-3 concurrency static analysis
//! (`edgelet_analyze::concurrency`, `docs/ANALYZER.md`).
//!
//! The live runtime's correctness claim is *schedule independence*: the
//! verdict and ledger a query produces must not depend on how the OS
//! interleaves the worker threads. This module makes that claim
//! checkable. Hot-path entry points carry [`yield_point`] markers; in
//! release builds (no `model` feature, not a test build) they compile to
//! an empty inline function. Under test, a registered thread that hits a
//! yield point whose tag the active exploration selected *parks* until a
//! scheduler grants it the next turn — which turns thread interleaving
//! into an enumerable decision tree:
//!
//! * [`explore`] re-runs a scripted scenario under every schedule a
//!   depth-first sweep of that tree produces (bounded by
//!   [`ExploreOptions::max_schedules`]),
//! * every run's outcome is folded into a byte-exact fingerprint, so
//!   divergence across schedules is a one-line assertion
//!   (`fingerprints.len() == 1`),
//! * a run in which unfinished threads stop making progress while no
//!   thread is parked is reported as a [`Deadlock`] together with the
//!   schedule that produced it.
//!
//! Threads the scenario did not spawn — engine workers inside
//! `run_live_query`, watchdogs — carry no registration and pass through
//! yield points untouched, so scenarios choose exactly which seams to
//! interleave via the tag list (e.g. `transport.submit`,
//! `service.acquire`). A thread blocked on a real mutex (not parked) is
//! handled by a stall heuristic: after `stall_quanta` quiet quanta the
//! scheduler treats it as blocked and grants one of the parked threads
//! instead; only when *nothing* is parked and unfinished threads remain
//! is the run declared deadlocked.
//!
//! The integration suite (`tests/interleaving_model.rs`) drives the
//! striped transport and the query service through every bounded
//! interleaving of two workers and asserts deadlock freedom plus
//! byte-identical verdicts and ledgers on every schedule.

/// Marks a scheduling seam. Inert unless the calling thread was
/// registered by [`explore`] and `tag` is in the active tag list.
#[cfg(any(test, feature = "model"))]
pub fn yield_point(tag: &'static str) {
    active::yield_point(tag);
}

/// Marks a scheduling seam. Compiled to nothing in release builds.
#[cfg(not(any(test, feature = "model")))]
#[inline(always)]
pub fn yield_point(tag: &'static str) {
    let _ = tag;
}

#[cfg(any(test, feature = "model"))]
pub use active::{explore, Deadlock, ExploreOptions, ExploreReport, RunSpec};

#[cfg(any(test, feature = "model"))]
mod active {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::Duration;

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    enum Status {
        Running,
        Parked,
        Done,
    }

    struct CtlState {
        status: Vec<Status>,
        /// Transition counters; any park/wake/finish bumps one, which is
        /// how the driver distinguishes progress from a stall.
        beats: Vec<u64>,
        turn: Option<usize>,
    }

    /// Shared scheduler state between the driver and the scenario
    /// threads of one run.
    struct Ctl {
        tags: &'static [&'static str],
        state: Mutex<CtlState>,
        cv: Condvar,
    }

    enum Quiesce {
        AllDone,
        Ready(Vec<usize>),
        Stalled(Vec<usize>),
    }

    impl Ctl {
        fn new(n: usize, tags: &'static [&'static str]) -> Self {
            Ctl {
                tags,
                state: Mutex::new(CtlState {
                    status: vec![Status::Running; n],
                    beats: vec![0; n],
                    turn: None,
                }),
                cv: Condvar::new(),
            }
        }

        /// Parks thread `id` until the driver grants it the turn.
        fn pause(&self, id: usize) {
            let mut st = lock(&self.state);
            st.status[id] = Status::Parked;
            st.beats[id] += 1;
            self.cv.notify_all();
            while st.turn != Some(id) {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.turn = None;
            st.status[id] = Status::Running;
            st.beats[id] += 1;
            self.cv.notify_all();
        }

        fn finish(&self, id: usize) {
            let mut st = lock(&self.state);
            st.status[id] = Status::Done;
            st.beats[id] += 1;
            self.cv.notify_all();
        }

        fn grant(&self, id: usize) {
            let mut st = lock(&self.state);
            st.turn = Some(id);
            self.cv.notify_all();
        }

        /// Waits until the run is quiescent: every unfinished thread is
        /// parked (→ `Ready`), all are done (→ `AllDone`), or nothing has
        /// moved for `stall_quanta` quanta. A stall with parked threads
        /// treats the silent runners as mutex-blocked and schedules the
        /// parked ones; a stall with nothing parked is a deadlock.
        fn wait_quiescent(&self, quantum: Duration, stall_quanta: u32) -> Quiesce {
            let mut st = lock(&self.state);
            let mut stall = 0u32;
            let mut last_beats = st.beats.clone();
            loop {
                if st.status.iter().all(|s| *s == Status::Done) {
                    return Quiesce::AllDone;
                }
                if st.turn.is_none() {
                    let parked: Vec<usize> = ids_with(&st.status, Status::Parked);
                    let running: Vec<usize> = ids_with(&st.status, Status::Running);
                    if running.is_empty() {
                        return Quiesce::Ready(parked);
                    }
                    if stall >= stall_quanta {
                        if parked.is_empty() {
                            return Quiesce::Stalled(running);
                        }
                        return Quiesce::Ready(parked);
                    }
                }
                let (guard, timeout) = self
                    .cv
                    .wait_timeout(st, quantum)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if st.beats != last_beats {
                    last_beats.clone_from(&st.beats);
                    stall = 0;
                } else if timeout.timed_out() {
                    stall += 1;
                }
            }
        }
    }

    fn ids_with(status: &[Status], want: Status) -> Vec<usize> {
        status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == want)
            .map(|(i, _)| i)
            .collect()
    }

    struct Registration {
        ctl: Arc<Ctl>,
        id: usize,
    }

    thread_local! {
        static SLOT: RefCell<Option<Registration>> = const { RefCell::new(None) };
    }

    pub(super) fn yield_point(tag: &'static str) {
        let reg = SLOT.with(|s| {
            s.borrow()
                .as_ref()
                .filter(|r| r.ctl.tags.contains(&tag))
                .map(|r| (r.ctl.clone(), r.id))
        });
        if let Some((ctl, id)) = reg {
            ctl.pause(id);
        }
    }

    /// One run of a scenario: the scripted threads (each returning its
    /// contribution to the fingerprint) plus a finale that runs after
    /// every thread joined and sees the shared state's final shape.
    pub struct RunSpec {
        /// Scripted threads, registered with the scheduler in order.
        pub threads: Vec<Box<dyn FnOnce() -> String + Send + 'static>>,
        /// Post-join inspection of the shared state.
        pub finale: Box<dyn FnOnce() -> String + 'static>,
    }

    /// Exploration bounds and pacing.
    #[derive(Debug, Clone)]
    pub struct ExploreOptions {
        /// Yield-point tags that park; everything else passes through.
        pub tags: &'static [&'static str],
        /// Driver poll interval while waiting for quiescence.
        pub quantum: Duration,
        /// Quiet quanta before silent runners count as blocked.
        pub stall_quanta: u32,
        /// Schedule budget; `complete` is false when it ran out.
        pub max_schedules: usize,
        /// Per-run scheduling-step budget (runaway guard).
        pub max_steps: usize,
    }

    impl ExploreOptions {
        /// Defaults for `tags`, honoring the `EDGELET_MODEL_SCHEDULES`
        /// environment variable as the schedule budget (CI raises it).
        pub fn for_tags(tags: &'static [&'static str]) -> Self {
            let max_schedules = std::env::var("EDGELET_MODEL_SCHEDULES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(4096);
            ExploreOptions {
                tags,
                quantum: Duration::from_millis(20),
                stall_quanta: 10,
                max_schedules,
                max_steps: 10_000,
            }
        }
    }

    /// A deadlocked run: the schedule that produced it and the threads
    /// that were neither parked nor done when progress stopped.
    #[derive(Debug, Clone)]
    pub struct Deadlock {
        /// Grant sequence (thread ids) leading to the deadlock.
        pub schedule: Vec<usize>,
        /// Stuck thread ids.
        pub stuck: Vec<usize>,
    }

    /// The outcome of [`explore`].
    #[derive(Debug, Default)]
    pub struct ExploreReport {
        /// Schedules executed.
        pub schedules: usize,
        /// True when the whole decision tree fit in the budget.
        pub complete: bool,
        /// First deadlocked run, if any (exploration stops on it).
        pub deadlock: Option<Deadlock>,
        /// Distinct outcome fingerprints across all schedules.
        pub fingerprints: BTreeSet<String>,
        /// A run exceeded `max_steps` (runaway scenario).
        pub max_steps_hit: bool,
        /// Replays where the recorded choice was not ready — a scenario
        /// whose park structure itself is nondeterministic.
        pub replay_divergences: usize,
    }

    /// Runs `make`'s scenario under depth-first–enumerated schedules
    /// until the decision tree is exhausted or a bound trips.
    pub fn explore(opts: &ExploreOptions, make: impl Fn() -> RunSpec) -> ExploreReport {
        let mut report = ExploreReport::default();
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let spec = make();
            let n = spec.threads.len();
            let ctl = Arc::new(Ctl::new(n, opts.tags));
            let mut handles = Vec::new();
            for (id, thunk) in spec.threads.into_iter().enumerate() {
                let ctl_thread = ctl.clone();
                handles.push(std::thread::spawn(move || {
                    SLOT.with(|s| {
                        *s.borrow_mut() = Some(Registration {
                            ctl: ctl_thread.clone(),
                            id,
                        })
                    });
                    let out = thunk();
                    SLOT.with(|s| *s.borrow_mut() = None);
                    ctl_thread.finish(id);
                    out
                }));
            }

            let mut trace: Vec<(usize, Vec<usize>)> = Vec::new();
            let mut deadlock = None;
            let mut aborted = false;
            loop {
                match ctl.wait_quiescent(opts.quantum, opts.stall_quanta) {
                    Quiesce::AllDone => break,
                    Quiesce::Ready(ready) => {
                        if trace.len() >= opts.max_steps {
                            report.max_steps_hit = true;
                            aborted = true;
                            break;
                        }
                        let chosen = match prefix.get(trace.len()) {
                            Some(want) if ready.contains(want) => *want,
                            Some(_) => {
                                report.replay_divergences += 1;
                                ready[0]
                            }
                            None => ready[0],
                        };
                        trace.push((chosen, ready));
                        ctl.grant(chosen);
                    }
                    Quiesce::Stalled(stuck) => {
                        deadlock = Some(Deadlock {
                            schedule: trace.iter().map(|(c, _)| *c).collect(),
                            stuck,
                        });
                        break;
                    }
                }
            }
            report.schedules += 1;
            if deadlock.is_some() || aborted {
                // Stuck threads cannot be joined; detach them.
                report.deadlock = deadlock;
                drop(handles);
                break;
            }
            let mut parts = Vec::with_capacity(n + 1);
            for h in handles {
                parts.push(h.join().unwrap_or_else(|_| "<panicked>".to_string()));
            }
            parts.push((spec.finale)());
            report.fingerprints.insert(parts.join("|"));

            // Depth-first: bump the rightmost step with an untried
            // alternative; exhausted means the whole tree was covered.
            let next =
                trace.iter().enumerate().rev().find_map(|(i, (c, ready))| {
                    ready.iter().find(|&&r| r > *c).map(|&alt| (i, alt))
                });
            match next {
                None => {
                    report.complete = true;
                    break;
                }
                Some((i, alt)) => {
                    prefix = trace[..i].iter().map(|(c, _)| *c).collect();
                    prefix.push(alt);
                }
            }
            if report.schedules >= opts.max_schedules {
                break;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    fn fast(tags: &'static [&'static str]) -> ExploreOptions {
        let mut o = ExploreOptions::for_tags(tags);
        o.quantum = Duration::from_millis(5);
        o.stall_quanta = 6;
        o
    }

    #[test]
    fn yield_point_is_inert_off_schedule() {
        // No registration, no exploration: passes straight through.
        yield_point("anything");
    }

    #[test]
    fn two_threads_one_yield_is_exhaustive() {
        let report = explore(&fast(&["t.step"]), || RunSpec {
            threads: (0..2)
                .map(|i| {
                    Box::new(move || {
                        yield_point("t.step");
                        format!("t{i}")
                    }) as Box<dyn FnOnce() -> String + Send>
                })
                .collect(),
            finale: Box::new(String::new),
        });
        assert!(report.complete, "{report:?}");
        assert_eq!(report.schedules, 2, "{report:?}");
        assert!(report.deadlock.is_none(), "{report:?}");
        assert_eq!(report.fingerprints.len(), 1, "{report:?}");
        assert_eq!(report.replay_divergences, 0, "{report:?}");
    }

    #[test]
    fn unselected_tags_do_not_park() {
        let report = explore(&fast(&["t.only"]), || RunSpec {
            threads: vec![Box::new(|| {
                yield_point("t.other");
                "done".to_string()
            })],
            finale: Box::new(String::new),
        });
        assert!(report.complete);
        assert_eq!(report.schedules, 1, "{report:?}");
    }

    #[test]
    fn lost_update_diverges_across_schedules() {
        // The checker must *see* a real race: a read-modify-write split
        // across a yield loses updates under some interleavings.
        let report = explore(&fast(&["t.rmw"]), || {
            let counter = Arc::new(AtomicU64::new(0));
            let threads = (0..2)
                .map(|_| {
                    let c = counter.clone();
                    Box::new(move || {
                        yield_point("t.rmw");
                        let v = c.load(Ordering::SeqCst);
                        yield_point("t.rmw");
                        c.store(v + 1, Ordering::SeqCst);
                        String::new()
                    }) as Box<dyn FnOnce() -> String + Send>
                })
                .collect();
            let c = counter.clone();
            RunSpec {
                threads,
                finale: Box::new(move || c.load(Ordering::SeqCst).to_string()),
            }
        });
        assert!(report.complete, "{report:?}");
        assert!(report.deadlock.is_none(), "{report:?}");
        // Both threads park twice: C(4,2) = 6 interleavings.
        assert_eq!(report.schedules, 6, "{report:?}");
        // Final counter is 2 (serialized) or 1 (lost update).
        assert_eq!(report.fingerprints.len(), 2, "{report:?}");
    }

    #[test]
    fn opposite_lock_orders_deadlock_under_some_schedule() {
        let report = explore(&fast(&["t.locks"]), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let script = |first: Arc<Mutex<()>>, second: Arc<Mutex<()>>| {
                Box::new(move || {
                    yield_point("t.locks");
                    let _g1 = first.lock().unwrap_or_else(|e| e.into_inner());
                    yield_point("t.locks");
                    let _g2 = second.lock().unwrap_or_else(|e| e.into_inner());
                    String::new()
                }) as Box<dyn FnOnce() -> String + Send>
            };
            RunSpec {
                threads: vec![script(a.clone(), b.clone()), script(b, a)],
                finale: Box::new(String::new),
            }
        });
        let deadlock = report
            .deadlock
            .expect("AB/BA must deadlock under some schedule");
        assert_eq!(deadlock.stuck.len(), 2, "{deadlock:?}");
    }
}
