//! The live engine's window-round machinery, factored out of the
//! in-process executor so other hosts can drive it.
//!
//! A "round" is one conservative window executed by one worker: ingest
//! staged deliveries, pop events with `at < window_end`, journal every
//! ordered side effect, flush sends lane-by-lane through a
//! [`Transport`]. The in-process [`LiveEngine`](crate::engine::LiveEngine)
//! runs rounds on scoped threads behind a barrier; the socket runtime
//! (`edgelet-net`) runs exactly the same rounds in separate worker
//! *processes*, shipping [`RoundReport`]s back to a coordinating daemon
//! over framed sockets. Because every type here carries intrinsic keys
//! (`(at, origin, seq)` events, `(at, origin, seq, intra)` journal
//! entries) and commutative deltas, the merge is host-agnostic: threads
//! behind a barrier and processes behind a socket produce byte-identical
//! traces, metrics, and results.

use crate::engine::PayloadClassifier;
use edgelet_sim::network::Fate;
use edgelet_sim::{
    Actor, Command, Context, CrashCause, NetworkModel, SimTime, TimerToken, TraceEvent,
};
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::Payload;
use edgelet_wire::{Envelope, Transport, TransportError};
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::{Mutex, MutexGuard};

/// One device hosted by the live runtime. Mirrors the simulator's
/// per-device state minus churn (live devices are always up).
pub struct LiveDevice {
    pub(crate) crashed: bool,
    pub(crate) halted: bool,
    pub(crate) actor: Option<Box<dyn Actor>>,
    /// Actor-visible randomness (forked per device).
    pub(crate) rng: DetRng,
    /// Network fate/latency draws for messages this device sends.
    pub(crate) net_rng: DetRng,
    pub(crate) next_timer: u64,
    /// Private spawn counter: the `seq` of every event this device spawns.
    pub(crate) spawn_seq: u64,
    pub(crate) cancelled: BTreeSet<TimerToken>,
}

impl LiveDevice {
    pub(crate) fn new(rng: DetRng, net_rng: DetRng) -> Self {
        LiveDevice {
            crashed: false,
            halted: false,
            actor: None,
            rng,
            net_rng,
            next_timer: 0,
            spawn_seq: 0,
            cancelled: BTreeSet::new(),
        }
    }
}

/// Event kinds the live runtime processes (the simulator's set minus
/// churn toggles).
pub(crate) enum LiveKind {
    Start(DeviceId),
    Deliver {
        to: DeviceId,
        from: DeviceId,
        payload: Payload,
        sent_at: SimTime,
    },
    Timer {
        device: DeviceId,
        token: TimerToken,
    },
    Crash(DeviceId, CrashCause),
}

impl LiveKind {
    pub(crate) fn target(&self) -> DeviceId {
        match *self {
            LiveKind::Start(d) => d,
            LiveKind::Deliver { to, .. } => to,
            LiveKind::Timer { device, .. } => device,
            LiveKind::Crash(d, _) => d,
        }
    }
}

/// One scheduled event with its intrinsic key.
pub(crate) struct LiveEvent {
    pub(crate) at: SimTime,
    pub(crate) origin: u64,
    pub(crate) seq: u64,
    pub(crate) kind: LiveKind,
}

impl LiveEvent {
    fn key(&self) -> (SimTime, u64, u64) {
        (self.at, self.origin, self.seq)
    }
}

impl PartialEq for LiveEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for LiveEvent {}
impl PartialOrd for LiveEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LiveEvent {
    /// Reversed: `BinaryHeap` is a max-heap, we need the minimal key.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// A journal item: a side effect whose global ordering matters.
pub enum JItem {
    /// A trace event to replay into the trace ring.
    Trace(TraceEvent),
    /// A metric observation to replay into `SimMetrics::observe`.
    Observe(&'static str, f64),
}

/// One journal entry tagged with the producing event's key plus an
/// intra-event counter; sorting by `(at, origin, seq, intra)` rebuilds
/// one canonical order from any per-worker interleaving — or, in the
/// socket runtime, from any per-process interleaving.
pub struct JEntry {
    /// Virtual time of the producing event.
    pub at: SimTime,
    /// Raw id of the device that spawned the producing event.
    pub origin: u64,
    /// The producing event's spawn sequence number.
    pub seq: u64,
    /// Ordinal of this side effect within the producing event.
    pub intra: u32,
    /// The side effect itself.
    pub item: JItem,
}

impl JEntry {
    /// The canonical merge key.
    pub fn key(&self) -> (SimTime, u64, u64, u32) {
        (self.at, self.origin, self.seq, self.intra)
    }
}

/// Commutative metric deltas accumulated by one worker over one window.
#[derive(Default)]
pub struct Deltas {
    /// Messages submitted by actors.
    pub sent: u64,
    /// Messages handed to receiving actors.
    pub delivered: u64,
    /// Messages dropped (network fate or dead transport).
    pub dropped: u64,
    /// Messages corrupted in transit.
    pub corrupted: u64,
    /// Messages discarded at a crashed receiver.
    pub to_crashed: u64,
    /// Payload bytes submitted.
    pub bytes_sent: u64,
    /// Delivery-delay samples.
    pub delay: edgelet_sim::DelayStats,
    /// Crash events applied.
    pub crashes: u64,
    /// Events processed.
    pub events: u64,
    /// Net change in pending events (+spawned, -processed).
    pub real_pending: i64,
    /// Latest event time processed.
    pub last_at: SimTime,
}

/// Buffered side effects of one worker's window.
pub struct RoundOut {
    /// Ordered side effects, pre-sorted by the canonical key after the
    /// round.
    pub journal: Vec<JEntry>,
    /// Commutative counter deltas.
    pub deltas: Deltas,
    /// Envelopes refused with backpressure, for barrier re-submission.
    pub parked: Vec<Envelope>,
    /// Sends buffered per destination lane, flushed in one batched
    /// transport submission per lane at the end of the window (the
    /// lookahead guarantees none of them can be due inside it).
    pub outgoing: Vec<Vec<Envelope>>,
    trace_on: bool,
    cur: (SimTime, u64, u64),
    intra: u32,
}

impl RoundOut {
    pub(crate) fn new(trace_on: bool, lane_count: usize) -> Self {
        RoundOut {
            journal: Vec::new(),
            deltas: Deltas::default(),
            parked: Vec::new(),
            outgoing: (0..lane_count).map(|_| Vec::new()).collect(),
            trace_on,
            cur: (SimTime::ZERO, 0, 0),
            intra: 0,
        }
    }

    /// Clears buffered effects while keeping capacity, so a recycled
    /// report's window allocates nothing.
    pub fn reset(&mut self) {
        self.journal.clear();
        self.deltas = Deltas::default();
        self.parked.clear();
        for lane in &mut self.outgoing {
            lane.clear();
        }
        self.intra = 0;
    }

    fn begin_event(&mut self, key: (SimTime, u64, u64)) {
        self.cur = key;
        self.intra = 0;
    }

    fn push_item(&mut self, item: JItem) {
        self.journal.push(JEntry {
            at: self.cur.0,
            origin: self.cur.1,
            seq: self.cur.2,
            intra: self.intra,
            item,
        });
        self.intra += 1;
    }

    fn trace(&mut self, ev: TraceEvent) {
        if self.trace_on {
            self.push_item(JItem::Trace(ev));
        }
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.push_item(JItem::Observe(name, value));
    }
}

/// Result of one worker's window.
pub struct RoundReport {
    /// The window's buffered side effects.
    pub out: RoundOut,
    /// Earliest event still in this worker's heap after the window.
    pub heap_min: Option<u64>,
    /// Whether the window stopped on the event budget.
    pub hit_budget: bool,
}

/// Immutable per-run context shared by all workers of one host.
pub struct LiveEnv<'a> {
    /// The link model applied to every message.
    pub network: &'a NetworkModel,
    /// Payload classifier feeding `MsgKind` trace records.
    pub classifier: Option<PayloadClassifier>,
    /// Whether classification runs at all.
    pub need_kind: bool,
    /// Whether trace events are journaled.
    pub trace_enabled: bool,
    /// Total registered devices (send bound).
    pub device_count: usize,
    /// Epoch stamped on every envelope.
    pub epoch: u64,
    /// The message fabric sends flush through.
    pub transport: &'a dyn Transport,
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One worker: a slice of the device population (ids with
/// `index % worker_count == idx`, stored at `index / worker_count`)
/// plus its event heap.
///
/// Built through [`LiveEngine`](crate::engine::LiveEngine) world
/// construction (`add_device` / `install_actor`), then either driven on
/// an in-process thread by `run_until` or detached via
/// [`LiveEngine::into_parts`](crate::engine::LiveEngine::into_parts)
/// and driven by a remote round loop.
pub struct LiveWorker {
    pub(crate) idx: usize,
    pub(crate) worker_count: usize,
    pub(crate) devices: Vec<LiveDevice>,
    pub(crate) heap: BinaryHeap<LiveEvent>,
    /// Scratch buffer mailbox/staging contents are swapped into, so
    /// ingestion holds neither lock while pushing onto the heap.
    pub(crate) ingest_buf: Vec<Envelope>,
}

impl LiveWorker {
    pub(crate) fn new(idx: usize, worker_count: usize) -> Self {
        LiveWorker {
            idx,
            worker_count,
            devices: Vec::new(),
            heap: BinaryHeap::new(),
            ingest_buf: Vec::new(),
        }
    }

    /// This worker's index in `0..worker_count`.
    pub fn idx(&self) -> usize {
        self.idx
    }

    /// The population-wide worker count this slice was built for.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Earliest pending event time in this worker's heap, µs.
    pub fn heap_min(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at.as_micros())
    }

    pub(crate) fn device_mut(&mut self, id: DeviceId) -> &mut LiveDevice {
        debug_assert_eq!(id.index() % self.worker_count, self.idx);
        &mut self.devices[id.index() / self.worker_count]
    }

    /// Runs one window: ingest mailbox spills and the pre-decoded
    /// transport deliveries staged for this worker, execute every event
    /// with `at < window_end && at <= clip`, then flush buffered sends
    /// lane-by-lane. `reuse` recycles the previous window's report
    /// (emptied by the barrier) so steady-state windows allocate
    /// nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn run_round(
        &mut self,
        env: &LiveEnv<'_>,
        mailbox: &Mutex<Vec<Envelope>>,
        staging: &Mutex<Vec<Envelope>>,
        window_end_us: u64,
        clip_us: u64,
        budget: u64,
        reuse: Option<RoundReport>,
    ) -> RoundReport {
        let mut buf = std::mem::take(&mut self.ingest_buf);
        std::mem::swap(&mut *lock(mailbox), &mut buf);
        for e in buf.drain(..) {
            self.ingest(e);
        }
        std::mem::swap(&mut *lock(staging), &mut buf);
        for e in buf.drain(..) {
            self.ingest(e);
        }
        self.ingest_buf = buf;
        let mut out = match reuse {
            Some(r) => {
                debug_assert!(r.out.journal.is_empty());
                r.out
            }
            None => RoundOut::new(env.trace_enabled, self.worker_count),
        };
        let mut processed = 0u64;
        let mut hit_budget = false;
        while let Some(top) = self.heap.peek() {
            let at_us = top.at.as_micros();
            if at_us >= window_end_us || at_us > clip_us {
                break;
            }
            if processed >= budget {
                hit_budget = true;
                break;
            }
            let Some(ev) = self.heap.pop() else { break };
            processed += 1;
            self.process_event(ev, env, &mut out);
        }
        // Flush the window's sends: one batched submission per
        // destination lane, each taking the lane lock once. The
        // lookahead guarantees nothing flushed here was due inside the
        // window just executed.
        for lane in 0..out.outgoing.len() {
            let mut batch = std::mem::take(&mut out.outgoing[lane]);
            if !batch.is_empty() {
                match env.transport.submit_batch(&mut batch) {
                    Ok(()) => {}
                    Err(TransportError::Backpressure) => out.parked.append(&mut batch),
                    Err(_) => {
                        // Closed/unknown-epoch mid-run only happens if the
                        // hosting service tore the epoch down; account the
                        // remaining messages as lost.
                        out.deltas.real_pending -= batch.len() as i64;
                        out.deltas.dropped += batch.len() as u64;
                        batch.clear();
                    }
                }
            }
            out.outgoing[lane] = batch;
        }
        // Pre-sort so the barrier can k-way-merge worker journals
        // instead of concatenating and re-sorting under the barrier.
        out.journal
            .sort_unstable_by_key(|e| (e.at, e.origin, e.seq, e.intra));
        let heap_min = self.heap.peek().map(|e| e.at.as_micros());
        RoundReport {
            out,
            heap_min,
            hit_budget,
        }
    }

    pub(crate) fn push_event(&mut self, at: SimTime, origin: u64, seq: u64, kind: LiveKind) {
        self.heap.push(LiveEvent {
            at,
            origin,
            seq,
            kind,
        });
    }

    /// Queues an inbound envelope onto this worker's heap.
    pub fn ingest(&mut self, e: Envelope) {
        debug_assert_eq!(e.to.index() % self.worker_count, self.idx);
        self.heap.push(LiveEvent {
            at: SimTime::from_micros(e.deliver_at_us),
            origin: e.from.raw(),
            seq: e.seq,
            kind: LiveKind::Deliver {
                to: e.to,
                from: e.from,
                payload: e.payload,
                sent_at: SimTime::from_micros(e.sent_at_us),
            },
        });
    }

    /// Executes one event — the live mirror of the simulator shard's
    /// `process_event`/`dispatch`.
    fn process_event(&mut self, ev: LiveEvent, env: &LiveEnv<'_>, out: &mut RoundOut) {
        out.begin_event(ev.key());
        out.deltas.events += 1;
        out.deltas.last_at = out.deltas.last_at.max(ev.at);
        out.deltas.real_pending -= 1;
        let now = ev.at;
        match ev.kind {
            LiveKind::Start(device) => {
                self.with_actor(device, now, env, out, |actor, ctx| actor.on_start(ctx));
            }
            LiveKind::Deliver {
                to,
                from,
                payload,
                sent_at,
            } => {
                let state = self.device_mut(to);
                if state.crashed {
                    out.deltas.to_crashed += 1;
                    return;
                }
                if state.halted || state.actor.is_none() {
                    return;
                }
                out.deltas.delivered += 1;
                out.deltas.delay.push_micros(now.since(sent_at).as_micros());
                out.trace(TraceEvent::Delivered { from, to });
                self.with_actor(to, now, env, out, |actor, ctx| {
                    actor.on_message(ctx, from, &payload)
                });
            }
            LiveKind::Timer { device, token } => {
                let state = self.device_mut(device);
                if state.crashed || state.halted {
                    return;
                }
                if state.cancelled.remove(&token) {
                    return;
                }
                out.trace(TraceEvent::TimerFired {
                    device,
                    token: token.0,
                });
                self.with_actor(device, now, env, out, |actor, ctx| {
                    actor.on_timer(ctx, token)
                });
            }
            LiveKind::Crash(device, cause) => {
                let state = self.device_mut(device);
                if state.crashed {
                    return;
                }
                state.crashed = true;
                state.actor = None;
                out.deltas.crashes += 1;
                out.trace(TraceEvent::Crashed { device, cause });
            }
        }
    }

    /// Runs a callback on a device's actor, then applies its commands.
    fn with_actor<F>(
        &mut self,
        device: DeviceId,
        now: SimTime,
        env: &LiveEnv<'_>,
        out: &mut RoundOut,
        f: F,
    ) where
        F: FnOnce(&mut Box<dyn Actor>, &mut Context<'_>),
    {
        let state = self.device_mut(device);
        if state.crashed || state.halted {
            return;
        }
        let Some(mut actor) = state.actor.take() else {
            return;
        };
        let mut ctx = Context::new(device, now, &mut state.rng, &mut state.next_timer);
        f(&mut actor, &mut ctx);
        let commands = ctx.take_commands();
        drop(ctx);
        self.device_mut(device).actor = Some(actor);
        self.apply_commands(device, now, commands, env, out);
    }

    fn apply_commands(
        &mut self,
        device: DeviceId,
        now: SimTime,
        commands: Vec<Command>,
        env: &LiveEnv<'_>,
        out: &mut RoundOut,
    ) {
        for cmd in commands {
            match cmd {
                Command::Send { to, payload } => {
                    self.submit_send(device, to, payload, now, env, out)
                }
                Command::Broadcast { to, payload } => {
                    // Fan-out shares one buffer, a refcount bump per target.
                    for target in to {
                        self.submit_send(device, target, payload.share(), now, env, out);
                    }
                }
                Command::SetTimer { token, fire_at } => {
                    let seq = self.next_seq(device);
                    out.deltas.real_pending += 1;
                    self.heap.push(LiveEvent {
                        at: fire_at,
                        origin: device.raw(),
                        seq,
                        kind: LiveKind::Timer { device, token },
                    });
                }
                Command::CancelTimer { token } => {
                    self.device_mut(device).cancelled.insert(token);
                }
                Command::Observe { name, value } => out.observe(name, value),
                Command::Halt => self.device_mut(device).halted = true,
            }
        }
    }

    pub(crate) fn next_seq(&mut self, device: DeviceId) -> u64 {
        let d = self.device_mut(device);
        let s = d.spawn_seq;
        d.spawn_seq += 1;
        s
    }

    fn submit_send(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        payload: Payload,
        now: SimTime,
        env: &LiveEnv<'_>,
        out: &mut RoundOut,
    ) {
        out.deltas.sent += 1;
        out.deltas.bytes_sent += payload.len() as u64;
        if to.index() >= env.device_count {
            out.deltas.dropped += 1;
            return;
        }
        let kind = if env.need_kind {
            env.classifier.and_then(|c| c(payload.as_slice()))
        } else {
            None
        };
        if let Some(k) = kind {
            out.trace(TraceEvent::MsgKind { from, to, kind: k });
        }
        self.transmit(from, to, payload, now, env, out);
    }

    /// Applies the network model and hands the message to the transport —
    /// the live mirror of the simulator shard's `transmit`. Order of RNG
    /// draws (fate, then latency; nothing on drop) is load-bearing.
    fn transmit(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        mut payload: Payload,
        now: SimTime,
        env: &LiveEnv<'_>,
        out: &mut RoundOut,
    ) {
        let fate = {
            let sender = self.device_mut(from);
            env.network.fate(&mut sender.net_rng)
        };
        match fate {
            Fate::Dropped => {
                out.deltas.dropped += 1;
                out.trace(TraceEvent::Dropped { from, to });
                return;
            }
            Fate::Corrupted(offset) => {
                // Detach this recipient's copy before flipping a bit so
                // other recipients of a shared broadcast stay intact.
                if !payload.is_empty() {
                    let idx = offset % payload.len();
                    let mut bytes = std::mem::take(&mut payload).into_vec();
                    bytes[idx] ^= 0x01;
                    payload = Payload::new(bytes);
                }
                out.deltas.corrupted += 1;
            }
            Fate::Delivered => {}
        }
        let bytes = payload.len();
        out.trace(TraceEvent::Sent { from, to, bytes });
        let latency = {
            let sender = self.device_mut(from);
            env.network.sample_latency(&mut sender.net_rng)
        };
        let at = now + latency;
        let seq = self.next_seq(from);
        out.deltas.real_pending += 1;
        let env_msg = Envelope {
            epoch: env.epoch,
            from,
            to,
            seq,
            sent_at_us: now.as_micros(),
            deliver_at_us: at.as_micros(),
            payload,
        };
        // Buffered, not submitted: the whole window's sends for one lane
        // flush in a single batched submission at the end of the round.
        let lane = to.index() % self.worker_count;
        out.outgoing[lane].push(env_msg);
    }
}

/// `min` over optional values, treating `None` as absent.
pub fn fold_min(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}
