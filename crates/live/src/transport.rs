//! The in-process sharded transport: lock-striped, bounded, epoch-keyed
//! mailbox lanes carrying serialized [`Envelope`] bytes.
//!
//! One [`StripedTransport`] is shared by every query a
//! [`crate::service::QueryService`] runs concurrently. Isolation between
//! queries is structural: lanes are registered *per epoch*, an envelope
//! is only accepted if its epoch is currently registered, and a drain
//! only ever sees its own epoch's lanes. Cross-epoch submissions are
//! counted ([`StripedTransport::rejected_unknown_epoch`]) so tests can
//! assert that no stray message was ever admitted.
//!
//! Envelopes are stored as their wire bytes ([`Envelope::to_wire`]), not
//! as in-memory structs: what crosses the transport is exactly what
//! would cross a socket, which keeps the live runtime honest about the
//! serialized protocol and exercises the codec on every hop.

use edgelet_wire::{Envelope, Transport, TransportError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One mailbox lane: wire bytes plus the pre-parsed delivery time, so
/// `pending` never re-decodes queued envelopes.
#[derive(Debug, Default)]
struct Lane {
    queued: Vec<(u64, Vec<u8>)>,
}

/// Locks a mutex, ignoring poisoning: lanes hold plain byte buffers
/// that stay structurally valid, and a panicked worker propagates its
/// panic through the owning thread scope regardless.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A lock-striped, bounded, multi-epoch in-process transport.
///
/// * **Striped** — each epoch owns `lanes` independent mutex-protected
///   mailboxes; destination device `d` hashes to lane
///   `d.index() % lanes`, so workers draining different lanes never
///   contend on one lock.
/// * **Bounded** — each lane holds at most `capacity` envelopes; a full
///   lane yields [`TransportError::Backpressure`], which the runtime
///   absorbs at its window barrier (see `docs/RUNTIME.md`).
/// * **Epoch-keyed** — envelopes for unregistered epochs are refused
///   with [`TransportError::UnknownEpoch`] and counted.
pub struct StripedTransport {
    capacity: usize,
    closed: AtomicBool,
    rejected: AtomicU64,
    epochs: Mutex<BTreeMap<u64, Arc<Vec<Mutex<Lane>>>>>,
}

impl StripedTransport {
    /// Creates a transport whose lanes hold at most `capacity` envelopes
    /// each (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        StripedTransport {
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
            rejected: AtomicU64::new(0),
            epochs: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers `epoch` with `lanes` mailbox lanes (one per runtime
    /// worker; clamped to at least 1). Re-registering an epoch resets
    /// its lanes.
    pub fn register_epoch(&self, epoch: u64, lanes: usize) {
        crate::model::yield_point("transport.register_epoch");
        let lanes = (0..lanes.max(1))
            .map(|_| Mutex::new(Lane::default()))
            .collect();
        lock(&self.epochs).insert(epoch, Arc::new(lanes));
    }

    /// Removes `epoch`; queued envelopes are discarded and later
    /// submissions for it are refused as unknown.
    pub fn retire_epoch(&self, epoch: u64) {
        crate::model::yield_point("transport.retire_epoch");
        lock(&self.epochs).remove(&epoch);
    }

    /// Stops accepting envelopes on every epoch (graceful shutdown:
    /// drains still succeed).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// How many submissions were refused because their epoch was not
    /// registered — the query-isolation evidence the tests assert on.
    pub fn rejected_unknown_epoch(&self) -> u64 {
        self.rejected.load(Ordering::Acquire)
    }

    /// Epochs currently registered.
    pub fn active_epochs(&self) -> usize {
        lock(&self.epochs).len()
    }

    fn lanes_of(&self, epoch: u64) -> Option<Arc<Vec<Mutex<Lane>>>> {
        lock(&self.epochs).get(&epoch).cloned()
    }
}

impl Transport for StripedTransport {
    fn submit(&self, env: Envelope) -> Result<(), TransportError> {
        crate::model::yield_point("transport.submit");
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let Some(lanes) = self.lanes_of(env.epoch) else {
            self.rejected.fetch_add(1, Ordering::AcqRel);
            return Err(TransportError::UnknownEpoch(env.epoch));
        };
        let lane = env.to.index() % lanes.len();
        let mut guard = lock(&lanes[lane]);
        if guard.queued.len() >= self.capacity {
            return Err(TransportError::Backpressure);
        }
        guard.queued.push((env.deliver_at_us, env.to_wire()));
        Ok(())
    }

    fn drain(&self, epoch: u64, lane: usize) -> Vec<Envelope> {
        crate::model::yield_point("transport.drain");
        let Some(lanes) = self.lanes_of(epoch) else {
            return Vec::new();
        };
        if lane >= lanes.len() {
            return Vec::new();
        }
        let drained = std::mem::take(&mut lock(&lanes[lane]).queued);
        drained
            .into_iter()
            .filter_map(|(_, bytes)| Envelope::from_wire(&bytes).ok())
            .collect()
    }

    fn pending(&self, epoch: u64, lane: usize) -> Option<(usize, u64)> {
        let lanes = self.lanes_of(epoch)?;
        if lane >= lanes.len() {
            return None;
        }
        let guard = lock(&lanes[lane]);
        let count = guard.queued.len();
        let min_at = guard.queued.iter().map(|(at, _)| *at).min()?;
        Some((count, min_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_util::ids::DeviceId;
    use edgelet_util::Payload;

    fn env(epoch: u64, to: u64, at: u64) -> Envelope {
        Envelope {
            epoch,
            from: DeviceId::new(0),
            to: DeviceId::new(to),
            seq: 1,
            sent_at_us: 0,
            deliver_at_us: at,
            payload: Payload::from(b"m".as_ref()),
        }
    }

    #[test]
    fn epochs_are_isolated_and_rejections_counted() {
        let t = StripedTransport::new(8);
        t.register_epoch(1, 2);
        t.register_epoch(2, 2);
        t.submit(env(1, 0, 10)).unwrap();
        t.submit(env(2, 0, 20)).unwrap();
        assert_eq!(
            t.submit(env(3, 0, 30)),
            Err(TransportError::UnknownEpoch(3))
        );
        assert_eq!(t.rejected_unknown_epoch(), 1);
        // Each epoch only sees its own traffic.
        assert_eq!(t.pending(1, 0), Some((1, 10)));
        assert_eq!(t.pending(2, 0), Some((1, 20)));
        let drained = t.drain(1, 0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].deliver_at_us, 10);
        assert_eq!(t.pending(2, 0), Some((1, 20)));
        // Retiring an epoch refuses later submissions.
        t.retire_epoch(2);
        assert_eq!(
            t.submit(env(2, 0, 40)),
            Err(TransportError::UnknownEpoch(2))
        );
        assert_eq!(t.rejected_unknown_epoch(), 2);
    }

    #[test]
    fn lanes_apply_backpressure_and_close_is_global() {
        let t = StripedTransport::new(2);
        t.register_epoch(5, 1);
        t.submit(env(5, 0, 1)).unwrap();
        t.submit(env(5, 1, 2)).unwrap();
        assert_eq!(t.submit(env(5, 2, 3)), Err(TransportError::Backpressure));
        assert_eq!(t.pending(5, 0), Some((2, 1)));
        t.close();
        assert_eq!(t.submit(env(5, 0, 4)), Err(TransportError::Closed));
        // Draining still works after close (graceful shutdown).
        assert_eq!(t.drain(5, 0).len(), 2);
    }
}
