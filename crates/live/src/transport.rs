//! The in-process sharded transport: lock-striped, bounded, epoch-keyed
//! mailbox lanes carrying serialized [`Envelope`] bytes.
//!
//! One [`StripedTransport`] is shared by every query a
//! [`crate::service::QueryService`] runs concurrently. Isolation between
//! queries is structural: lanes are registered *per epoch*, an envelope
//! is only accepted if its epoch is currently registered, and a drain
//! only ever sees its own epoch's lanes. Cross-epoch submissions are
//! counted ([`StripedTransport::rejected_unknown_epoch`]) so tests can
//! assert that no stray message was ever admitted.
//!
//! Envelopes are stored as their wire bytes ([`Envelope::to_wire`]), not
//! as in-memory structs: what crosses the transport is exactly what
//! would cross a socket, which keeps the live runtime honest about the
//! serialized protocol and exercises the codec on every hop.

use edgelet_wire::{Envelope, Transport, TransportError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One mailbox lane: wire bytes plus the pre-parsed delivery time, so
/// `pending` never re-decodes queued envelopes.
#[derive(Debug, Default)]
struct Lane {
    queued: Vec<(u64, Vec<u8>)>,
    /// Emptied buffer recycled by `drain`, so a steady-state
    /// submit/drain cycle reuses one allocation instead of growing a
    /// fresh `Vec` every window.
    spare: Vec<(u64, Vec<u8>)>,
}

/// Locks a mutex, ignoring poisoning: lanes hold plain byte buffers
/// that stay structurally valid, and a panicked worker propagates its
/// panic through the owning thread scope regardless.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// How many retired lane sets [`StripedTransport`] keeps for reuse.
/// Bounds pool growth if callers register epochs with many distinct
/// lane counts; the query service uses one count, so in practice the
/// pool holds at most `max_concurrent` entries.
const LANE_POOL_CAP: usize = 64;

/// A lock-striped, bounded, multi-epoch in-process transport.
///
/// * **Striped** — each epoch owns `lanes` independent mutex-protected
///   mailboxes; destination device `d` hashes to lane
///   `d.index() % lanes`, so workers draining different lanes never
///   contend on one lock.
/// * **Bounded** — each lane holds at most `capacity` envelopes; a full
///   lane yields [`TransportError::Backpressure`], which the runtime
///   absorbs at its window barrier (see `docs/RUNTIME.md`).
/// * **Epoch-keyed** — envelopes for unregistered epochs are refused
///   with [`TransportError::UnknownEpoch`] and counted.
pub struct StripedTransport {
    capacity: usize,
    closed: AtomicBool,
    rejected: AtomicU64,
    /// Epoch → lane set. A `RwLock` rather than a `Mutex`: every
    /// submit/drain/pending resolves its epoch here, and those reads
    /// are the hot path every worker thread hits concurrently —
    /// registration and retirement (one write per query) are the only
    /// writers.
    epochs: RwLock<BTreeMap<u64, Arc<Vec<Mutex<Lane>>>>>,
    /// Retired lane sets kept for reuse, so each query's
    /// `register_epoch` stops allocating a fresh lane vector (and its
    /// per-lane buffers) on the per-query path.
    pool: Mutex<Vec<Arc<Vec<Mutex<Lane>>>>>,
}

impl StripedTransport {
    /// Creates a transport whose lanes hold at most `capacity` envelopes
    /// each (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        StripedTransport {
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
            rejected: AtomicU64::new(0),
            epochs: RwLock::new(BTreeMap::new()),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Registers `epoch` with `lanes` mailbox lanes (one per runtime
    /// worker; clamped to at least 1). Re-registering an epoch resets
    /// its lanes. Reuses a retired lane set of the same width when one
    /// is available.
    pub fn register_epoch(&self, epoch: u64, lanes: usize) {
        crate::model::yield_point("transport.register_epoch");
        let count = lanes.max(1);
        let recycled = {
            let mut pool = lock(&self.pool);
            // Only a set nobody else still holds may be reused: a late
            // drain of the retired epoch could otherwise observe the new
            // epoch's traffic.
            pool.iter()
                .position(|set| set.len() == count && Arc::strong_count(set) == 1)
                .map(|i| pool.swap_remove(i))
        };
        let set = recycled
            .unwrap_or_else(|| Arc::new((0..count).map(|_| Mutex::new(Lane::default())).collect()));
        write(&self.epochs).insert(epoch, set);
    }

    /// Removes `epoch`; queued envelopes are discarded and later
    /// submissions for it are refused as unknown. The emptied lane set
    /// goes back to the pool for the next registration.
    pub fn retire_epoch(&self, epoch: u64) {
        crate::model::yield_point("transport.retire_epoch");
        let Some(set) = write(&self.epochs).remove(&epoch) else {
            return;
        };
        for lane in set.iter() {
            let mut guard = lock(lane);
            guard.queued.clear();
            guard.spare.clear();
        }
        let mut pool = lock(&self.pool);
        if pool.len() < LANE_POOL_CAP {
            pool.push(set);
        }
    }

    /// Stops accepting envelopes on every epoch (graceful shutdown:
    /// drains still succeed).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// How many submissions were refused because their epoch was not
    /// registered — the query-isolation evidence the tests assert on.
    pub fn rejected_unknown_epoch(&self) -> u64 {
        self.rejected.load(Ordering::Acquire)
    }

    /// Epochs currently registered.
    pub fn active_epochs(&self) -> usize {
        read(&self.epochs).len()
    }

    fn lanes_of(&self, epoch: u64) -> Option<Arc<Vec<Mutex<Lane>>>> {
        read(&self.epochs).get(&epoch).cloned()
    }
}

impl Transport for StripedTransport {
    fn submit(&self, env: Envelope) -> Result<(), TransportError> {
        crate::model::yield_point("transport.submit");
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let Some(lanes) = self.lanes_of(env.epoch) else {
            self.rejected.fetch_add(1, Ordering::AcqRel);
            return Err(TransportError::UnknownEpoch(env.epoch));
        };
        let lane = env.to.index() % lanes.len();
        let mut guard = lock(&lanes[lane]);
        if guard.queued.len() >= self.capacity {
            return Err(TransportError::Backpressure);
        }
        guard.queued.push((env.deliver_at_us, env.to_wire()));
        Ok(())
    }

    /// Batched submission: consecutive envelopes sharing one
    /// `(epoch, lane)` are pushed under a single lane lock, so a
    /// worker flushing a window's sends takes each destination lock
    /// once instead of once per message.
    fn submit_batch(&self, batch: &mut Vec<Envelope>) -> Result<(), TransportError> {
        crate::model::yield_point("transport.submit");
        let mut accepted = 0;
        let mut result = Ok(());
        'runs: while accepted < batch.len() {
            if self.closed.load(Ordering::Acquire) {
                result = Err(TransportError::Closed);
                break;
            }
            let epoch = batch[accepted].epoch;
            let Some(lanes) = self.lanes_of(epoch) else {
                self.rejected.fetch_add(1, Ordering::AcqRel);
                result = Err(TransportError::UnknownEpoch(epoch));
                break;
            };
            let lane = batch[accepted].to.index() % lanes.len();
            let mut guard = lock(&lanes[lane]);
            while accepted < batch.len() {
                let env = &batch[accepted];
                if env.epoch != epoch || env.to.index() % lanes.len() != lane {
                    // Next run: release this lane and re-resolve.
                    continue 'runs;
                }
                if guard.queued.len() >= self.capacity {
                    result = Err(TransportError::Backpressure);
                    break 'runs;
                }
                guard.queued.push((env.deliver_at_us, env.to_wire()));
                accepted += 1;
            }
        }
        batch.drain(..accepted);
        result
    }

    fn drain(&self, epoch: u64, lane: usize) -> Vec<Envelope> {
        crate::model::yield_point("transport.drain");
        let Some(lanes) = self.lanes_of(epoch) else {
            return Vec::new();
        };
        if lane >= lanes.len() {
            return Vec::new();
        }
        // Swap the queued buffer out against the lane's spare so the
        // lock is held for two pointer swaps, and decode outside it.
        let mut buf = {
            let mut guard = lock(&lanes[lane]);
            let mut buf = std::mem::take(&mut guard.spare);
            std::mem::swap(&mut buf, &mut guard.queued);
            buf
        };
        let out = buf
            .drain(..)
            .filter_map(|(_, bytes)| Envelope::from_wire(&bytes).ok())
            .collect();
        lock(&lanes[lane]).spare = buf;
        out
    }

    fn pending(&self, epoch: u64, lane: usize) -> Option<(usize, u64)> {
        let lanes = self.lanes_of(epoch)?;
        if lane >= lanes.len() {
            return None;
        }
        let guard = lock(&lanes[lane]);
        let count = guard.queued.len();
        let min_at = guard.queued.iter().map(|(at, _)| *at).min()?;
        Some((count, min_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_util::ids::DeviceId;
    use edgelet_util::Payload;

    fn env(epoch: u64, to: u64, at: u64) -> Envelope {
        Envelope {
            epoch,
            from: DeviceId::new(0),
            to: DeviceId::new(to),
            seq: 1,
            sent_at_us: 0,
            deliver_at_us: at,
            payload: Payload::from(b"m".as_ref()),
        }
    }

    #[test]
    fn epochs_are_isolated_and_rejections_counted() {
        let t = StripedTransport::new(8);
        t.register_epoch(1, 2);
        t.register_epoch(2, 2);
        t.submit(env(1, 0, 10)).unwrap();
        t.submit(env(2, 0, 20)).unwrap();
        assert_eq!(
            t.submit(env(3, 0, 30)),
            Err(TransportError::UnknownEpoch(3))
        );
        assert_eq!(t.rejected_unknown_epoch(), 1);
        // Each epoch only sees its own traffic.
        assert_eq!(t.pending(1, 0), Some((1, 10)));
        assert_eq!(t.pending(2, 0), Some((1, 20)));
        let drained = t.drain(1, 0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].deliver_at_us, 10);
        assert_eq!(t.pending(2, 0), Some((1, 20)));
        // Retiring an epoch refuses later submissions.
        t.retire_epoch(2);
        assert_eq!(
            t.submit(env(2, 0, 40)),
            Err(TransportError::UnknownEpoch(2))
        );
        assert_eq!(t.rejected_unknown_epoch(), 2);
    }

    #[test]
    fn lanes_apply_backpressure_and_close_is_global() {
        let t = StripedTransport::new(2);
        t.register_epoch(5, 1);
        t.submit(env(5, 0, 1)).unwrap();
        t.submit(env(5, 1, 2)).unwrap();
        assert_eq!(t.submit(env(5, 2, 3)), Err(TransportError::Backpressure));
        assert_eq!(t.pending(5, 0), Some((2, 1)));
        t.close();
        assert_eq!(t.submit(env(5, 0, 4)), Err(TransportError::Closed));
        // Draining still works after close (graceful shutdown).
        assert_eq!(t.drain(5, 0).len(), 2);
    }

    #[test]
    fn submit_batch_fills_a_lane_and_reports_backpressure() {
        let t = StripedTransport::new(3);
        t.register_epoch(9, 2);
        // Five envelopes: four for lane 0, one for lane 1 behind the
        // overflow. Only the three lane-0 slots accept.
        let mut batch: Vec<Envelope> = (0..4).map(|i| env(9, 0, 10 + i)).collect();
        batch.push(env(9, 1, 99));
        assert_eq!(
            t.submit_batch(&mut batch),
            Err(TransportError::Backpressure)
        );
        // The rejected envelope and its successor stay, in order.
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].deliver_at_us, 13);
        assert_eq!(batch[1].deliver_at_us, 99);
        assert_eq!(t.pending(9, 0), Some((3, 10)));
        assert_eq!(t.pending(9, 1), None);
        // Lane runs split correctly across lane boundaries.
        let mut batch = vec![env(9, 1, 1), env(9, 0, 2)];
        assert_eq!(
            t.submit_batch(&mut batch),
            Err(TransportError::Backpressure)
        );
        assert_eq!(batch.len(), 1, "lane-1 envelope accepted first");
        assert_eq!(t.pending(9, 1), Some((1, 1)));
        // Unknown epochs are refused and counted.
        let mut batch = vec![env(7, 0, 5)];
        assert_eq!(
            t.submit_batch(&mut batch),
            Err(TransportError::UnknownEpoch(7))
        );
        assert_eq!(t.rejected_unknown_epoch(), 1);
    }

    #[test]
    fn retired_lane_sets_are_pooled_and_reused() {
        let t = StripedTransport::new(8);
        t.register_epoch(1, 4);
        t.submit(env(1, 0, 10)).unwrap();
        t.retire_epoch(1);
        // Re-registering with the same width reuses the cleared set; the
        // old epoch's envelope must not resurface.
        t.register_epoch(2, 4);
        assert_eq!(t.pending(2, 0), None);
        assert_eq!(t.drain(2, 0).len(), 0);
        // A different width allocates fresh lanes.
        t.register_epoch(3, 2);
        t.submit(env(3, 1, 7)).unwrap();
        assert_eq!(t.pending(3, 1), Some((1, 7)));
    }

    /// The satellite's backpressure model check: two submitters race a
    /// bounded lane through every interleaving of the transport's yield
    /// points. On every schedule: no envelope is lost (accepted + kept
    /// conserves the submitted set), the lane fills exactly to capacity
    /// (no deadlock, no overshoot), and the drain preserves each
    /// submitter's FIFO order — backpressure changes pacing, never
    /// outcomes.
    #[test]
    fn concurrent_submitters_never_lose_envelopes_under_backpressure() {
        use crate::model::{explore, ExploreOptions, RunSpec};
        let opts = ExploreOptions::for_tags(&["transport.submit", "transport.drain"]);
        let report = explore(&opts, || {
            let t = Arc::new(StripedTransport::new(2));
            t.register_epoch(1, 1);
            let kept = Arc::new(Mutex::new(Vec::new()));
            let mk = |at: u64| {
                let t = Arc::clone(&t);
                let kept = Arc::clone(&kept);
                Box::new(move || {
                    // Each submitter pushes two envelopes into a lane of
                    // capacity 2 and banks whatever bounced.
                    let mut batch = vec![env(1, 0, at), env(1, 0, at + 1)];
                    let res = t.submit_batch(&mut batch);
                    if !batch.is_empty() {
                        assert_eq!(res, Err(TransportError::Backpressure));
                    }
                    let n = batch.len();
                    kept.lock()
                        .unwrap()
                        .extend(batch.drain(..).map(|e| e.deliver_at_us));
                    format!("kept:{n}")
                }) as Box<dyn FnOnce() -> String + Send>
            };
            let finale_t = Arc::clone(&t);
            let finale_kept = Arc::clone(&kept);
            RunSpec {
                threads: vec![mk(10), mk(20)],
                finale: Box::new(move || {
                    let queued = finale_t.pending(1, 0).map_or(0, |(n, _)| n);
                    assert_eq!(queued, 2, "the lane fills exactly to capacity");
                    let drained: Vec<u64> = finale_t
                        .drain(1, 0)
                        .into_iter()
                        .map(|e| e.deliver_at_us)
                        .collect();
                    assert_eq!(finale_t.pending(1, 0), None, "drain leaves nothing");
                    // Per-submitter FIFO: an envelope never overtakes its
                    // predecessor from the same batch.
                    for pair in [(10, 11), (20, 21)] {
                        let pos = |v: u64| drained.iter().position(|&d| d == v);
                        if let (Some(first), Some(second)) = (pos(pair.0), pos(pair.1)) {
                            assert!(first < second, "drain reordered {pair:?}: {drained:?}");
                        }
                    }
                    // Conservation: everything submitted is either queued
                    // (now drained) or was returned to its submitter.
                    let mut all: Vec<u64> = drained.clone();
                    all.extend(finale_kept.lock().unwrap().iter().copied());
                    all.sort_unstable();
                    assert_eq!(all, vec![10, 11, 20, 21], "an envelope was lost");
                    format!("drained:{drained:?}")
                }),
            }
        });
        assert!(report.deadlock.is_none(), "deadlock: {:?}", report.deadlock);
        assert!(report.complete, "schedule budget too small");
        assert!(report.schedules > 1, "the race must actually interleave");
    }
}
