//! Shared utilities for the Edgelet computing platform.
//!
//! This crate hosts the small, dependency-light building blocks that every
//! other crate in the workspace leans on:
//!
//! * [`rng`] — deterministic, forkable random number generation so that every
//!   simulation run is exactly reproducible from a single `u64` seed;
//! * [`stats`] — streaming statistics and percentile helpers used by the
//!   metrics pipeline and the benchmark harness;
//! * [`binom`] — log-space binomial-tail combinatorics backing the
//!   resiliency planner (choosing the overcollection degree `m`);
//! * [`ids`] — strongly-typed identifier newtypes shared across crates;
//! * [`payload`] — reference-counted immutable byte buffers, so fanning a
//!   message out to N recipients shares one allocation instead of copying;
//! * [`sync`] — spin-then-park synchronisation primitives for the
//!   parallel window executors;
//! * [`table`] — plain-text table rendering for the figure-regeneration
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binom;
pub mod error;
pub mod ids;
pub mod payload;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod table;

pub use error::{Error, Result};
pub use payload::Payload;
