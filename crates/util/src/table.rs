//! Minimal plain-text table rendering for the figure-regeneration binaries.
//!
//! The experiment harness prints the same rows/series the paper reports;
//! a small fixed renderer keeps that output stable and diff-friendly.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; it must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:>width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders as comma-separated values (for post-processing/plotting).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float with 4 significant decimals, trimming trailing zeros
/// enough to keep tables compact but stable.
pub fn fnum(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e12 {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["p", "m", "validity"]);
        t.row(&["0.1".into(), "3".into(), "0.9991".into()]);
        t.row(&["0.25".into(), "12".into(), "0.99".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("validity"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(0.12345), "0.1235");
        assert_eq!(fnum(-2.5), "-2.5000");
    }
}
