//! Deterministic, forkable random number generation.
//!
//! Reproducibility is a core requirement of the simulator: a figure in
//! EXPERIMENTS.md must regenerate bit-for-bit from its seed. [`DetRng`] wraps
//! a [`rand::rngs::StdRng`] seeded from a single `u64`, and adds *forking*:
//! deriving an independent child stream from a label, so that e.g. the
//! network-latency stream and the device-churn stream never interleave (and
//! therefore adding draws to one cannot perturb the other).

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A deterministic RNG with labelled forking.
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

/// Mixes a 64-bit value (SplitMix64 finalizer). Used to derive fork seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a label into a 64-bit stream discriminator (FNV-1a).
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl DetRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            inner: StdRng::seed_from_u64(mix64(seed)),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for the given label.
    ///
    /// Forking depends only on `(seed, label)` — not on how many values were
    /// drawn from `self` — so subsystems stay decoupled.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::new(mix64(self.seed ^ hash_label(label)))
    }

    /// Derives an independent generator for a label plus numeric index
    /// (e.g. one stream per device).
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(mix64(self.seed ^ hash_label(label) ^ mix64(index)))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform draw from a range, e.g. `rng.range(0..10)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        // Use 1 - u to avoid ln(0).
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller; one value per call for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal draw parameterized by the *median* and sigma of the
    /// underlying normal. Used for heavy-tailed opportunistic delays.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0, "log-normal median must be positive");
        let z = self.normal(0.0, 1.0);
        median * (sigma * z).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Samples `k` distinct indices from `0..n` (floyd's algorithm via
    /// shuffle of a prefix; O(n) but simple and deterministic).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Picks one element of a slice uniformly (panics on empty input).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick on empty slice");
        &items[self.range(0..items.len())]
    }

    /// Access to the underlying `rand` RNG for APIs that want `impl Rng`.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially disjoint");
    }

    #[test]
    fn fork_is_independent_of_draw_position() {
        let root = DetRng::new(99);
        let f1 = root.fork("network");
        let mut drained = DetRng::new(99);
        for _ in 0..1000 {
            drained.next_u64();
        }
        let f2 = drained.fork("network");
        let mut f1 = f1;
        let mut f2 = f2;
        for _ in 0..10 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn fork_labels_distinguish_streams() {
        let root = DetRng::new(5);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut i0 = root.fork_indexed("dev", 0);
        let mut i1 = root.fork_indexed("dev", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = DetRng::new(11);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn exponential_mean_is_calibrated() {
        let mut rng = DetRng::new(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "got {mean}");
    }

    #[test]
    fn normal_moments_are_calibrated() {
        let mut rng = DetRng::new(17);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = DetRng::new(23);
        let s = rng.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(s.iter().all(|&i| i < 50));
        // k > n clamps
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
        assert!(rng.sample_indices(0, 5).is_empty());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(29);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn log_normal_median_is_calibrated() {
        let mut rng = DetRng::new(31);
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.log_normal(8.0, 0.75)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 8.0).abs() < 0.5, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }
}
