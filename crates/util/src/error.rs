//! Common error type shared by the workspace crates.

use std::fmt;

/// Convenience alias used across the Edgelet crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Platform-wide error type.
///
/// Each variant carries a human-readable message; lower-level crates attach
/// enough context that callers rarely need to wrap further.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A value failed to decode from its wire representation.
    Decode(String),
    /// A value could not be encoded (e.g. a length exceeding the format cap).
    Encode(String),
    /// A cryptographic check failed (MAC mismatch, bad attestation quote...).
    Crypto(String),
    /// A configuration is internally inconsistent or out of supported range.
    InvalidConfig(String),
    /// A query definition is malformed (unknown column, empty grouping set...).
    InvalidQuery(String),
    /// A schema mismatch between a query and a data store.
    Schema(String),
    /// The simulation detected an impossible state transition.
    Simulation(String),
    /// An execution-protocol failure (e.g. quorum unreachable before deadline).
    Protocol(String),
    /// The requested resiliency target cannot be met with the given bounds.
    Unsatisfiable(String),
}

impl Error {
    /// The broad category of the error, used by tests and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Decode(_) => "decode",
            Error::Encode(_) => "encode",
            Error::Crypto(_) => "crypto",
            Error::InvalidConfig(_) => "invalid_config",
            Error::InvalidQuery(_) => "invalid_query",
            Error::Schema(_) => "schema",
            Error::Simulation(_) => "simulation",
            Error::Protocol(_) => "protocol",
            Error::Unsatisfiable(_) => "unsatisfiable",
        }
    }

    /// The message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            Error::Decode(m)
            | Error::Encode(m)
            | Error::Crypto(m)
            | Error::InvalidConfig(m)
            | Error::InvalidQuery(m)
            | Error::Schema(m)
            | Error::Simulation(m)
            | Error::Protocol(m)
            | Error::Unsatisfiable(m) => m,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::Decode("truncated varint".into());
        assert_eq!(e.to_string(), "decode: truncated varint");
        assert_eq!(e.kind(), "decode");
        assert_eq!(e.message(), "truncated varint");
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            Error::Decode(String::new()),
            Error::Encode(String::new()),
            Error::Crypto(String::new()),
            Error::InvalidConfig(String::new()),
            Error::InvalidQuery(String::new()),
            Error::Schema(String::new()),
            Error::Simulation(String::new()),
            Error::Protocol(String::new()),
            Error::Unsatisfiable(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
