//! Low-level synchronisation primitives shared by the parallel
//! executors (`edgelet-sim` windows, `edgelet-live` rounds).
//!
//! The window protocols are generation-counted barriers: a coordinator
//! bumps a counter to open work, workers bump another to report
//! completion. Busy-spinning on those counters burns a full core per
//! waiter — catastrophic when the host has fewer cores than threads
//! (an oversubscribed CI box turns every barrier into a scheduler
//! fight). [`EpochGate`] keeps the lock-free fast path for the moment
//! the counter is already past the target, spins briefly for the
//! near-miss case, and then parks on a condvar so waiting threads cost
//! nothing until the counter actually moves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How long a waiter spins before parking. Long enough to cover the
/// common "the other side is a few instructions away" window, short
/// enough that an oversubscribed host degrades to plain blocking.
const SPINS_BEFORE_PARK: u32 = 64;

/// A monotone `u64` counter threads can advance and park on.
///
/// `wait_min(target)` returns as soon as the counter is `>= target`;
/// `add(n)` advances it and wakes every parked waiter. Advancing takes
/// the internal mutex, so a waiter that observed a stale value and went
/// to park cannot miss the wakeup (the store and the notify happen
/// under the same lock the waiter re-checks under).
#[derive(Debug, Default)]
pub struct EpochGate {
    value: AtomicU64,
    gate: Mutex<()>,
    cv: Condvar,
}

impl EpochGate {
    /// A gate starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counter value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Advances the counter by `n` and wakes all waiters. Returns the
    /// new value.
    pub fn add(&self, n: u64) -> u64 {
        let _g = lock(&self.gate);
        let v = self.value.fetch_add(n, Ordering::AcqRel) + n;
        self.cv.notify_all();
        v
    }

    /// Waits until the counter reaches `min`: lock-free check, a short
    /// spin, then a condvar park. Returns the observed value.
    pub fn wait_min(&self, min: u64) -> u64 {
        let mut spins = 0u32;
        loop {
            let v = self.value.load(Ordering::Acquire);
            if v >= min {
                return v;
            }
            if spins >= SPINS_BEFORE_PARK {
                break;
            }
            spins += 1;
            std::hint::spin_loop();
        }
        let mut g = lock(&self.gate);
        loop {
            let v = self.value.load(Ordering::Acquire);
            if v >= min {
                return v;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_returns_immediately_when_already_past() {
        let g = EpochGate::new();
        assert_eq!(g.add(3), 3);
        assert_eq!(g.wait_min(2), 3);
        assert_eq!(g.wait_min(3), 3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn parked_waiter_wakes_on_add() {
        let g = Arc::new(EpochGate::new());
        let waiter = {
            let g = g.clone();
            std::thread::spawn(move || g.wait_min(1))
        };
        // The waiter may or may not have parked yet; add() must wake it
        // either way.
        std::thread::yield_now();
        g.add(1);
        assert_eq!(waiter.join().unwrap(), 1);
    }

    #[test]
    fn many_waiters_one_release() {
        let g = Arc::new(EpochGate::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || g.wait_min(5))
            })
            .collect();
        for _ in 0..5 {
            g.add(1);
        }
        for h in handles {
            assert!(h.join().unwrap() >= 5);
        }
    }

    #[test]
    fn generation_protocol_round_trips() {
        // Coordinator/worker handshake: open generations one at a time,
        // worker acknowledges through a second gate.
        let open = Arc::new(EpochGate::new());
        let done = Arc::new(EpochGate::new());
        let worker = {
            let (open, done) = (open.clone(), done.clone());
            std::thread::spawn(move || {
                for seen in 0..100u64 {
                    open.wait_min(seen + 1);
                    done.add(1);
                }
            })
        };
        for gen in 0..100u64 {
            open.add(1);
            done.wait_min(gen + 1);
        }
        worker.join().unwrap();
        assert_eq!(done.get(), 100);
    }
}
