//! Log-space binomial combinatorics for the resiliency planner.
//!
//! The Overcollection strategy of the paper splits a snapshot over `n + m`
//! edgelets and the query stays valid as long as at least `n` partitions
//! survive. With an i.i.d. failure presumption `p` per partition, validity
//! holds with probability
//!
//! ```text
//! P[valid] = P[X >= n],   X ~ Binomial(n + m, 1 - p)
//! ```
//!
//! The planner needs this tail for `n + m` up to a few thousand without
//! overflow or underflow, hence log-space evaluation via `ln_gamma`.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 for the positive arguments the planner uses.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the Lanczos approximation.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)`; `-inf` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial pmf `P[X = k]` for `X ~ Binomial(n, p)`, computed in log space.
pub fn binom_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Upper tail `P[X >= k]` for `X ~ Binomial(n, p)`.
///
/// Sums the smaller side of the distribution for accuracy.
pub fn binom_tail_ge(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // Sum whichever side has fewer terms, then complement if needed.
    let upper_terms = n - k + 1;
    let lower_terms = k;
    if upper_terms <= lower_terms {
        let mut acc = 0.0;
        for i in k..=n {
            acc += binom_pmf(n, i, p);
        }
        acc.clamp(0.0, 1.0)
    } else {
        let mut acc = 0.0;
        for i in 0..k {
            acc += binom_pmf(n, i, p);
        }
        (1.0 - acc).clamp(0.0, 1.0)
    }
}

/// Probability that an Overcollection execution with `n + m` partitions and
/// per-partition survival probability `1 - p` remains valid (at least `n`
/// partitions survive).
pub fn overcollection_validity(n: u64, m: u64, p: f64) -> f64 {
    binom_tail_ge(n + m, n, 1.0 - p)
}

/// Normal (De Moivre–Laplace) approximation of [`overcollection_validity`]
/// with continuity correction. Used by the fast planner variant and compared
/// against the exact tail in the ablation bench.
pub fn overcollection_validity_normal_approx(n: u64, m: u64, p: f64) -> f64 {
    let total = (n + m) as f64;
    let q = 1.0 - p;
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return if n == 0 { 1.0 } else { 0.0 };
    }
    let mu = total * q;
    let sigma = (total * p * q).sqrt();
    if sigma == 0.0 {
        return if mu >= n as f64 { 1.0 } else { 0.0 };
    }
    // P[X >= n] with continuity correction: 1 - Phi((n - 0.5 - mu)/sigma)
    let z = (n as f64 - 0.5 - mu) / sigma;
    (0.5 * erfc(z / std::f64::consts::SQRT_2)).clamp(0.0, 1.0)
}

/// Complementary error function (Abramowitz & Stegun 7.1.26-style rational
/// approximation, max absolute error ~1.5e-7 — ample for planning).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(n) = (n-1)! for integers.
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - (3_628_800.0f64).ln()).abs() < 1e-9);
        // Gamma(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - (10.0f64).ln()).abs() < 1e-10);
        assert!((ln_choose(10, 5) - (252.0f64).ln()).abs() < 1e-9);
        assert_eq!(ln_choose(4, 0), 0.0);
        assert_eq!(ln_choose(4, 4), 0.0);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (50, 0.05), (200, 0.7)] {
            let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_degenerate_probabilities() {
        assert_eq!(binom_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binom_pmf(5, 1, 0.0), 0.0);
        assert_eq!(binom_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binom_pmf(5, 4, 1.0), 0.0);
        assert_eq!(binom_pmf(5, 6, 0.5), 0.0);
    }

    #[test]
    fn tail_matches_brute_force() {
        for &(n, k, p) in &[(10u64, 3u64, 0.4), (30, 25, 0.9), (100, 50, 0.5)] {
            let brute: f64 = (k..=n).map(|i| binom_pmf(n, i, p)).sum();
            let fast = binom_tail_ge(n, k, p);
            assert!((brute - fast).abs() < 1e-9, "n={n} k={k} p={p}");
        }
        assert_eq!(binom_tail_ge(10, 0, 0.3), 1.0);
        assert_eq!(binom_tail_ge(10, 11, 0.3), 0.0);
    }

    #[test]
    fn validity_monotone_in_m_and_p() {
        // More overcollection never hurts validity.
        for m in 0..20u64 {
            let a = overcollection_validity(10, m, 0.2);
            let b = overcollection_validity(10, m + 1, 0.2);
            assert!(b >= a - 1e-12, "m={m}: {b} < {a}");
        }
        // Higher failure probability never helps.
        for i in 0..20 {
            let p1 = i as f64 * 0.04;
            let p2 = p1 + 0.04;
            let a = overcollection_validity(10, 5, p1);
            let b = overcollection_validity(10, 5, p2);
            assert!(b <= a + 1e-12, "p={p1}: {b} > {a}");
        }
    }

    #[test]
    fn validity_known_values() {
        // n=1, m=0: survives iff the single partition survives.
        assert!((overcollection_validity(1, 0, 0.25) - 0.75).abs() < 1e-12);
        // n=1, m=1: survives unless both fail: 1 - p^2.
        assert!((overcollection_validity(1, 1, 0.25) - (1.0 - 0.0625)).abs() < 1e-12);
        // n=2, m=0: both must survive.
        assert!((overcollection_validity(2, 0, 0.1) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn normal_approx_tracks_exact_for_large_n() {
        for &(n, m, p) in &[(50u64, 10u64, 0.1), (200, 30, 0.15), (1000, 100, 0.08)] {
            let exact = overcollection_validity(n, m, p);
            let approx = overcollection_validity_normal_approx(n, m, p);
            assert!(
                (exact - approx).abs() < 0.02,
                "n={n} m={m} p={p}: exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
        assert!((erfc(-5.0) - 2.0).abs() < 2e-12);
    }

    #[test]
    fn large_n_is_stable() {
        // Must not overflow/underflow at planner scales.
        let v = overcollection_validity(2000, 300, 0.1);
        assert!(v > 0.999, "got {v}");
        let w = overcollection_validity(2000, 0, 0.1);
        assert!(w < 1e-60, "got {w}");
    }
}
