//! Strongly-typed identifiers shared across the workspace.
//!
//! Every distributed-systems bug report starts with "we passed the wrong id".
//! These newtypes make device ids, operator ids and query ids distinct types
//! while still being cheap `u64`-sized copies.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw index.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The raw index as a `usize`, for indexing dense tables.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifies one edgelet (a TEE-enabled personal device).
    DeviceId,
    "dev#"
);

define_id!(
    /// Identifies one operator vertex in a query execution plan.
    OperatorId,
    "op#"
);

define_id!(
    /// Identifies one query execution.
    QueryId,
    "q#"
);

define_id!(
    /// Identifies one message on the simulated network.
    MessageId,
    "msg#"
);

define_id!(
    /// Identifies one data partition of a snapshot (0..n+m-1).
    PartitionId,
    "part#"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_and_display() {
        let d = DeviceId::new(42);
        assert_eq!(d.raw(), 42);
        assert_eq!(d.index(), 42);
        assert_eq!(format!("{d}"), "dev#42");
        assert_eq!(format!("{d:?}"), "dev#42");
        assert_eq!(DeviceId::from(42u64), d);
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(OperatorId::new(1));
        set.insert(OperatorId::new(2));
        set.insert(OperatorId::new(1));
        assert_eq!(set.len(), 2);
        assert!(OperatorId::new(1) < OperatorId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(QueryId::default().raw(), 0);
        assert_eq!(PartitionId::default(), PartitionId::new(0));
        assert_eq!(MessageId::default().index(), 0);
    }
}
