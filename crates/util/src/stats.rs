//! Streaming statistics and summary helpers.
//!
//! Used by the simulator metrics (message delays, completion times) and by
//! the experiment harness to summarize repeated runs.

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a sample using linear interpolation (like numpy's default).
///
/// `q` is in `[0, 100]`. Returns `None` on an empty sample.
pub fn percentile(sample: &mut [f64], q: f64) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 100.0);
    let pos = q / 100.0 * (sample.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sample[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sample[lo] * (1.0 - frac) + sample[hi] * frac)
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturation buckets at the ends.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Counts per bucket, low to high.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Mean of a slice (0 when empty). Convenience for the harness.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean()), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&mut xs, 0.0), Some(1.0));
        assert_eq!(percentile(&mut xs, 100.0), Some(4.0));
        assert_eq!(percentile(&mut xs, 50.0), Some(2.5));
        assert_eq!(percentile(&mut [], 50.0), None);
        // q outside [0,100] clamps
        assert_eq!(percentile(&mut xs, 150.0), Some(4.0));
    }

    #[test]
    fn histogram_buckets_and_saturation() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 25.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
