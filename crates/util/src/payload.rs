//! Shared, immutable message payloads.
//!
//! Protocol messages fan out: a builder ships one encoded slice to every
//! computer replica, a coordinator broadcasts one centroid set to every
//! peer. With `Vec<u8>` payloads each recipient costs a full copy of the
//! bytes; [`Payload`] makes the bytes immutable and reference-counted so
//! handing a message to N recipients is N pointer bumps, not N memcpys.
//!
//! A payload is a `(buffer, range)` pair: [`Payload::slice`] carves
//! zero-copy sub-views out of one allocation (e.g. framing a region of a
//! larger encode buffer). Conversion from `Vec<u8>` is allocation-free —
//! the vector is moved behind the `Arc`, never re-copied.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply shareable byte buffer (view into an `Arc<Vec<u8>>`).
#[derive(Clone, Default)]
pub struct Payload {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Payload {
    /// Wraps a byte vector without copying it.
    pub fn new(bytes: Vec<u8>) -> Self {
        let end = bytes.len();
        Self {
            data: Arc::new(bytes),
            start: 0,
            end,
        }
    }

    /// An empty payload (no allocation besides the shared empty buffer).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Another handle to the same bytes — the fan-out primitive. This is
    /// `Clone::clone` under a name that states the cost: a reference
    /// count bump, never a byte copy.
    pub fn share(&self) -> Self {
        self.clone()
    }

    /// A zero-copy sub-view. `range` is relative to this view.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds for payload of {} bytes",
            self.len()
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the viewed bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Recovers the underlying vector. Free when this is the only handle
    /// to a full-range payload; otherwise copies the view.
    pub fn into_vec(self) -> Vec<u8> {
        if self.start == 0 && self.end == self.data.len() {
            match Arc::try_unwrap(self.data) {
                Ok(vec) => vec,
                Err(shared) => shared[self.start..self.end].to_vec(),
            }
        } else {
            self.as_slice().to_vec()
        }
    }

    /// Number of handles sharing the underlying buffer (diagnostics).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Self::new(bytes)
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Self::new(bytes.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(bytes: [u8; N]) -> Self {
        Self::new(bytes.to_vec())
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes", self.len())?;
        if self.start != 0 || self.end != self.data.len() {
            write!(
                f,
                ", view {}..{} of {}",
                self.start,
                self.end,
                self.data.len()
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_is_zero_copy() {
        let vec = vec![1u8, 2, 3];
        let ptr = vec.as_ptr();
        let p = Payload::from(vec);
        assert_eq!(p.as_slice().as_ptr(), ptr, "buffer must not move");
        let recovered = p.into_vec();
        assert_eq!(recovered.as_ptr(), ptr, "sole handle recovers the vec");
    }

    #[test]
    fn share_bumps_the_count_not_the_bytes() {
        let p = Payload::from(vec![9u8; 64]);
        let q = p.share();
        assert_eq!(p.handle_count(), 2);
        assert_eq!(p.as_slice().as_ptr(), q.as_slice().as_ptr());
        assert_eq!(p, q);
    }

    #[test]
    fn slice_views_without_copying() {
        let p = Payload::from((0u8..10).collect::<Vec<_>>());
        let mid = p.slice(2..8);
        assert_eq!(mid.as_slice(), &[2, 3, 4, 5, 6, 7]);
        assert_eq!(mid.len(), 6);
        let inner = mid.slice(1..=2);
        assert_eq!(inner.as_slice(), &[3, 4]);
        assert_eq!(inner.handle_count(), 3);
        assert_eq!(p.slice(..).as_slice(), p.as_slice());
        assert!(p.slice(4..4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Payload::from(vec![1u8, 2]).slice(0..3);
    }

    #[test]
    fn into_vec_copies_when_shared_or_sliced() {
        let p = Payload::from(vec![1u8, 2, 3, 4]);
        let view = p.slice(1..3);
        assert_eq!(view.into_vec(), vec![2, 3]);
        let q = p.share();
        assert_eq!(q.into_vec(), vec![1, 2, 3, 4]); // p still alive: copy
        assert_eq!(p.into_vec(), vec![1, 2, 3, 4]); // sole handle: move
    }

    #[test]
    fn equality_and_hashing_follow_the_view() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Payload::from(vec![0u8, 7, 8, 0]).slice(1..3);
        let b = Payload::from(vec![7u8, 8]);
        assert_eq!(a, b);
        assert_eq!(a, vec![7u8, 8]);
        assert_eq!(a, *[7u8, 8].as_slice());
        let hash = |p: &Payload| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn debug_shows_view_bounds() {
        let p = Payload::from(vec![0u8; 8]);
        assert_eq!(format!("{p:?}"), "Payload(8 bytes)");
        assert_eq!(
            format!("{:?}", p.slice(2..5)),
            "Payload(3 bytes, view 2..5 of 8)"
        );
    }
}
