//! Event throughput of the discrete-event engine: how many protocol
//! messages per second of real time the simulator sustains.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use edgelet_core::sim::{
    Actor, Context, DeviceConfig, Duration, NetworkModel, SimConfig, Simulation,
};
use edgelet_core::util::ids::DeviceId;

/// Bounces a message back and forth a fixed number of times.
struct Bouncer {
    remaining: u32,
    peer: DeviceId,
    kick_off: bool,
}

impl Actor for Bouncer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.kick_off {
            ctx.send(self.peer, vec![0u8; 64]);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, payload: &[u8]) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, payload.to_vec());
        }
    }
}

fn build(pairs: usize, bounces: u32) -> Simulation {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::reliable(Duration::from_millis(1)),
            ..SimConfig::default()
        },
        1,
    );
    for _ in 0..pairs {
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        sim.install_actor(
            a,
            Box::new(Bouncer {
                remaining: bounces,
                peer: b,
                kick_off: true,
            }),
        );
        sim.install_actor(
            b,
            Box::new(Bouncer {
                remaining: bounces,
                peer: a,
                kick_off: false,
            }),
        );
    }
    sim
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/events");
    // 50 pairs x 200 bounces x 2 directions = ~20k deliveries per run.
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("20k_deliveries", |b| {
        b.iter_batched(
            || build(50, 200),
            |mut sim| {
                sim.run();
                sim.metrics().messages_delivered
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_event_throughput);
criterion_main!(benches);
