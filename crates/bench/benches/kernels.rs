//! Compute-kernel benchmarks: the work one edgelet does per partition.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use edgelet_core::ml::gen::{gaussian_mixture, rows_to_points};
use edgelet_core::ml::grouping::GroupingQuery;
use edgelet_core::ml::kmeans::{KMeans, KMeansConfig};
use edgelet_core::ml::{AggKind, AggSpec};
use edgelet_core::store::synth;
use edgelet_core::util::rng::DetRng;
use std::hint::black_box;

fn bench_grouping(c: &mut Criterion) {
    let mut rng = DetRng::new(1);
    let store = synth::health_store(10_000, &mut rng);
    let q = GroupingQuery::new(
        &[&["sex"], &["gir"], &[]],
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggKind::Avg, "bmi"),
            AggSpec::over(AggKind::Max, "age"),
        ],
    );
    let mut g = c.benchmark_group("kernels/grouping");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("compute_10k_rows", |b| {
        b.iter(|| {
            q.compute(black_box(store.schema()), black_box(store.rows()))
                .unwrap()
        })
    });
    let partial_a = q.compute(store.schema(), &store.rows()[..5_000]).unwrap();
    let partial_b = q.compute(store.schema(), &store.rows()[5_000..]).unwrap();
    g.bench_function("merge_partials", |b| {
        b.iter_batched(
            || partial_a.clone(),
            |mut a| {
                a.merge(&partial_b).unwrap();
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = DetRng::new(2);
    let (points, _) = gaussian_mixture(
        &[
            (vec![0.0, 0.0], 1.0),
            (vec![10.0, 0.0], 1.0),
            (vec![0.0, 10.0], 1.0),
        ],
        10_000,
        &mut rng,
    );
    let cfg = KMeansConfig {
        k: 3,
        max_iterations: 20,
        tolerance: 1e-6,
    };
    let mut g = c.benchmark_group("kernels/kmeans");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("lloyd_step_10k_points", |b| {
        b.iter_batched(
            || {
                let mut seed_rng = DetRng::new(3);
                KMeans::seed(&points, &cfg, &mut seed_rng).unwrap()
            },
            |mut km| {
                km.lloyd_step(&points);
                km
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut rng = DetRng::new(4);
    let store = synth::health_store(10_000, &mut rng);
    let mut g = c.benchmark_group("kernels/features");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("rows_to_points_10k", |b| {
        b.iter(|| {
            rows_to_points(
                black_box(store.schema()),
                black_box(store.rows()),
                &["age", "bmi", "systolic_bp"],
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_grouping,
    bench_kmeans,
    bench_feature_extraction
);
criterion_main!(benches);
