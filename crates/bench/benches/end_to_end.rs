//! End-to-end benchmark: one full Edgelet query (plan + simulate +
//! combine) — the simulator-side cost of the demo's Part 2.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use edgelet_bench::census_spec;
use edgelet_core::prelude::*;

fn run_once(seed: u64) -> bool {
    let mut p = Platform::build(PlatformConfig {
        seed,
        contributors: 1_000,
        processors: 80,
        network: NetworkProfile::Lossy {
            drop_probability: 0.05,
        },
        ..PlatformConfig::default()
    });
    let spec = census_spec(&mut p, 200);
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(50),
            &ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.1,
                ..ResilienceConfig::default()
            },
        )
        .expect("run");
    run.report.valid
}

fn bench_full_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(20);
    let mut seed = 0u64;
    g.bench_function("grouping_query_1k_contributors", |b| {
        b.iter_batched(
            || {
                seed += 1;
                seed
            },
            run_once,
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_full_query);
criterion_main!(benches);
