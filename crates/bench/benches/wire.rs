//! Microbenchmarks of the wire codec: the cost of every byte that crosses
//! the opportunistic network.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use edgelet_core::store::{synth, Row};
use edgelet_core::util::rng::DetRng;
use edgelet_core::wire::{crc::crc32, from_bytes, to_bytes, Frame};
use std::hint::black_box;

fn rows(n: usize) -> Vec<Row> {
    let mut rng = DetRng::new(1);
    synth::health_store(n, &mut rng).rows().to_vec()
}

fn bench_rows_roundtrip(c: &mut Criterion) {
    let batch = rows(1_000);
    let encoded = to_bytes(&batch);
    let mut g = c.benchmark_group("wire/rows");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_1000_rows", |b| {
        b.iter(|| to_bytes(black_box(&batch)))
    });
    g.bench_function("decode_1000_rows", |b| {
        b.iter(|| from_bytes::<Vec<Row>>(black_box(&encoded)).unwrap())
    });
    g.finish();
}

fn bench_frame(c: &mut Criterion) {
    let batch = rows(100);
    let frame = Frame::new(3, &batch);
    let wire = frame.to_wire();
    let mut g = c.benchmark_group("wire/frame");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("to_wire_100_rows", |b| {
        b.iter_batched(|| frame.clone(), |f| f.to_wire(), BatchSize::SmallInput)
    });
    g.bench_function("from_wire_100_rows", |b| {
        b.iter(|| Frame::from_wire(black_box(&wire)).unwrap())
    });
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xABu8; 64 * 1024];
    let mut g = c.benchmark_group("wire/crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("crc32_64k", |b| b.iter(|| crc32(black_box(&data))));
    g.finish();
}

criterion_group!(benches, bench_rows_roundtrip, bench_frame, bench_crc);
criterion_main!(benches);
