//! Personal-store benchmarks: filtered scans and reservoir sampling, the
//! per-contribution work on each edgelet.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edgelet_core::store::{synth, CmpOp, Predicate, SortedIndex, Value};
use edgelet_core::util::rng::DetRng;
use std::hint::black_box;

fn bench_scans(c: &mut Criterion) {
    let mut rng = DetRng::new(1);
    let store = synth::health_store(100_000, &mut rng);
    let pred = Predicate::cmp("age", CmpOp::Gt, Value::Int(65)).and(Predicate::cmp(
        "gir",
        CmpOp::Le,
        Value::Int(3),
    ));
    let mut g = c.benchmark_group("store");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("scan_filtered_100k", |b| {
        b.iter(|| store.scan(black_box(&pred)).unwrap())
    });
    g.bench_function("count_filtered_100k", |b| {
        b.iter(|| store.count(black_box(&pred)).unwrap())
    });
    g.bench_function("scan_project_100k", |b| {
        b.iter(|| {
            store
                .scan_project(black_box(&pred), &["age", "bmi"])
                .unwrap()
        })
    });
    g.bench_function("reservoir_sample_1k_of_100k", |b| {
        b.iter(|| {
            let mut sample_rng = DetRng::new(2);
            store
                .sample(black_box(&Predicate::True), 1_000, &mut sample_rng)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut rng = DetRng::new(2);
    let store = synth::health_store(100_000, &mut rng);
    let index = SortedIndex::build(&store, "age").unwrap();
    let mut g = c.benchmark_group("store/index");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("build_100k", |b| {
        b.iter(|| SortedIndex::build(black_box(&store), "age").unwrap())
    });
    // The selective lookup an elderly-care query performs: ~1.4% of rows.
    g.bench_function("lookup_age_ge_95", |b| {
        b.iter(|| index.lookup(CmpOp::Ge, black_box(&Value::Int(95))).unwrap())
    });
    g.bench_function("scan_age_ge_95", |b| {
        b.iter(|| {
            store
                .count(black_box(&Predicate::cmp("age", CmpOp::Ge, Value::Int(95))))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scans, bench_index);
criterion_main!(benches);
