//! Planner benchmarks, including the DESIGN.md ablation: exact binomial
//! tail vs normal approximation when choosing the overcollection degree.

use criterion::{criterion_group, criterion_main, Criterion};
use edgelet_core::ml::grouping::GroupingQuery;
use edgelet_core::prelude::*;
use edgelet_core::query::plan::build_plan;
use edgelet_core::query::resilience::{plan_overcollection, plan_overcollection_approx};
use edgelet_core::store::synth::health_schema;
use edgelet_core::tee::Directory;
use edgelet_core::util::rng::DetRng;
use std::hint::black_box;

fn bench_overcollection_planners(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner/overcollection");
    for &n in &[8u64, 64, 512] {
        g.bench_function(format!("exact_n{n}"), |b| {
            b.iter(|| plan_overcollection(black_box(n), 0.15, 0.999, 4096).unwrap())
        });
        g.bench_function(format!("approx_n{n}"), |b| {
            b.iter(|| plan_overcollection_approx(black_box(n), 0.15, 0.999, 4096).unwrap())
        });
    }
    g.finish();
}

fn bench_build_plan(c: &mut Criterion) {
    let mut dir = Directory::new();
    let mut rng = DetRng::new(1);
    for i in 0..4_000u64 {
        dir.enroll(
            DeviceId::new(i),
            DeviceClass::SgxPc,
            i < 3_000,
            i >= 3_000,
            &mut rng,
        );
    }
    let spec = QuerySpec {
        id: QueryId::new(1),
        filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        snapshot_cardinality: 2_000,
        kind: QueryKind::GroupingSets(GroupingQuery::new(
            &[&["sex"], &["gir"], &[]],
            vec![
                AggSpec::count_star(),
                AggSpec::over(AggKind::Avg, "bmi"),
                AggSpec::over(AggKind::Avg, "systolic_bp"),
            ],
        )),
        deadline_secs: 3_600.0,
    };
    let privacy = PrivacyConfig::none()
        .with_max_tuples(100)
        .separate("bmi", "systolic_bp");
    let resilience = ResilienceConfig {
        strategy: Strategy::Overcollection,
        failure_probability: 0.15,
        ..ResilienceConfig::default()
    };
    c.bench_function("planner/build_plan_4k_directory", |b| {
        b.iter(|| {
            let mut plan_rng = DetRng::new(7);
            build_plan(
                black_box(&spec),
                &health_schema(),
                &privacy,
                &resilience,
                &dir,
                DeviceId::new(0),
                &mut plan_rng,
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_overcollection_planners, bench_build_plan);
criterion_main!(benches);
