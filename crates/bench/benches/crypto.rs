//! Microbenchmarks of the from-scratch crypto substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edgelet_core::crypto::aead::ChaCha20Poly1305;
use edgelet_core::crypto::hmac::hmac_sha256;
use edgelet_core::crypto::sha256::sha256;
use edgelet_core::crypto::x25519::{x25519, X25519_BASEPOINT};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/sha256");
    for size in [256usize, 16 * 1024] {
        let data = vec![0x5Au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x5Au8; 1024];
    c.bench_function("crypto/hmac_sha256_1k", |b| {
        b.iter(|| hmac_sha256(black_box(b"key"), black_box(&data)))
    });
}

fn bench_aead(c: &mut Criterion) {
    let aead = ChaCha20Poly1305::new([7u8; 32]);
    let nonce = [1u8; 12];
    let plaintext = vec![0x42u8; 4096];
    let sealed = aead.seal(&nonce, &[], &plaintext);
    let mut g = c.benchmark_group("crypto/chacha20poly1305");
    g.throughput(Throughput::Bytes(plaintext.len() as u64));
    g.bench_function("seal_4k", |b| {
        b.iter(|| aead.seal(black_box(&nonce), &[], black_box(&plaintext)))
    });
    g.bench_function("open_4k", |b| {
        b.iter(|| {
            aead.open(black_box(&nonce), &[], black_box(&sealed))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_x25519(c: &mut Criterion) {
    let sk = [9u8; 32];
    c.bench_function("crypto/x25519_scalarmult", |b| {
        b.iter(|| x25519(black_box(&sk), black_box(&X25519_BASEPOINT)))
    });
}

criterion_group!(benches, bench_sha256, bench_hmac, bench_aead, bench_x25519);
criterion_main!(benches);
