//! Shared helpers for the experiment binaries (`src/bin/`) and Criterion
//! benches (`benches/`).
//!
//! Every binary regenerates one of the paper's figures or §3.3 claims and
//! prints the series as a plain table plus CSV; EXPERIMENTS.md records the
//! outputs. See DESIGN.md §4 for the experiment index.

pub mod report;

use edgelet_core::prelude::*;
use std::sync::Mutex;

/// Standard survey query used across experiments: count + mean BMI by sex
/// and overall, over the 65+ population.
pub fn survey_spec(platform: &mut Platform, c: usize) -> QuerySpec {
    platform.grouping_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        c,
        &[&["sex"], &[]],
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
    )
}

/// Standard unfiltered variant (every contributor eligible) for sweeps
/// where bucket starvation must not confound the measurement.
pub fn census_spec(platform: &mut Platform, c: usize) -> QuerySpec {
    platform.grouping_query(
        Predicate::True,
        c,
        &[&["sex"], &[]],
        vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
    )
}

/// Outcome counters for repeated runs of one configuration.
#[derive(Debug, Clone, Default)]
pub struct SweepPoint {
    /// Trials run.
    pub trials: usize,
    /// Runs where the querier got a result before the deadline.
    pub completed: usize,
    /// Runs meeting the structural validity criterion.
    pub valid: usize,
    /// Mean messages per run.
    pub mean_messages: f64,
    /// Mean bytes per run.
    pub mean_bytes: f64,
    /// Mean virtual completion seconds (completed runs only).
    pub mean_completion_secs: f64,
    /// Mean overcollection degree planned.
    pub mean_m: f64,
}

/// Runs `trials` independent seeds of one configuration in parallel and
/// aggregates. `make_run` builds a platform and executes one query.
pub fn sweep<F>(trials: usize, make_run: F) -> SweepPoint
where
    F: Fn(u64) -> edgelet_core::platform::RunResult + Sync,
{
    let acc = Mutex::new((SweepPoint::default(), 0usize, 0.0f64));
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(trials.max(1));
        for _ in 0..threads {
            let next = &next;
            let acc = &acc;
            let make_run = &make_run;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let run = make_run(i as u64);
                let mut guard = acc.lock().expect("sweep accumulator");
                let (point, completed_n, completion_sum) = &mut *guard;
                point.trials += 1;
                if run.report.completed {
                    point.completed += 1;
                    *completed_n += 1;
                    *completion_sum += run.report.completion_secs.unwrap_or(0.0);
                }
                if run.report.valid {
                    point.valid += 1;
                }
                point.mean_messages += run.report.messages_sent as f64;
                point.mean_bytes += run.report.bytes_sent as f64;
                point.mean_m += run.plan.m as f64;
            });
        }
    });
    let (mut point, completed_n, completion_sum) = acc.into_inner().expect("sweep accumulator");
    if point.trials > 0 {
        point.mean_messages /= point.trials as f64;
        point.mean_bytes /= point.trials as f64;
        point.mean_m /= point.trials as f64;
    }
    if completed_n > 0 {
        point.mean_completion_secs = completion_sum / completed_n as f64;
    }
    point
}

/// Prints a table followed by its CSV form (for plotting).
pub fn emit(table: &edgelet_core::util::table::Table) {
    println!("{}", table.render());
    println!("--- csv ---\n{}", table.render_csv());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_aggregates_across_seeds() {
        let point = sweep(4, |seed| {
            let mut p = Platform::build(PlatformConfig {
                seed,
                contributors: 600,
                processors: 40,
                network: NetworkProfile::Reliable,
                ..PlatformConfig::default()
            });
            let spec = census_spec(&mut p, 100);
            p.run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(50),
                &ResilienceConfig::default(),
            )
            .unwrap()
        });
        assert_eq!(point.trials, 4);
        assert_eq!(point.completed, 4);
        assert_eq!(point.valid, 4);
        assert!(point.mean_messages > 0.0);
        assert!(point.mean_completion_secs > 0.0);
    }
}
