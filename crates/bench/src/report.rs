//! Reproducible performance report: the workloads behind `bench_report`.
//!
//! The criterion suites under `benches/` are interactive tools; this
//! module is the *durable* record. `cargo run -p edgelet-bench --bin
//! bench_report` times four representative workloads — the k-means
//! kernel, wire encode/decode, a broadcast-heavy simulator scenario, and
//! a full end-to-end query — and emits a JSON snapshot (`BENCH_*.json`
//! at the repo root) so performance PRs carry their own evidence and
//! future PRs have a trajectory to compare against.
//!
//! Suite names intentionally mirror the criterion benchmark IDs.

use edgelet_core::ml::gen::gaussian_mixture;
use edgelet_core::ml::kmeans::{KMeans, KMeansConfig};
use edgelet_core::prelude::*;
use edgelet_core::sim::{
    Actor, Context, DeviceConfig, Duration, NetworkModel, SimConfig, Simulation,
};
use edgelet_core::store::{synth, Row};
use edgelet_core::util::ids::DeviceId;
use edgelet_core::util::rng::DetRng;
use edgelet_core::wire::{from_bytes, to_bytes};
use std::hint::black_box;
use std::time::Instant;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Suite identifier (mirrors the criterion benchmark ID).
    pub name: &'static str,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Throughput annotation: `(unit, value)` derived from `median_ns`.
    pub throughput: (&'static str, f64),
}

/// Samples per suite (median taken over these).
pub const SAMPLES: usize = 7;

/// Times `f` once, returning elapsed nanoseconds.
fn time_once<R>(f: &mut impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    black_box(f());
    start.elapsed().as_secs_f64() * 1e9
}

/// Median of `SAMPLES` timings of `f`, with one discarded warm-up call.
fn median_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let _ = time_once(&mut f);
    let mut samples: Vec<f64> = (0..SAMPLES).map(|_| time_once(&mut f)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// k-means kernel: one Lloyd step over 10k 2-d points, k=3 (the same
/// workload as `kernels/kmeans/lloyd_step_10k_points`). Seeding is
/// excluded from the timing.
pub fn kmeans_kernel() -> SuiteResult {
    let mut rng = DetRng::new(2);
    let (points, _) = gaussian_mixture(
        &[
            (vec![0.0, 0.0], 1.0),
            (vec![10.0, 0.0], 1.0),
            (vec![0.0, 10.0], 1.0),
        ],
        10_000,
        &mut rng,
    );
    let cfg = KMeansConfig {
        k: 3,
        max_iterations: 20,
        tolerance: 1e-6,
    };
    let mut seed_rng = DetRng::new(3);
    let seeded = KMeans::seed(&points, &cfg, &mut seed_rng).expect("seeding 10k points");
    // 20 steps per iteration so one sample is comfortably above timer
    // resolution; report per-step time.
    const STEPS: usize = 20;
    let ns = median_ns(|| {
        let mut km = seeded.clone();
        for _ in 0..STEPS {
            km.lloyd_step(&points);
        }
        km
    }) / STEPS as f64;
    SuiteResult {
        name: "kernels/kmeans/lloyd_step_10k_points",
        median_ns: ns,
        throughput: ("elements_per_sec", 10_000.0 / (ns * 1e-9)),
    }
}

fn synth_rows(n: usize) -> Vec<Row> {
    let mut rng = DetRng::new(1);
    synth::health_store(n, &mut rng).rows().to_vec()
}

/// Wire encode: 1000 synthetic health rows to bytes (mirrors
/// `wire/rows/encode_1000_rows`).
pub fn wire_encode() -> SuiteResult {
    let batch = synth_rows(1_000);
    let len = to_bytes(&batch).len() as f64;
    let ns = median_ns(|| to_bytes(black_box(&batch)));
    SuiteResult {
        name: "wire/rows/encode_1000_rows",
        median_ns: ns,
        throughput: ("mib_per_sec", len / (ns * 1e-9) / (1024.0 * 1024.0)),
    }
}

/// Wire decode: the matching decode workload (mirrors
/// `wire/rows/decode_1000_rows`).
pub fn wire_decode() -> SuiteResult {
    let encoded = to_bytes(&synth_rows(1_000));
    let len = encoded.len() as f64;
    let ns = median_ns(|| from_bytes::<Vec<Row>>(black_box(&encoded)).expect("decode"));
    SuiteResult {
        name: "wire/rows/decode_1000_rows",
        median_ns: ns,
        throughput: ("mib_per_sec", len / (ns * 1e-9) / (1024.0 * 1024.0)),
    }
}

/// Broadcast hub: fans a 1 KiB payload out to every peer, waits for all
/// acks, repeats.
struct Hub {
    peers: Vec<DeviceId>,
    rounds_left: u32,
    acks_pending: usize,
}

impl Hub {
    fn kick(&mut self, ctx: &mut Context<'_>) {
        self.rounds_left -= 1;
        self.acks_pending = self.peers.len();
        ctx.broadcast(self.peers.clone(), vec![0xAB; 1024]);
    }
}

impl Actor for Hub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.kick(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {
        self.acks_pending -= 1;
        if self.acks_pending == 0 && self.rounds_left > 0 {
            self.kick(ctx);
        }
    }
}

/// Peer: acknowledges every broadcast.
struct AckPeer;

impl Actor for AckPeer {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, _payload: &[u8]) {
        ctx.send(from, vec![1u8]);
    }
}

const BROADCAST_PEERS: usize = 200;
const BROADCAST_ROUNDS: u32 = 50;

fn build_broadcast_sim() -> Simulation {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::reliable(Duration::from_millis(1)),
            ..SimConfig::default()
        },
        7,
    );
    let hub = sim.add_device(DeviceConfig::default());
    let peers: Vec<DeviceId> = (0..BROADCAST_PEERS)
        .map(|_| sim.add_device(DeviceConfig::default()))
        .collect();
    for &p in &peers {
        sim.install_actor(p, Box::new(AckPeer));
    }
    sim.install_actor(
        hub,
        Box::new(Hub {
            peers,
            rounds_left: BROADCAST_ROUNDS,
            acks_pending: 0,
        }),
    );
    sim
}

/// Simulator broadcast scenario: a hub fans 1 KiB to 200 peers for 50
/// rounds (20k deliveries), each peer acking. Setup excluded.
pub fn sim_broadcast() -> SuiteResult {
    let deliveries = (BROADCAST_PEERS as u32 * BROADCAST_ROUNDS * 2) as f64;
    // Setup is hoisted out of the timing: build each simulation first,
    // time only `run()`. First sample is a discarded warm-up.
    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    for i in 0..=SAMPLES {
        let mut sim = build_broadcast_sim();
        let start = Instant::now();
        sim.run();
        let elapsed = start.elapsed().as_secs_f64() * 1e9;
        assert_eq!(
            sim.metrics().messages_delivered,
            deliveries as u64,
            "broadcast scenario must deliver every message"
        );
        if i > 0 {
            samples.push(elapsed);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let ns = samples[samples.len() / 2];
    SuiteResult {
        name: "sim/broadcast/1kib_fanout_200x50",
        median_ns: ns,
        throughput: ("deliveries_per_sec", deliveries / (ns * 1e-9)),
    }
}

/// End-to-end: one full grouping query over 1k contributors on a lossy
/// network (mirrors `e2e/grouping_query_1k_contributors`).
pub fn e2e_query() -> SuiteResult {
    let mut seed = 0u64;
    let ns = median_ns(|| {
        seed += 1;
        let mut p = Platform::build(PlatformConfig {
            seed,
            contributors: 1_000,
            processors: 80,
            network: NetworkProfile::Lossy {
                drop_probability: 0.05,
            },
            ..PlatformConfig::default()
        });
        let spec = crate::census_spec(&mut p, 200);
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(50),
                &ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.1,
                    ..ResilienceConfig::default()
                },
            )
            .expect("e2e query");
        run.report.completed
    });
    SuiteResult {
        name: "e2e/grouping_query_1k_contributors",
        median_ns: ns,
        throughput: ("queries_per_sec", 1.0 / (ns * 1e-9)),
    }
}

/// Runs every suite in a fixed order.
pub fn run_all() -> Vec<SuiteResult> {
    vec![
        kmeans_kernel(),
        wire_encode(),
        wire_decode(),
        sim_broadcast(),
        e2e_query(),
    ]
}

/// Renders the report as JSON (one suite per line, stable key order).
pub fn to_json(results: &[SuiteResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"edgelet-bench-report/v1\",\n");
    out.push_str(&format!("  \"samples_per_suite\": {SAMPLES},\n"));
    out.push_str("  \"suites\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {:.1}, \"{}\": {:.1}}}{comma}\n",
            r.name, r.median_ns, r.throughput.0, r.throughput.1
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Extracts `median_ns` for `suite` from a report previously written by
/// [`to_json`] (line-oriented scan; not a general JSON parser).
pub fn median_from_json(json: &str, suite: &str) -> Option<f64> {
    let needle = format!("\"{suite}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let rest = line.split("\"median_ns\": ").nth(1)?;
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_medians() {
        let results = vec![
            SuiteResult {
                name: "kernels/kmeans/lloyd_step_10k_points",
                median_ns: 12345.5,
                throughput: ("elements_per_sec", 1e9),
            },
            SuiteResult {
                name: "wire/rows/encode_1000_rows",
                median_ns: 678.0,
                throughput: ("mib_per_sec", 250.0),
            },
        ];
        let json = to_json(&results);
        assert_eq!(
            median_from_json(&json, "kernels/kmeans/lloyd_step_10k_points"),
            Some(12345.5)
        );
        assert_eq!(
            median_from_json(&json, "wire/rows/encode_1000_rows"),
            Some(678.0)
        );
        assert_eq!(median_from_json(&json, "missing/suite"), None);
    }

    #[test]
    fn broadcast_sim_delivers_everything() {
        let mut sim = build_broadcast_sim();
        sim.run();
        assert_eq!(
            sim.metrics().messages_delivered,
            (BROADCAST_PEERS as u32 * BROADCAST_ROUNDS * 2) as u64
        );
    }
}
