//! Reproducible performance report: the workloads behind `bench_report`.
//!
//! The criterion suites under `benches/` are interactive tools; this
//! module is the *durable* record. `cargo run -p edgelet-bench --bin
//! bench_report` times four representative workloads — the k-means
//! kernel, wire encode/decode, a broadcast-heavy simulator scenario, and
//! a full end-to-end query — and emits a JSON snapshot (`BENCH_*.json`
//! at the repo root) so performance PRs carry their own evidence and
//! future PRs have a trajectory to compare against.
//!
//! Suite names intentionally mirror the criterion benchmark IDs.

use edgelet_core::ml::gen::gaussian_mixture;
use edgelet_core::ml::kmeans::{KMeans, KMeansConfig};
use edgelet_core::prelude::*;
use edgelet_core::sim::{
    Actor, Availability, Context, CrashPlan, DeviceConfig, Duration, LatencyModel, NetworkModel,
    SimConfig, SimTime, Simulation, TimerToken,
};
use edgelet_core::store::{synth, Row};
use edgelet_core::util::ids::DeviceId;
use edgelet_core::util::rng::DetRng;
use edgelet_core::wire::{from_bytes, to_bytes};
use std::hint::black_box;
use std::time::Instant;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Suite identifier (mirrors the criterion benchmark ID).
    pub name: &'static str,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Simulator shard count the suite ran under (1 for non-simulator
    /// workloads).
    pub shards: usize,
    /// Worker threads the suite ran under: the live runtime's worker
    /// count, or the shard count for the sharded simulator (one thread
    /// per shard); 1 for sequential workloads.
    pub workers: usize,
    /// Transport the suite exercised: `"in-process"` for everything
    /// that never crosses a socket, `"uds"`/`"tcp"` for the
    /// `edgelet-net` suites.
    pub transport: &'static str,
    /// Throughput annotation: `(unit, value)` derived from `median_ns`.
    pub throughput: (&'static str, f64),
}

/// Samples per suite (median taken over these).
pub const SAMPLES: usize = 7;

/// Times `f` once, returning elapsed nanoseconds.
fn time_once<R>(f: &mut impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    black_box(f());
    start.elapsed().as_secs_f64() * 1e9
}

/// Median of `SAMPLES` timings of `f`, with one discarded warm-up call.
fn median_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let _ = time_once(&mut f);
    let mut samples: Vec<f64> = (0..SAMPLES).map(|_| time_once(&mut f)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// k-means kernel: one Lloyd step over 10k 2-d points, k=3 (the same
/// workload as `kernels/kmeans/lloyd_step_10k_points`). Seeding is
/// excluded from the timing.
pub fn kmeans_kernel() -> SuiteResult {
    let mut rng = DetRng::new(2);
    let (points, _) = gaussian_mixture(
        &[
            (vec![0.0, 0.0], 1.0),
            (vec![10.0, 0.0], 1.0),
            (vec![0.0, 10.0], 1.0),
        ],
        10_000,
        &mut rng,
    );
    let cfg = KMeansConfig {
        k: 3,
        max_iterations: 20,
        tolerance: 1e-6,
    };
    let mut seed_rng = DetRng::new(3);
    let seeded = KMeans::seed(&points, &cfg, &mut seed_rng).expect("seeding 10k points");
    // 20 steps per iteration so one sample is comfortably above timer
    // resolution; report per-step time.
    const STEPS: usize = 20;
    let ns = median_ns(|| {
        let mut km = seeded.clone();
        for _ in 0..STEPS {
            km.lloyd_step(&points);
        }
        km
    }) / STEPS as f64;
    SuiteResult {
        name: "kernels/kmeans/lloyd_step_10k_points",
        median_ns: ns,
        shards: 1,
        workers: 1,
        transport: "in-process",
        throughput: ("elements_per_sec", 10_000.0 / (ns * 1e-9)),
    }
}

fn synth_rows(n: usize) -> Vec<Row> {
    let mut rng = DetRng::new(1);
    synth::health_store(n, &mut rng).rows().to_vec()
}

/// Wire encode: 1000 synthetic health rows to bytes (mirrors
/// `wire/rows/encode_1000_rows`).
pub fn wire_encode() -> SuiteResult {
    let batch = synth_rows(1_000);
    let len = to_bytes(&batch).len() as f64;
    let ns = median_ns(|| to_bytes(black_box(&batch)));
    SuiteResult {
        name: "wire/rows/encode_1000_rows",
        median_ns: ns,
        shards: 1,
        workers: 1,
        transport: "in-process",
        throughput: ("mib_per_sec", len / (ns * 1e-9) / (1024.0 * 1024.0)),
    }
}

/// Wire decode: the matching decode workload (mirrors
/// `wire/rows/decode_1000_rows`).
pub fn wire_decode() -> SuiteResult {
    let encoded = to_bytes(&synth_rows(1_000));
    let len = encoded.len() as f64;
    let ns = median_ns(|| from_bytes::<Vec<Row>>(black_box(&encoded)).expect("decode"));
    SuiteResult {
        name: "wire/rows/decode_1000_rows",
        median_ns: ns,
        shards: 1,
        workers: 1,
        transport: "in-process",
        throughput: ("mib_per_sec", len / (ns * 1e-9) / (1024.0 * 1024.0)),
    }
}

/// Records per durable-store suite iteration.
const WAL_RECORDS: usize = 1_000;
/// Payload bytes per WAL record (1 KiB before framing).
const WAL_RECORD_BYTES: usize = 1024;

fn wal_payload(i: usize) -> Vec<u8> {
    // Distinct first bytes so the CRC path sees varied data.
    let mut p = vec![(i % 251) as u8; WAL_RECORD_BYTES];
    p[0] = (i >> 8) as u8;
    p
}

/// Durable-store append path: frame + checksum + group-commit of 1000
/// 1 KiB records through
/// [`GroupCommitLog`](edgelet_core::store::GroupCommitLog) onto an
/// in-memory backend (mirrors `store/wal_append`). The batch rides the
/// group-commit fast path — one contiguous media write and one sync for
/// the whole batch — so this measures the logging overhead the durable
/// service pays per completion, isolated from disk hardware.
pub fn store_wal_append() -> SuiteResult {
    use edgelet_core::store::{GroupCommitConfig, GroupCommitLog, MemBackend, RetryPolicy};
    use std::sync::Arc;

    let bytes = (WAL_RECORDS * WAL_RECORD_BYTES) as f64;
    let payloads: Vec<Vec<u8>> = (0..WAL_RECORDS).map(wal_payload).collect();
    let ns = median_ns(|| {
        let log = GroupCommitLog::new(
            Arc::new(MemBackend::new()),
            RetryPolicy::default(),
            GroupCommitConfig::default(),
        );
        log.commit_all(&payloads).expect("in-memory commit");
        log
    });
    SuiteResult {
        name: "store/wal_append/1000_records_1kib",
        median_ns: ns,
        shards: 1,
        workers: 1,
        transport: "in-process",
        throughput: ("mib_per_sec", bytes / (ns * 1e-9) / (1024.0 * 1024.0)),
    }
}

/// Durable-store recovery path: scanning and CRC-verifying a 1000-record
/// WAL back into memory (mirrors `store/recovery_replay`). Recovery
/// returns zero-copy `Payload` slices into the
/// segment buffers rather than one owned `Vec` per record. This bounds
/// the restart cost of a service whose WAL has grown to one checkpoint
/// interval. Log construction is hoisted out of the timing.
pub fn store_recovery_replay() -> SuiteResult {
    use edgelet_core::store::{DurableLog, MemBackend, RetryPolicy};
    use std::sync::Arc;

    let backend = Arc::new(MemBackend::new());
    let log = DurableLog::new(backend, RetryPolicy::default());
    for i in 0..WAL_RECORDS {
        log.append(&wal_payload(i)).expect("in-memory append");
    }
    let ns = median_ns(|| {
        let recovered = log.recover().expect("clean log recovers");
        assert_eq!(recovered.records.len(), WAL_RECORDS);
        recovered
    });
    SuiteResult {
        name: "store/recovery_replay/1000_records_1kib",
        median_ns: ns,
        shards: 1,
        workers: 1,
        transport: "in-process",
        throughput: ("records_per_sec", WAL_RECORDS as f64 / (ns * 1e-9)),
    }
}

/// Broadcast hub: fans a 1 KiB payload out to every peer, waits for all
/// acks, repeats.
struct Hub {
    peers: Vec<DeviceId>,
    rounds_left: u32,
    acks_pending: usize,
}

impl Hub {
    fn kick(&mut self, ctx: &mut Context<'_>) {
        self.rounds_left -= 1;
        self.acks_pending = self.peers.len();
        ctx.broadcast(self.peers.clone(), vec![0xAB; 1024]);
    }
}

impl Actor for Hub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.kick(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {
        self.acks_pending -= 1;
        if self.acks_pending == 0 && self.rounds_left > 0 {
            self.kick(ctx);
        }
    }
}

/// Peer: acknowledges every broadcast.
struct AckPeer;

impl Actor for AckPeer {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, _payload: &[u8]) {
        ctx.send(from, vec![1u8]);
    }
}

const BROADCAST_PEERS: usize = 200;
const BROADCAST_ROUNDS: u32 = 50;

fn build_broadcast_sim(shards: usize) -> Simulation {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::reliable(Duration::from_millis(1)),
            shards,
            ..SimConfig::default()
        },
        7,
    );
    let hub = sim.add_device(DeviceConfig::default());
    let peers: Vec<DeviceId> = (0..BROADCAST_PEERS)
        .map(|_| sim.add_device(DeviceConfig::default()))
        .collect();
    for &p in &peers {
        sim.install_actor(p, Box::new(AckPeer));
    }
    sim.install_actor(
        hub,
        Box::new(Hub {
            peers,
            rounds_left: BROADCAST_ROUNDS,
            acks_pending: 0,
        }),
    );
    sim
}

/// Times `build()`'s simulation to quiescence (or `deadline`), setup
/// hoisted out of the timing, first sample a discarded warm-up.
fn median_sim_ns(
    build: impl Fn() -> Simulation,
    deadline: SimTime,
    check: impl Fn(&Simulation),
) -> f64 {
    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    for i in 0..=SAMPLES {
        let mut sim = build();
        let start = Instant::now();
        sim.run_until(deadline);
        let elapsed = start.elapsed().as_secs_f64() * 1e9;
        check(&sim);
        if i > 0 {
            samples.push(elapsed);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Simulator broadcast scenario: a hub fans 1 KiB to 200 peers for 50
/// rounds (20k deliveries), each peer acking. Setup excluded.
pub fn sim_broadcast() -> SuiteResult {
    sim_broadcast_with(1, "sim/broadcast/1kib_fanout_200x50")
}

/// [`sim_broadcast`] under an explicit shard count.
pub fn sim_broadcast_with(shards: usize, name: &'static str) -> SuiteResult {
    let deliveries = (BROADCAST_PEERS as u32 * BROADCAST_ROUNDS * 2) as f64;
    let ns = median_sim_ns(
        || build_broadcast_sim(shards),
        SimTime::MAX,
        |sim| {
            assert_eq!(
                sim.metrics().messages_delivered,
                deliveries as u64,
                "broadcast scenario must deliver every message"
            );
        },
    );
    SuiteResult {
        name,
        median_ns: ns,
        shards,
        workers: shards,
        transport: "in-process",
        throughput: ("deliveries_per_sec", deliveries / (ns * 1e-9)),
    }
}

/// Devices in the population-scale suites.
const SCALE_DEVICES: usize = 100_000;
/// Virtual seconds the churn suite simulates.
const SCALE_CHURN_SECS: u64 = 30;

/// Heartbeat actor for the churn suite: a staggered periodic timer that
/// pings a random peer.
struct Heartbeat {
    peers: u64,
    period: Duration,
}

impl Actor for Heartbeat {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Stagger the first beat so load spreads over one period.
        let jitter = Duration::from_micros(ctx.rng().range(0..self.period.as_micros()));
        ctx.set_timer(jitter);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        let peer = ctx.rng().range(0..self.peers);
        ctx.send(DeviceId::new(peer), vec![0x5A; 64]);
        ctx.set_timer(self.period);
    }
}

fn build_churn_sim(shards: usize) -> Simulation {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel {
                latency: LatencyModel::Uniform {
                    min: Duration::from_millis(100),
                    max: Duration::from_millis(250),
                },
                drop_probability: 0.0,
                corruption_probability: 0.0,
            },
            shards,
            ..SimConfig::default()
        },
        11,
    );
    for i in 0..SCALE_DEVICES {
        let availability = if i % 4 == 0 {
            Availability::Intermittent {
                mean_up: Duration::from_secs(300),
                mean_down: Duration::from_secs(120),
                start_up: true,
            }
        } else {
            Availability::AlwaysUp
        };
        sim.add_device(DeviceConfig {
            availability,
            crash: CrashPlan::Never,
        });
    }
    for i in 0..SCALE_DEVICES {
        sim.install_actor(
            DeviceId::new(i as u64),
            Box::new(Heartbeat {
                peers: SCALE_DEVICES as u64,
                period: Duration::from_secs(5),
            }),
        );
    }
    sim
}

/// Population-scale churn: 100k devices (a quarter intermittently
/// connected) heartbeating random peers for 30 virtual seconds over a
/// 100–250 ms WAN. World construction excluded from the timing.
pub fn scale_churn(shards: usize, name: &'static str) -> SuiteResult {
    let deadline = SimTime::from_micros(SCALE_CHURN_SECS * 1_000_000);
    let mut delivered = 0u64;
    let ns = {
        let delivered = &mut delivered;
        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        for i in 0..=SAMPLES {
            let mut sim = build_churn_sim(shards);
            let start = Instant::now();
            sim.run_until(deadline);
            let elapsed = start.elapsed().as_secs_f64() * 1e9;
            assert!(
                sim.metrics().messages_delivered > SCALE_DEVICES as u64,
                "churn scenario must make progress"
            );
            *delivered = sim.metrics().messages_delivered;
            if i > 0 {
                samples.push(elapsed);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        samples[samples.len() / 2]
    };
    SuiteResult {
        name,
        median_ns: ns,
        shards,
        workers: shards,
        transport: "in-process",
        throughput: ("deliveries_per_sec", delivered as f64 / (ns * 1e-9)),
    }
}

/// Collectors in the 100k-contributor grouping suite (250 contributors
/// each, mirroring the paper's partitioned Grouping-Sets fan-out).
const GROUP_COLLECTORS: usize = 400;

/// Partition collector: requests contributions from its slice of the
/// crowd, counts replies, reports a partial upstream when complete.
struct ScaleCollector {
    querier: DeviceId,
    contributors: Vec<DeviceId>,
    pending: usize,
}

impl Actor for ScaleCollector {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.pending = self.contributors.len();
        ctx.broadcast(self.contributors.clone(), vec![0x01; 16]);
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {
        self.pending -= 1;
        if self.pending == 0 {
            ctx.send(self.querier, vec![0x02; 128]);
        }
    }
}

/// Contributor endpoint: answers any request with a 256-byte record.
struct ScaleContributor;

impl Actor for ScaleContributor {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, _payload: &[u8]) {
        ctx.send(from, vec![0xC0; 256]);
    }
}

/// Querier endpoint: counts partials.
struct ScaleQuerier;

impl Actor for ScaleQuerier {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {
        ctx.observe("partials", 1.0);
    }
}

fn build_grouping_sim(shards: usize) -> Simulation {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::reliable(Duration::from_millis(20)),
            shards,
            ..SimConfig::default()
        },
        13,
    );
    let querier = sim.add_device(DeviceConfig::default());
    let collectors: Vec<DeviceId> = (0..GROUP_COLLECTORS)
        .map(|_| sim.add_device(DeviceConfig::default()))
        .collect();
    let contributors: Vec<DeviceId> = (0..SCALE_DEVICES)
        .map(|_| sim.add_device(DeviceConfig::default()))
        .collect();
    for &c in &contributors {
        sim.install_actor(c, Box::new(ScaleContributor));
    }
    let per = SCALE_DEVICES / GROUP_COLLECTORS;
    for (i, &c) in collectors.iter().enumerate() {
        sim.install_actor(
            c,
            Box::new(ScaleCollector {
                querier,
                contributors: contributors[i * per..(i + 1) * per].to_vec(),
                pending: 0,
            }),
        );
    }
    sim.install_actor(querier, Box::new(ScaleQuerier));
    sim
}

/// Population-scale grouping query: 400 collectors fan a request out to
/// 100k contributors (250 each), gather 256-byte contributions, and
/// report partials to one querier. World construction excluded.
pub fn scale_grouping(shards: usize, name: &'static str) -> SuiteResult {
    // request + reply per contributor, plus one partial per collector.
    let expected = (2 * SCALE_DEVICES + GROUP_COLLECTORS) as u64;
    let ns = median_sim_ns(
        || build_grouping_sim(shards),
        SimTime::MAX,
        |sim| {
            assert_eq!(
                sim.metrics().messages_delivered,
                expected,
                "grouping scenario must complete the full fan-out"
            );
        },
    );
    SuiteResult {
        name,
        median_ns: ns,
        shards,
        workers: shards,
        transport: "in-process",
        throughput: ("contributions_per_sec", SCALE_DEVICES as f64 / (ns * 1e-9)),
    }
}

/// End-to-end: one full grouping query over 1k contributors on a lossy
/// network (mirrors `e2e/grouping_query_1k_contributors`).
pub fn e2e_query() -> SuiteResult {
    let mut seed = 0u64;
    let ns = median_ns(|| {
        seed += 1;
        let mut p = Platform::build(PlatformConfig {
            seed,
            contributors: 1_000,
            processors: 80,
            network: NetworkProfile::Lossy {
                drop_probability: 0.05,
            },
            ..PlatformConfig::default()
        });
        let spec = crate::census_spec(&mut p, 200);
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(50),
                &ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.1,
                    ..ResilienceConfig::default()
                },
            )
            .expect("e2e query");
        run.report.completed
    });
    SuiteResult {
        name: "e2e/grouping_query_1k_contributors",
        median_ns: ns,
        shards: 1,
        workers: 1,
        transport: "in-process",
        throughput: ("queries_per_sec", 1.0 / (ns * 1e-9)),
    }
}

/// Live runtime: three concurrent grouping queries through one
/// [`QueryService`](edgelet_live::QueryService) over a shared 1k-device
/// pool (the `live/throughput` suites, at worker counts 1 and 4).
/// Throughput is end-to-end queries per second including admission,
/// epoch registration, worker-thread spin-up, and graceful retirement.
pub fn live_throughput(workers: usize, name: &'static str) -> SuiteResult {
    use edgelet_live::{QueryService, ServiceConfig};

    const QUERIES: usize = 3;
    let mut seed = 100u64;
    let ns = median_ns(|| {
        seed += 1;
        let mut p = Platform::build(PlatformConfig {
            seed,
            contributors: 1_000,
            processors: 80,
            network: NetworkProfile::Lossy {
                drop_probability: 0.05,
            },
            ..PlatformConfig::default()
        });
        let spec = crate::census_spec(&mut p, 200);
        let privacy = PrivacyConfig::none().with_max_tuples(50);
        let resilience = ResilienceConfig {
            strategy: Strategy::Overcollection,
            failure_probability: 0.1,
            ..ResilienceConfig::default()
        };
        let service = QueryService::new(
            p,
            ServiceConfig {
                workers,
                max_concurrent: QUERIES,
                mailbox_capacity: 4096,
            },
        );
        let all_completed = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..QUERIES)
                .map(|_| {
                    let (service, spec, privacy, resilience) =
                        (&service, &spec, &privacy, &resilience);
                    scope.spawn(move || {
                        service
                            .submit(spec, privacy, resilience, None)
                            .expect("live query")
                            .run
                            .report
                            .completed
                    })
                })
                .collect();
            handles.into_iter().all(|h| h.join().expect("submitter"))
        });
        service.shutdown();
        all_completed
    });
    SuiteResult {
        name,
        median_ns: ns,
        shards: 1,
        workers,
        transport: "in-process",
        throughput: ("queries_per_sec", QUERIES as f64 / (ns * 1e-9)),
    }
}

/// Messages per socket-suite iteration.
const NET_MSGS: usize = 200;
/// World-spec payload bytes per submitted message (1 KiB).
const NET_SPEC_BYTES: usize = 1024;

/// Binds a UDS listener on a fresh temp path and returns both ends of
/// one accepted connection as message streams.
fn uds_pair(
    tag: &str,
) -> (
    edgelet_net::MsgStream,
    edgelet_net::MsgStream,
    std::path::PathBuf,
) {
    use edgelet_net::{Addr, Listener, MsgStream, Stream};
    let path =
        std::env::temp_dir().join(format!("edgelet-bench-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let addr = Addr::Uds(path.clone());
    let listener = Listener::bind(&addr).expect("bind bench socket");
    let accept = std::thread::spawn(move || listener.accept().expect("accept bench peer"));
    let client = Stream::connect(&addr).expect("connect bench socket");
    let server = accept.join().expect("accept thread");
    (MsgStream::new(client), MsgStream::new(server), path)
}

/// Socket round-trip: 200 Ping/Pong exchanges over one Unix-domain
/// connection, an echo peer on its own thread (the `net/roundtrip`
/// suite). Reports per-round-trip latency — the floor every control
/// message of the multi-process runtime pays.
pub fn net_roundtrip() -> SuiteResult {
    use edgelet_net::NetMsg;

    let (mut client, mut server, path) = uds_pair("rt");
    let echo = std::thread::spawn(move || {
        while let Ok(NetMsg::Ping { nonce }) = server.recv(Some(std::time::Duration::from_secs(10)))
        {
            if server.send(&NetMsg::Pong { nonce }).is_err() {
                break;
            }
        }
    });
    let ns = median_ns(|| {
        for i in 0..NET_MSGS as u64 {
            client.send(&NetMsg::Ping { nonce: i }).expect("ping");
            match client.recv(Some(std::time::Duration::from_secs(10))) {
                Ok(NetMsg::Pong { nonce }) => assert_eq!(nonce, i),
                other => panic!("expected pong, got {other:?}"),
            }
        }
    }) / NET_MSGS as f64;
    client.shutdown();
    echo.join().expect("echo peer");
    let _ = std::fs::remove_file(&path);
    SuiteResult {
        name: "net/roundtrip/msgstream_ping_uds",
        median_ns: ns,
        shards: 1,
        workers: 1,
        transport: "uds",
        throughput: ("roundtrips_per_sec", 1.0 / (ns * 1e-9)),
    }
}

/// Socket submission throughput: 200 framed 1 KiB `SubmitReq` messages
/// streamed over one Unix-domain connection, acknowledged once per
/// batch (the `net/submit_throughput` suite). Measures frame encode,
/// CRC, socket write, reassembly, and decode end to end.
pub fn net_submit_throughput() -> SuiteResult {
    use edgelet_net::NetMsg;

    let (mut client, mut server, path) = uds_pair("st");
    let sink = std::thread::spawn(move || loop {
        for _ in 0..NET_MSGS {
            match server.recv(Some(std::time::Duration::from_secs(10))) {
                Ok(NetMsg::SubmitReq { spec }) => assert_eq!(spec.len(), NET_SPEC_BYTES),
                _ => return,
            }
        }
        if server.send(&NetMsg::Pong { nonce: 0 }).is_err() {
            return;
        }
    });
    let bytes = (NET_MSGS * NET_SPEC_BYTES) as f64;
    let spec = vec![0xE1u8; NET_SPEC_BYTES];
    let ns = median_ns(|| {
        for _ in 0..NET_MSGS {
            client
                .send(&NetMsg::SubmitReq { spec: spec.clone() })
                .expect("submit");
        }
        match client.recv(Some(std::time::Duration::from_secs(10))) {
            Ok(NetMsg::Pong { .. }) => {}
            other => panic!("expected batch ack, got {other:?}"),
        }
    });
    client.shutdown();
    sink.join().expect("sink peer");
    let _ = std::fs::remove_file(&path);
    SuiteResult {
        name: "net/submit_throughput/200x1kib_uds",
        median_ns: ns,
        shards: 1,
        workers: 1,
        transport: "uds",
        throughput: ("mib_per_sec", bytes / (ns * 1e-9) / (1024.0 * 1024.0)),
    }
}

/// Shard count the `@shardsN` suite variants run under (picked to match
/// the CI parity matrix and typical 4-core runners).
pub const PARALLEL_SHARDS: usize = 4;

/// One entry in the suite registry: a stable name and the measurement
/// behind it.
pub struct Suite {
    /// Suite identifier (mirrors the criterion benchmark ID).
    pub name: &'static str,
    runner: fn() -> SuiteResult,
}

impl Suite {
    /// Measures this suite.
    pub fn run(&self) -> SuiteResult {
        (self.runner)()
    }
}

fn broadcast_seq() -> SuiteResult {
    sim_broadcast_with(1, "sim/broadcast/1kib_fanout_200x50")
}
fn broadcast_par() -> SuiteResult {
    sim_broadcast_with(PARALLEL_SHARDS, "sim/broadcast/1kib_fanout_200x50@shards4")
}
fn churn_seq() -> SuiteResult {
    scale_churn(1, "sim/scale/100k_devices_churn")
}
fn churn_par() -> SuiteResult {
    scale_churn(PARALLEL_SHARDS, "sim/scale/100k_devices_churn@shards4")
}
fn grouping_seq() -> SuiteResult {
    scale_grouping(1, "sim/scale/grouping_query_100k_contributors")
}
fn grouping_par() -> SuiteResult {
    scale_grouping(
        PARALLEL_SHARDS,
        "sim/scale/grouping_query_100k_contributors@shards4",
    )
}
fn live_seq() -> SuiteResult {
    live_throughput(
        1,
        "live/throughput/grouping_3_queries_1k_contributors@workers1",
    )
}
fn live_par() -> SuiteResult {
    live_throughput(
        PARALLEL_SHARDS,
        "live/throughput/grouping_3_queries_1k_contributors@workers4",
    )
}

/// Every suite, in the fixed report order. Simulator suites appear at
/// `shards = 1` and again at [`PARALLEL_SHARDS`] (the `@shards4`
/// variants), so one report captures the sequential/parallel speedup.
pub fn suites() -> Vec<Suite> {
    macro_rules! suite {
        ($name:expr, $runner:path) => {
            Suite {
                name: $name,
                runner: $runner,
            }
        };
    }
    vec![
        suite!("kernels/kmeans/lloyd_step_10k_points", kmeans_kernel),
        suite!("wire/rows/encode_1000_rows", wire_encode),
        suite!("wire/rows/decode_1000_rows", wire_decode),
        suite!("store/wal_append/1000_records_1kib", store_wal_append),
        suite!(
            "store/recovery_replay/1000_records_1kib",
            store_recovery_replay
        ),
        suite!("sim/broadcast/1kib_fanout_200x50", broadcast_seq),
        suite!("sim/broadcast/1kib_fanout_200x50@shards4", broadcast_par),
        suite!("sim/scale/100k_devices_churn", churn_seq),
        suite!("sim/scale/100k_devices_churn@shards4", churn_par),
        suite!("sim/scale/grouping_query_100k_contributors", grouping_seq),
        suite!(
            "sim/scale/grouping_query_100k_contributors@shards4",
            grouping_par
        ),
        suite!("e2e/grouping_query_1k_contributors", e2e_query),
        suite!(
            "live/throughput/grouping_3_queries_1k_contributors@workers1",
            live_seq
        ),
        suite!(
            "live/throughput/grouping_3_queries_1k_contributors@workers4",
            live_par
        ),
        suite!("net/roundtrip/msgstream_ping_uds", net_roundtrip),
        suite!("net/submit_throughput/200x1kib_uds", net_submit_throughput),
    ]
}

/// Runs every suite in the registry order.
pub fn run_all() -> Vec<SuiteResult> {
    suites().iter().map(Suite::run).collect()
}

/// Runs only the suites whose name starts with `prefix` (e.g.
/// `sim/broadcast` or `live/`). An empty prefix matches everything; an
/// unmatched prefix returns an empty vector — callers decide whether
/// that is an error.
pub fn run_matching(prefix: &str) -> Vec<SuiteResult> {
    suites()
        .iter()
        .filter(|s| s.name.starts_with(prefix))
        .map(Suite::run)
        .collect()
}

/// Logical CPUs available to this process, degrading to 1 when the
/// platform cannot say. Recorded in every report so speedup numbers
/// (`@shards4` / `@workers4` vs their sequential twins) carry the
/// hardware context needed to interpret them.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Below this many logical CPUs a report is flagged `low_parallelism`:
/// the `@shards4` / `@workers4` suites cannot actually run 4-wide, so
/// their speedups (and any comparison against a wider machine) under-
/// report.
pub const LOW_PARALLELISM_CPUS: usize = 4;

/// Whether this machine is too narrow for the parallel suites to mean
/// what they say (see [`LOW_PARALLELISM_CPUS`]).
pub fn low_parallelism() -> bool {
    available_parallelism() < LOW_PARALLELISM_CPUS
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// checkout (reports stay comparable either way; the key is advisory).
pub fn git_revision() -> String {
    git_revision_in(None)
}

/// [`git_revision`] resolved from an explicit directory — `None` means
/// the process working directory. Every failure mode (no `git` binary,
/// not a checkout, empty output) degrades to `"unknown"` rather than an
/// error, so reports can be produced from exported tarballs.
fn git_revision_in(dir: Option<&std::path::Path>) -> String {
    let mut cmd = std::process::Command::new("git");
    cmd.args(["rev-parse", "--short", "HEAD"]);
    if let Some(dir) = dir {
        cmd.current_dir(dir);
    }
    cmd.output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders the report as JSON (one suite per line, stable key order).
pub fn to_json(results: &[SuiteResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"edgelet-bench-report/v1\",\n");
    out.push_str(&format!("  \"samples_per_suite\": {SAMPLES},\n"));
    out.push_str(&format!("  \"git_revision\": \"{}\",\n", git_revision()));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        available_parallelism()
    ));
    if low_parallelism() {
        // Self-describing reports: a narrow machine flags itself so a
        // committed baseline is never mistaken for a 4-wide run.
        out.push_str("  \"low_parallelism\": true,\n");
    }
    out.push_str("  \"suites\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {:.1}, \"shards\": {}, \"workers\": {}, \"transport\": \"{}\", \"{}\": {:.1}}}{comma}\n",
            r.name, r.median_ns, r.shards, r.workers, r.transport, r.throughput.0, r.throughput.1
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// One suite whose median regressed past the comparison threshold.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Suite identifier.
    pub suite: &'static str,
    /// Baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// Current median, nanoseconds.
    pub current_ns: f64,
    /// Slowdown in percent (positive = current is slower).
    pub delta_pct: f64,
}

/// Compares `current` against a baseline report previously written by
/// [`to_json`], returning every suite that slowed down by more than
/// `fail_over_pct` percent. Suites absent from the baseline are skipped
/// (new suites never gate).
pub fn compare(
    current: &[SuiteResult],
    baseline_json: &str,
    fail_over_pct: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for r in current {
        let Some(base) = median_from_json(baseline_json, r.name) else {
            continue;
        };
        if base <= 0.0 {
            continue;
        }
        let delta_pct = (r.median_ns - base) / base * 100.0;
        if delta_pct > fail_over_pct {
            out.push(Regression {
                suite: r.name,
                baseline_ns: base,
                current_ns: r.median_ns,
                delta_pct,
            });
        }
    }
    out
}

/// Extracts `median_ns` for `suite` from a report previously written by
/// [`to_json`] (line-oriented scan; not a general JSON parser).
pub fn median_from_json(json: &str, suite: &str) -> Option<f64> {
    let needle = format!("\"{suite}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let rest = line.split("\"median_ns\": ").nth(1)?;
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_medians() {
        let results = vec![
            SuiteResult {
                name: "kernels/kmeans/lloyd_step_10k_points",
                median_ns: 12345.5,
                shards: 1,
                workers: 1,
                transport: "in-process",
                throughput: ("elements_per_sec", 1e9),
            },
            SuiteResult {
                name: "wire/rows/encode_1000_rows",
                median_ns: 678.0,
                shards: 1,
                workers: 1,
                transport: "in-process",
                throughput: ("mib_per_sec", 250.0),
            },
        ];
        let json = to_json(&results);
        assert_eq!(
            median_from_json(&json, "kernels/kmeans/lloyd_step_10k_points"),
            Some(12345.5)
        );
        assert_eq!(
            median_from_json(&json, "wire/rows/encode_1000_rows"),
            Some(678.0)
        );
        assert_eq!(median_from_json(&json, "missing/suite"), None);
    }

    #[test]
    fn low_parallelism_flag_matches_the_machine() {
        let json = to_json(&[]);
        assert_eq!(
            json.contains("\"low_parallelism\": true"),
            available_parallelism() < LOW_PARALLELISM_CPUS,
            "{json}"
        );
    }

    #[test]
    fn git_revision_degrades_to_unknown_outside_a_checkout() {
        // The filesystem root is never a git checkout, so resolution
        // must fall back to the sentinel instead of erroring.
        assert_eq!(git_revision_in(Some(std::path::Path::new("/"))), "unknown");
        // Inside this checkout it resolves to a short hex revision.
        let here = git_revision();
        assert!(
            here == "unknown" || here.chars().all(|c| c.is_ascii_hexdigit()),
            "{here}"
        );
    }

    #[test]
    fn live_throughput_suite_completes_queries() {
        let r = live_throughput(2, "live/throughput/test@workers2");
        assert_eq!(r.shards, 1, "live suites do not shard the simulator");
        assert_eq!(r.workers, 2);
        assert_eq!(r.throughput.0, "queries_per_sec");
        assert!(r.throughput.1 > 0.0);
    }

    #[test]
    fn store_suites_measure_the_durable_log() {
        let append = store_wal_append();
        assert_eq!(append.name, "store/wal_append/1000_records_1kib");
        assert_eq!(append.throughput.0, "mib_per_sec");
        assert!(append.throughput.1 > 0.0);
        let replay = store_recovery_replay();
        assert_eq!(replay.name, "store/recovery_replay/1000_records_1kib");
        assert_eq!(replay.throughput.0, "records_per_sec");
        assert!(replay.throughput.1 > 0.0);
    }

    #[test]
    fn net_suites_cross_a_real_socket() {
        let rt = net_roundtrip();
        assert_eq!(rt.name, "net/roundtrip/msgstream_ping_uds");
        assert_eq!(rt.transport, "uds");
        assert_eq!(rt.throughput.0, "roundtrips_per_sec");
        assert!(rt.throughput.1 > 0.0);
        let st = net_submit_throughput();
        assert_eq!(st.name, "net/submit_throughput/200x1kib_uds");
        assert_eq!(st.transport, "uds");
        assert_eq!(st.throughput.0, "mib_per_sec");
        assert!(st.throughput.1 > 0.0);
    }

    #[test]
    fn broadcast_sim_delivers_everything() {
        let mut sim = build_broadcast_sim(1);
        sim.run();
        assert_eq!(
            sim.metrics().messages_delivered,
            (BROADCAST_PEERS as u32 * BROADCAST_ROUNDS * 2) as u64
        );
    }

    #[test]
    fn broadcast_sim_is_shard_invariant() {
        let mut seq = build_broadcast_sim(1);
        seq.run();
        let mut par = build_broadcast_sim(PARALLEL_SHARDS);
        par.run();
        assert_eq!(
            seq.metrics().messages_delivered,
            par.metrics().messages_delivered
        );
        assert_eq!(
            seq.metrics().events_processed,
            par.metrics().events_processed
        );
    }

    #[test]
    fn compare_flags_only_regressions_past_threshold() {
        let baseline = to_json(&[
            SuiteResult {
                name: "a",
                median_ns: 100.0,
                shards: 1,
                workers: 1,
                transport: "in-process",
                throughput: ("x_per_sec", 1.0),
            },
            SuiteResult {
                name: "b",
                median_ns: 100.0,
                shards: 1,
                workers: 1,
                transport: "in-process",
                throughput: ("x_per_sec", 1.0),
            },
        ]);
        let current = vec![
            // 5% slower: under the 10% gate.
            SuiteResult {
                name: "a",
                median_ns: 105.0,
                shards: 1,
                workers: 1,
                transport: "in-process",
                throughput: ("x_per_sec", 1.0),
            },
            // 50% slower: gates.
            SuiteResult {
                name: "b",
                median_ns: 150.0,
                shards: 1,
                workers: 1,
                transport: "in-process",
                throughput: ("x_per_sec", 1.0),
            },
            // Not in the baseline: skipped.
            SuiteResult {
                name: "c",
                median_ns: 999.0,
                shards: 1,
                workers: 1,
                transport: "in-process",
                throughput: ("x_per_sec", 1.0),
            },
        ];
        let regs = compare(&current, &baseline, 10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].suite, "b");
        assert!((regs[0].delta_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn json_records_shard_and_worker_counts() {
        let json = to_json(&[SuiteResult {
            name: "s",
            median_ns: 1.0,
            shards: 4,
            workers: 2,
            transport: "in-process",
            throughput: ("x_per_sec", 1.0),
        }]);
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"workers\": 2"));
        assert!(json.contains("\"transport\": \"in-process\""));
        assert!(json.contains("\"git_revision\""));
        assert!(json.contains("\"available_parallelism\""));
        assert_eq!(median_from_json(&json, "s"), Some(1.0));
    }

    #[test]
    fn registry_filters_by_prefix() {
        let names: Vec<&str> = suites().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 16, "{names:?}");
        // Prefix selection is what `edgelet bench --suite` exposes; pure
        // name filtering here so the test does not run the heavy suites.
        let broadcast: Vec<&&str> = names
            .iter()
            .filter(|n| n.starts_with("sim/broadcast"))
            .collect();
        assert_eq!(broadcast.len(), 2, "{broadcast:?}");
        // An unmatched prefix runs nothing (and returns immediately).
        assert!(run_matching("no/such/suite").is_empty());
        assert!(available_parallelism() >= 1);
    }
}
