//! E5 — scalability: "thousands of simulated edgelets" (§3.2/§3.3).
//!
//! Grows the contributor crowd by two orders of magnitude and reports the
//! simulator's real wall-clock alongside the protocol's virtual costs.

use edgelet_bench::emit;
use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "E5 — scalability with crowd size (C = 400, cap 100)",
        &[
            "contributors",
            "processors",
            "messages",
            "bytes",
            "virtual t (s)",
            "wall-clock (ms)",
            "valid",
        ],
    );
    for &contributors in &[2_000usize, 5_000, 10_000, 20_000, 50_000] {
        let start = Instant::now();
        let mut p = Platform::build(PlatformConfig {
            seed: 9,
            contributors,
            processors: 100,
            network: NetworkProfile::Lossy {
                drop_probability: 0.05,
            },
            ..PlatformConfig::default()
        });
        let spec = p.grouping_query(
            Predicate::True,
            400,
            &[&["sex"], &[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
        );
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(100),
                &ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.1,
                    ..ResilienceConfig::default()
                },
            )
            .expect("run");
        let wall = start.elapsed().as_millis();
        table.row(&[
            contributors.to_string(),
            "100".into(),
            run.report.messages_sent.to_string(),
            run.report.bytes_sent.to_string(),
            fnum(run.report.completion_secs.unwrap_or(f64::NAN)),
            wall.to_string(),
            run.report.valid.to_string(),
        ]);
    }
    emit(&table);
    println!(
        "Paper claim (§3.3): TEE-based computation on cleartext data keeps the\n\
         protocol generic AND scalable — cost grows linearly with the crowd\n\
         (one contribution round trip per participant), unlike cryptographic\n\
         alternatives whose cost explodes with participant count."
    );
}
