//! E14 (extension) — the Backup strategy's failure detector.
//!
//! The suspicion timeout trades takeover latency against false
//! suspicion: too short and backups activate while the primary lives
//! (duplicate traffic), too long and a real crash stalls the query.
//! The paper's taxonomy mentions the Backup strategy's "higher
//! complexity and lower performance" — this is where that latency lives.

use edgelet_bench::{emit, survey_spec, sweep};
use edgelet_core::prelude::*;
use edgelet_core::sim::Duration;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let trials = 10;
    let mut table = Table::new(
        format!("E14 — Backup suspicion timeout sweep ({trials} trials/point, p = 0.2)"),
        &["suspect timeout (s)", "valid", "mean msgs", "mean t (s)"],
    );
    for &timeout_s in &[2u64, 6, 15, 30] {
        let point = sweep(trials, |seed| {
            let mut config = PlatformConfig {
                seed: seed * 11 + 4,
                contributors: 3_500,
                processors: 300,
                network: NetworkProfile::Internet,
                processor_crash_probability: 0.2,
                crash_at_start: true,
                ..PlatformConfig::default()
            };
            config.exec.ping_period = Duration::from_secs((timeout_s / 2).max(1));
            config.exec.suspect_timeout = Duration::from_secs(timeout_s);
            let mut p = Platform::build(config);
            let spec = survey_spec(&mut p, 300);
            p.run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(50),
                &ResilienceConfig {
                    strategy: Strategy::Backup,
                    failure_probability: 0.2,
                    target_validity: 0.99,
                    ..ResilienceConfig::default()
                },
            )
            .expect("run")
        });
        table.row(&[
            timeout_s.to_string(),
            format!("{}/{}", point.valid, point.trials),
            fnum(point.mean_messages),
            fnum(point.mean_completion_secs),
        ]);
    }
    emit(&table);
    println!(
        "Reading: completion time under failures tracks the suspicion\n\
         timeout almost linearly — the Backup strategy's structural latency\n\
         cost. Shorter timeouts buy speed with more liveness traffic; the\n\
         rank-gated output keeps duplicates harmless either way."
    );
}
