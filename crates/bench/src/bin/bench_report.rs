//! Emits the committed performance snapshot (`BENCH_baseline.json` /
//! `BENCH_current.json` at the repository root).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p edgelet-bench --bin bench_report -- --baseline
//! cargo run --release -p edgelet-bench --bin bench_report
//! ```
//!
//! `--baseline` writes `BENCH_baseline.json`; the default writes
//! `BENCH_current.json` and, when a baseline file exists next to it,
//! prints a per-suite comparison. `--out <path>` overrides the output
//! path. Run from the repository root so the files land beside the
//! manifest; see docs/PERF.md for methodology.

use edgelet_bench::report;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline = false;
    let mut out: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = true,
            "--out" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
                out = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_report [--baseline] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(if baseline {
            "BENCH_baseline.json"
        } else {
            "BENCH_current.json"
        })
    });

    eprintln!(
        "bench_report: median of {} samples per suite, rev {}",
        report::SAMPLES,
        report::git_revision()
    );
    let results = report::run_all();
    for r in &results {
        println!(
            "{:<52} median {:>14.1} ns  shards {}  workers {}  {}  {} {:.1}",
            r.name, r.median_ns, r.shards, r.workers, r.transport, r.throughput.0, r.throughput.1
        );
    }
    let json = report::to_json(&results);
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    });
    println!("wrote {}", out.display());

    // When emitting the current snapshot, compare against the committed
    // baseline if one sits next to the output file.
    if !baseline {
        let base_path = out.with_file_name("BENCH_baseline.json");
        if let Ok(base) = std::fs::read_to_string(&base_path) {
            println!("\nvs {}:", base_path.display());
            for r in &results {
                match report::median_from_json(&base, r.name) {
                    Some(b) if b > 0.0 => {
                        let speedup = b / r.median_ns;
                        let delta = (b - r.median_ns) / b * 100.0;
                        println!("{:<52} {:>6.2}x ({:+.1}% time)", r.name, speedup, -delta);
                    }
                    _ => println!("{:<52} (no baseline entry)", r.name),
                }
            }
        }
    }
}
