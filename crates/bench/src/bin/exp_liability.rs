//! E13 (extension) — the Crowd Liability property (§1).
//!
//! "The liability of the processing is equally distributed among all
//! query participants." Measures, from executed queries, how evenly the
//! raw-data handling spreads over the crowd as the privacy cap varies:
//! max share of the snapshot per device, Gini coefficient of the
//! raw-tuple distribution, operators per device.

use edgelet_bench::emit;
use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let mut table = Table::new(
        "E13 — crowd liability vs horizontal cap (C = 1000)",
        &[
            "cap",
            "processors used",
            "max ops/device",
            "max raw share %",
            "gini(processors)",
        ],
    );
    for &cap in &[1_000usize, 500, 200, 100, 50] {
        let mut p = Platform::build(PlatformConfig {
            seed: 8,
            contributors: 6_000,
            processors: 400,
            network: NetworkProfile::Reliable,
            ..PlatformConfig::default()
        });
        let spec = p.grouping_query(
            Predicate::True,
            1_000,
            &[&["sex"], &[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
        );
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(cap),
                &ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.05,
                    ..ResilienceConfig::default()
                },
            )
            .expect("run");
        assert!(run.report.valid, "cap {cap}: {:?}", run.report);
        let ledger = &run.report.ledger;
        let processors_used = run.plan.processor_devices().len();
        table.row(&[
            cap.to_string(),
            processors_used.to_string(),
            ledger.max_operators().to_string(),
            fnum(100.0 * ledger.max_raw_tuples() as f64 / 1_000.0),
            fnum(ledger.processor_gini()),
        ]);
    }
    emit(&table);
    println!(
        "Paper claim (§1): responsibility shifts from one data controller to\n\
         the crowd. Lowering the cap multiplies the processors involved while\n\
         shrinking each one's share of the snapshot — no participant ever\n\
         carries more than cap/C of the data, and nobody hosts two operators.\n\
         The processor Gini near 0 shows the even split among those who do\n\
         carry data."
    );
}
