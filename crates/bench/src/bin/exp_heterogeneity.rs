//! E8 — device heterogeneity (§3.1): from SGX PCs down to STM32F417 home
//! boxes, how the processor hardware mix moves the completion time.

use edgelet_bench::{census_spec, emit};
use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let mut table = Table::new(
        "E8 — completion time vs processor hardware mix (C = 20k, cap 5k)",
        &["mix", "completed", "valid", "virtual t (s)", "messages"],
    );
    let mixes: Vec<(&str, DeviceMix)> = vec![
        ("all PCs (SGX)", DeviceMix::only(DeviceClass::SgxPc)),
        (
            "all phones (TrustZone)",
            DeviceMix::only(DeviceClass::TrustZonePhone),
        ),
        (
            "all home boxes (TPM)",
            DeviceMix::only(DeviceClass::TpmHomeBox),
        ),
        ("demo mix 20/50/30", DeviceMix::default()),
    ];
    for (label, mix) in mixes {
        // A data-heavy snapshot (C = 20k, 5k tuples per partition) makes
        // the per-device compute cost visible next to network time: the
        // STM32F417 box crunches ~20k tuples/s vs the PC's 2M/s.
        let mut config = PlatformConfig {
            seed: 21,
            contributors: 3_000,
            rows_per_contributor: 20,
            processors: 80,
            network: NetworkProfile::Internet,
            device_mix: mix,
            ..PlatformConfig::default()
        };
        config.exec.charge_compute_time = true;
        let mut p = Platform::build(config);
        let spec = census_spec(&mut p, 20_000);
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(5_000),
                &ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.05,
                    ..ResilienceConfig::default()
                },
            )
            .expect("run");
        table.row(&[
            label.to_string(),
            run.report.completed.to_string(),
            run.report.valid.to_string(),
            fnum(run.report.completion_secs.unwrap_or(f64::NAN)),
            run.report.messages_sent.to_string(),
        ]);
    }
    emit(&table);
    println!(
        "Paper claim (§3.1/§3.3): the framework runs across heterogeneous\n\
         TEEs; low-end home boxes (STM32F417, ~100x slower) stretch the\n\
         computation phase but the protocol completes identically — the\n\
         demo's versatility argument."
    );
}
