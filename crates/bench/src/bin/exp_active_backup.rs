//! E9 — ablation: the Combiner's Active Backup (§2.2).
//!
//! "We need to add to the Computing Combiner an Active Backup ... in
//! order to handle its potential failure." This ablation powers off the
//! primary Combiner and compares a plan WITH the replicated combiner
//! (Overcollection) against one WITHOUT (Naive keeps a single combiner,
//! with overcollected partitions simulated by generous quotas).

use edgelet_bench::emit;
use edgelet_core::exec::driver::{enroll_crowd, execute_plan};
use edgelet_core::exec::ExecConfig;
use edgelet_core::ml::grouping::GroupingQuery;
use edgelet_core::prelude::*;
use edgelet_core::query::plan::build_plan;
use edgelet_core::sim::{DeviceConfig, Duration, NetworkModel, SimConfig, SimTime, Simulation};
use edgelet_core::store::synth::health_schema;
use edgelet_core::tee::Directory;
use edgelet_core::util::rng::DetRng;
use edgelet_core::util::table::{fnum, Table};
use std::collections::BTreeMap;

fn run(strategy: Strategy, kill_combiner: bool) -> (usize, bool, bool, f64) {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::reliable(Duration::from_millis(20)),
            ..SimConfig::default()
        },
        5,
    );
    let mut directory = Directory::new();
    let mut rng = DetRng::new(5);
    let (stores, _) = enroll_crowd(
        &mut directory,
        &mut sim,
        1_500,
        150,
        DeviceClass::SgxPc,
        1,
        &mut rng,
    );
    let querier = sim.add_device(DeviceConfig::default());
    let spec = QuerySpec {
        id: QueryId::new(1),
        filter: Predicate::True,
        snapshot_cardinality: 200,
        kind: QueryKind::GroupingSets(GroupingQuery::new(&[&[]], vec![AggSpec::count_star()])),
        deadline_secs: 600.0,
    };
    let plan = build_plan(
        &spec,
        &health_schema(),
        &PrivacyConfig::none().with_max_tuples(50),
        &ResilienceConfig {
            strategy,
            failure_probability: 0.1,
            target_validity: 0.99,
            ..ResilienceConfig::default()
        },
        &directory,
        querier,
        &mut rng,
    )
    .expect("plan");
    if kill_combiner {
        sim.crash_at(plan.combiner().device, SimTime::from_micros(1));
    }
    let report = execute_plan(
        &plan,
        &health_schema(),
        &stores,
        &BTreeMap::new(),
        &mut sim,
        &ExecConfig::fast(),
        [0u8; 32],
    )
    .expect("execute");
    (
        plan.combiners().len(),
        report.completed,
        report.valid,
        report.completion_secs.unwrap_or(f64::NAN),
    )
}

fn main() {
    let mut table = Table::new(
        "E9 — ablation: Active Backup of the Computing Combiner",
        &[
            "plan",
            "combiner replicas",
            "combiner killed",
            "completed",
            "valid",
            "t (s)",
        ],
    );
    for (label, strategy, kill) in [
        ("with active backup", Strategy::Overcollection, false),
        ("with active backup", Strategy::Overcollection, true),
        ("single combiner", Strategy::Naive, false),
        ("single combiner", Strategy::Naive, true),
    ] {
        let (replicas, completed, valid, t) = run(strategy, kill);
        table.row(&[
            label.to_string(),
            replicas.to_string(),
            kill.to_string(),
            completed.to_string(),
            valid.to_string(),
            fnum(t),
        ]);
    }
    emit(&table);
    println!(
        "Paper claim (§2.2): without a replicated Combiner the whole query\n\
         dies with that single device; the Active Backup running in parallel\n\
         delivers the result with no takeover delay."
    );
}
