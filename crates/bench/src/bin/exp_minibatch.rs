//! E11 (extension) — fixed snapshot vs per-heartbeat resampling.
//!
//! §2.2: "strict validity is not a prerequisite for these algorithms, and
//! resampling at each iteration sometimes even produces better accuracy
//! (as in Mini-batch K-Means)". Each Computer either iterates on its full
//! fixed partition, or draws a fresh mini-batch from it every heartbeat.

use edgelet_bench::emit;
use edgelet_core::ml::gen::rows_to_points;
use edgelet_core::ml::kmeans::inertia;
use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};

fn one_run(seed: u64, minibatch: Option<f64>, heartbeats: usize) -> Option<f64> {
    let mut config = PlatformConfig {
        seed,
        contributors: 2_500,
        processors: 80,
        network: NetworkProfile::Lossy {
            drop_probability: 0.1,
        },
        ..PlatformConfig::default()
    };
    config.exec.minibatch_fraction = minibatch;
    let mut p = Platform::build(config);
    let spec = p.kmeans_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        400,
        3,
        &["age", "systolic_bp"],
        heartbeats,
        vec![],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.1,
                ..ResilienceConfig::default()
            },
        )
        .ok()?;
    let QueryOutcome::KMeans { centroids, .. } = run.report.outcome? else {
        return None;
    };
    let columns = spec.kind.referenced_columns();
    let rows = p.matching_rows(&spec.filter, &columns).ok()?;
    let names: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let sub = p.schema().project(&names).ok()?;
    let points = rows_to_points(&sub, &rows, &["age", "systolic_bp"]).ok()?;
    Some(inertia(&centroids.centroids, &points) / p.centralized_kmeans(&spec).ok()?.inertia)
}

fn main() {
    let seeds = 5u64;
    let mut table = Table::new(
        format!("E11 — fixed partition vs mini-batch resampling ({seeds} seeds, 10% loss)"),
        &["mode", "heartbeats", "mean inertia ratio"],
    );
    for &(label, frac) in &[
        ("fixed partition", None::<f64>),
        ("resample 25%", Some(0.25)),
        ("resample 50%", Some(0.5)),
    ] {
        for &h in &[2usize, 4, 8] {
            let mut ratios = Vec::new();
            for seed in 0..seeds {
                if let Some(r) = one_run(seed * 17 + 3, frac, h) {
                    ratios.push(r);
                }
            }
            let mean = if ratios.is_empty() {
                f64::NAN
            } else {
                ratios.iter().sum::<f64>() / ratios.len() as f64
            };
            table.row(&[label.to_string(), h.to_string(), fnum(mean)]);
        }
    }
    emit(&table);
    println!(
        "Paper claim (§2.2): resampling per iteration is admissible (strict\n\
         validity is not required for iterative ML) and stays competitive with\n\
         fixed-partition iteration — the Mini-batch-K-Means observation."
    );
}
