//! E12 (extension) — collection retry rounds vs overcollection degree.
//!
//! Two ways to absorb message loss at the collection stage: retry the
//! contribution round (message-level reliability) or overcollect
//! partitions (query-level reliability, the paper's mechanism). This
//! ablation measures how partition fill and validity respond to each.

use edgelet_bench::{emit, survey_spec, sweep};
use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let trials = 10;
    let mut table = Table::new(
        format!("E12 — collection retries under message loss ({trials} trials/point)"),
        &["loss p", "retries", "valid", "mean msgs", "mean t (s)"],
    );
    for &loss in &[0.1f64, 0.25, 0.4] {
        for &retries in &[0u32, 1, 3] {
            let point = sweep(trials, |seed| {
                let mut config = PlatformConfig {
                    seed: seed * 5 + 2,
                    contributors: 2_200,
                    processors: 120,
                    network: NetworkProfile::Lossy {
                        drop_probability: loss,
                    },
                    ..PlatformConfig::default()
                };
                config.exec.collection_retries = retries;
                let mut p = Platform::build(config);
                let spec = survey_spec(&mut p, 300);
                p.run_query(
                    &spec,
                    &PrivacyConfig::none().with_max_tuples(75),
                    &ResilienceConfig {
                        strategy: Strategy::Overcollection,
                        failure_probability: 0.1,
                        target_validity: 0.99,
                        ..ResilienceConfig::default()
                    },
                )
                .expect("run")
            });
            table.row(&[
                fnum(loss),
                retries.to_string(),
                format!("{}/{}", point.valid, point.trials),
                fnum(point.mean_messages),
                fnum(point.mean_completion_secs),
            ]);
        }
    }
    emit(&table);
    println!(
        "Reading: under light loss overcollection alone suffices; as loss\n\
         grows, retry rounds recover silent contributors and keep partitions\n\
         complete at the price of extra request traffic — the two mechanisms\n\
         compose (retries fix collection, overcollection fixes processors)."
    );
}
