//! E2 / Figure 3 — Overcollection degree for the QEP of Figure 2.
//!
//! The resiliency planner's core relation: minimal `m` such that
//! `P[>= n of n+m partition pipelines survive] >= target`, as a function
//! of the per-partition failure probability `p` and of `n`.

use edgelet_bench::emit;
use edgelet_core::query::resilience::plan_overcollection;
use edgelet_core::util::binom::overcollection_validity;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let target = 0.999;
    let mut table = Table::new(
        "Fig.3 — minimal overcollection m (validity target 0.999)",
        &["n", "p", "m", "m/n", "P[valid] at m", "P[valid] at m-1"],
    );
    for &n in &[4u64, 8, 16, 32, 64] {
        for &p in &[0.05f64, 0.1, 0.2, 0.3, 0.4] {
            let m = plan_overcollection(n, p, target, 4096).expect("satisfiable");
            let at_m = overcollection_validity(n, m, p);
            let at_m_minus = if m == 0 {
                f64::NAN
            } else {
                overcollection_validity(n, m - 1, p)
            };
            table.row(&[
                n.to_string(),
                fnum(p),
                m.to_string(),
                fnum(m as f64 / n as f64),
                fnum(at_m),
                fnum(at_m_minus),
            ]);
        }
    }
    emit(&table);
    println!(
        "Paper claim (Fig. 3): the query stays valid while fewer than m of the\n\
         n+m partitions are lost; m grows with the fault presumption p, and the\n\
         RELATIVE overhead m/n shrinks as n grows (law of large numbers)."
    );
}
